//! Gateway tests for `Request::CreateShardedSession`: the server places
//! shard workers behind an ordinary session, and the served run is
//! digest-identical to a local single-process `ReferenceSim`.

use tn_core::{
    modelfile, CoreConfig, CoreId, Crossbar, Dest, Network, NetworkBuilder, NeuronConfig,
    ScheduledSource, SpikeTarget,
};
use tn_serve::{
    Client, ErrorCode, Health, ModelSource, Pace, Response, Server, ServerConfig, ServerHandle,
};

fn spawn(shards: usize) -> (ServerHandle, Client) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_speed: true,
        shards,
        ..Default::default()
    };
    let handle = Server::spawn(cfg).expect("bind loopback");
    let client = Client::connect(handle.addr()).expect("connect");
    (handle, client)
}

/// A 3×2 stochastic recurrent network whose fanout crosses any
/// contiguous partition, with some neurons routed to output ports.
fn mesh_net() -> Network {
    let mut b = NetworkBuilder::new(3, 2, 77);
    let num = 6usize;
    for c in 0..num {
        let mut cfg = CoreConfig::new();
        *cfg.crossbar = Crossbar::from_fn(|i, j| (i * 31 + j * 17 + c) % 13 == 0);
        for j in 0..256 {
            cfg.neurons[j] = NeuronConfig::stochastic_source(20);
            cfg.neurons[j].weights = [0; 4];
            if (j + c) % 16 == 0 {
                cfg.neurons[j].dest = Dest::Output((c * 256 + j) as u32);
            } else {
                let tgt = ((c * 7 + j * 3) % num) as u32;
                cfg.neurons[j].dest = Dest::Axon(SpikeTarget::new(
                    CoreId(tgt),
                    ((j * 11 + c) % 256) as u8,
                    1 + ((j + c) % 15) as u8,
                ));
            }
        }
        b.add_core(cfg);
    }
    b.build()
}

fn events(ticks: u64) -> Vec<(u64, CoreId, u16)> {
    (0..ticks)
        .map(|t| (t, CoreId((t % 6) as u32), ((t * 29) % 256) as u16))
        .collect()
}

fn stats_of(client: &mut Client, session: &str) -> tn_serve::SessionStats {
    match client.stats(session).unwrap() {
        Response::StatsData(s) => s,
        other => panic!("{other:?}"),
    }
}

fn local_digest(ticks: u64, fault_plan: &str, events: &[(u64, CoreId, u16)]) -> (u64, u64) {
    use tn_compass::KernelSession;
    let mut sim = tn_compass::ReferenceSim::new(mesh_net());
    if !fault_plan.is_empty() {
        sim.attach_faults(&tn_core::FaultPlan::parse(fault_plan).unwrap());
    }
    let mut src = ScheduledSource::new();
    for &(t, core, axon) in events {
        src.push_checked(t, core, axon, 6).unwrap();
    }
    sim.run(ticks, &mut src);
    let dropped = sim.fault_counters().map(|c| c.total_dropped()).unwrap_or(0);
    (sim.network().state_digest(), dropped)
}

#[test]
fn sharded_session_over_the_wire_matches_local_run() {
    const TICKS: u64 = 40;
    let (server, mut client) = spawn(2);
    let model = ModelSource::Model(modelfile::save(&mesh_net()));
    let ev = events(TICKS);

    // shards == 0 → the server's configured default (2 here).
    client
        .create_sharded_session("board", Pace::MaxSpeed, model, "", 0)
        .unwrap();
    client.inject("board", &ev).unwrap();
    client.run_for("board", TICKS).unwrap();
    let s = stats_of(&mut client, "board");
    assert_eq!(s.tick, TICKS);
    assert_eq!(s.health, Health::Healthy);

    let (digest, _) = local_digest(TICKS, "", &ev);
    assert_eq!(s.state_digest, digest, "served shards ≠ local run");

    // The gateway session publishes the shard-layer metrics.
    match client.metrics("board").unwrap() {
        Response::MetricsData { text } => {
            assert!(
                text.contains("tn_shard_boundary_spikes_total"),
                "shard metrics missing from exposition:\n{text}"
            );
            assert!(text.contains("tn_shard_barrier_wait_ns"), "{text}");
        }
        other => panic!("{other:?}"),
    }
    client.close_session("board").unwrap();
    server.shutdown();
}

#[test]
fn faulted_sharded_session_reports_degraded_health() {
    const TICKS: u64 = 30;
    // The stuck axon eats injected spikes from tick 3 on.
    let plan = "tnfault 1\nseed 9\nat 3 core 0 0 axon 7 stuck0\n";
    let (server, mut client) = spawn(2);
    let model = ModelSource::Model(modelfile::save(&mesh_net()));
    let mut ev = events(TICKS);
    ev.extend((5..9).map(|t| (t, CoreId(0), 7u16)));
    ev.sort();

    // Explicit shard count overrides the server default.
    client
        .create_sharded_session("scarred", Pace::MaxSpeed, model, plan, 3)
        .unwrap();
    client.inject("scarred", &ev).unwrap();
    client.run_for("scarred", TICKS).unwrap();
    let s = stats_of(&mut client, "scarred");
    assert_eq!(s.tick, TICKS);
    assert_eq!(s.health, Health::Degraded, "the stuck axon dropped spikes");

    let (digest, dropped) = local_digest(TICKS, plan, &ev);
    assert_eq!(s.state_digest, digest, "faulted served shards ≠ local run");
    assert!(dropped > 0);
    assert_eq!(s.fault_dropped, dropped, "drop accounting diverged");
    client.close_session("scarred").unwrap();
    server.shutdown();
}

#[test]
fn sharded_create_rejects_bad_fault_plans() {
    let (server, mut client) = spawn(2);
    let model = ModelSource::Model(modelfile::save(&mesh_net()));
    // Parseable but out of this model's 3×2 grid.
    match client
        .create_sharded_session(
            "x",
            Pace::MaxSpeed,
            model,
            "tnfault 1\nseed 1\nat 1 core 9 9 dead\n",
            2,
        )
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::ModelRejected),
        other => panic!("{other:?}"),
    }
    assert_eq!(server.session_count(), 0, "rejection left a session behind");
    server.shutdown();
}
