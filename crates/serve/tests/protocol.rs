//! End-to-end tests over a loopback socket: a real server, real client
//! connections, real frames.
//!
//! The centerpiece is `streamed_outputs_match_batch_run`: the same
//! network and injection trace driven (a) through the wire into a served
//! chip session and (b) through a local batch `TrueNorthSim::run` must
//! produce identical output spike transcripts, tick counts, and state
//! digests — the paper's spike-for-spike equivalence claim extended
//! across the serving layer.

use std::time::{Duration, Instant};
use tn_core::wire;
use tn_core::{
    modelfile, CoreConfig, CoreId, Crossbar, Dest, LintConfig, Network, NetworkBuilder,
    NeuronConfig, ScheduledSource, NEURONS_PER_CORE,
};
use tn_serve::protocol::{frame, OP_CREATE_SESSION, OP_PING};
use tn_serve::{
    Client, Engine, ErrorCode, ModelSource, Pace, Request, Response, Server, ServerConfig,
    ServerHandle,
};

/// Spawn a loopback server on an OS-assigned port.
fn spawn(mutate: impl FnOnce(&mut ServerConfig)) -> (ServerHandle, Client) {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..Default::default()
    };
    mutate(&mut cfg);
    let handle = Server::spawn(cfg).expect("bind loopback");
    let client = Client::connect(handle.addr()).expect("connect");
    (handle, client)
}

/// A 1×1 network whose 256 LIF neurons integrate their identity axon
/// and emit on output ports 0..=255 — injected spikes become observable
/// output spikes.
fn output_net() -> Network {
    let mut b = NetworkBuilder::new(1, 1, 42);
    let mut c = CoreConfig::new();
    *c.crossbar = Crossbar::from_fn(|i, j| i == j);
    for j in 0..NEURONS_PER_CORE {
        c.neurons[j] = NeuronConfig::lif(1, 1);
        c.neurons[j].dest = Dest::Output(j as u32);
    }
    b.add_core(c);
    b.build()
}

/// A deterministic injection trace over `ticks` ticks.
fn trace(ticks: u64) -> Vec<(u64, CoreId, u16)> {
    let mut events = Vec::new();
    for t in 0..ticks {
        events.push((t, CoreId(0), ((t * 7) % 256) as u16));
        if t % 3 == 0 {
            events.push((t, CoreId(0), ((t * 13 + 5) % 256) as u16));
        }
    }
    events
}

#[test]
fn ping_pong() {
    let (server, mut client) = spawn(|_| {});
    assert_eq!(client.ping().unwrap(), Response::Pong);
    server.shutdown();
}

#[test]
fn create_run_stats_close() {
    let (server, mut client) = spawn(|c| c.max_speed = true);
    assert_eq!(
        client
            .create_session(
                "a",
                Engine::Reference,
                Pace::MaxSpeed,
                ModelSource::Blank {
                    width: 2,
                    height: 2,
                    seed: 7
                },
            )
            .unwrap(),
        Response::Created {
            session: "a".into()
        }
    );
    assert_eq!(server.session_count(), 1);
    assert_eq!(client.run_for("a", 30).unwrap(), Response::Ok);
    match client.stats("a").unwrap() {
        Response::StatsData(s) => {
            assert_eq!(s.tick, 30);
            assert_eq!(s.engine, "reference");
            assert_eq!(s.dropped_inputs, 0);
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(client.close_session("a").unwrap(), Response::Ok);
    match client.stats("a").unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn malformed_frames_get_clean_errors() {
    let (server, mut client) = spawn(|_| {});

    // Each case is a raw byte string whose frame boundary is intact; the
    // server must answer ErrorCode::Protocol and keep the connection.
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("unknown opcode", frame(0x7F, &[])),
        ("truncated payload", frame(OP_CREATE_SESSION, &[5])),
        ("trailing garbage", frame(OP_PING, &[1, 2, 3])),
        ("unknown engine", {
            let mut p = Vec::new();
            wire::put_str(&mut p, "x");
            wire::put_u8(&mut p, 9); // no such engine
            wire::put_u8(&mut p, 0);
            wire::put_u8(&mut p, 0);
            wire::put_u16(&mut p, 2);
            wire::put_u16(&mut p, 2);
            wire::put_u64(&mut p, 0);
            frame(OP_CREATE_SESSION, &p)
        }),
        ("empty session name", {
            let mut p = Vec::new();
            wire::put_str(&mut p, "");
            wire::put_u8(&mut p, 0);
            wire::put_u8(&mut p, 0);
            wire::put_u8(&mut p, 0);
            wire::put_u16(&mut p, 2);
            wire::put_u16(&mut p, 2);
            wire::put_u64(&mut p, 0);
            frame(OP_CREATE_SESSION, &p)
        }),
        ("degenerate grid", {
            let mut p = Vec::new();
            wire::put_str(&mut p, "x");
            wire::put_u8(&mut p, 0);
            wire::put_u8(&mut p, 0);
            wire::put_u8(&mut p, 0);
            wire::put_u16(&mut p, 0); // 0×2 grid
            wire::put_u16(&mut p, 2);
            wire::put_u64(&mut p, 0);
            frame(OP_CREATE_SESSION, &p)
        }),
        ("wrong protocol version", {
            let mut f = Request::Ping.encode();
            f[4] = 9;
            f
        }),
    ];
    for (what, bytes) in cases {
        client.send_raw(&bytes).unwrap();
        match client.read_any().unwrap() {
            Response::Error { code, .. } => {
                assert_eq!(code, ErrorCode::Protocol, "case: {what}");
            }
            other => panic!("case {what}: {other:?}"),
        }
    }
    // The connection survived the whole table.
    assert_eq!(client.ping().unwrap(), Response::Pong);

    // A hostile length is unrecoverable: one final error, then hangup.
    let mut hostile = Vec::new();
    wire::put_u32(&mut hostile, u32::MAX);
    wire::put_u8(&mut hostile, 1);
    wire::put_u8(&mut hostile, OP_PING);
    client.send_raw(&hostile).unwrap();
    match client.read_any().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("{other:?}"),
    }
    assert!(
        client.read_any().is_err(),
        "server hung up after a hostile length"
    );

    // Fresh connections are unaffected.
    let mut fresh = Client::connect(server.addr()).unwrap();
    assert_eq!(fresh.ping().unwrap(), Response::Pong);
    server.shutdown();
}

#[test]
fn unknown_duplicate_and_rejected_sessions() {
    let (server, mut client) = spawn(|c| c.max_speed = true);
    match client.stats("nope").unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("{other:?}"),
    }
    let blank = ModelSource::Blank {
        width: 1,
        height: 1,
        seed: 1,
    };
    client
        .create_session("dup", Engine::Reference, Pace::MaxSpeed, blank.clone())
        .unwrap();
    match client
        .create_session("dup", Engine::Reference, Pace::MaxSpeed, blank)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::SessionExists),
        other => panic!("{other:?}"),
    }
    // A model that does not even parse is rejected with ModelRejected.
    match client
        .create_session(
            "bad",
            Engine::Chip,
            Pace::MaxSpeed,
            ModelSource::Model("not a model file".into()),
        )
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::ModelRejected),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn session_budget_is_enforced() {
    let (server, mut client) = spawn(|c| {
        c.max_speed = true;
        c.max_sessions = 1;
    });
    let blank = ModelSource::Blank {
        width: 1,
        height: 1,
        seed: 1,
    };
    client
        .create_session("only", Engine::Reference, Pace::MaxSpeed, blank.clone())
        .unwrap();
    match client
        .create_session("more", Engine::Reference, Pace::MaxSpeed, blank.clone())
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::TooManySessions),
        other => panic!("{other:?}"),
    }
    // Closing the first frees the budget.
    client.close_session("only").unwrap();
    assert_eq!(
        client
            .create_session("more", Engine::Reference, Pace::MaxSpeed, blank)
            .unwrap(),
        Response::Created {
            session: "more".into()
        }
    );
    server.shutdown();
}

#[test]
fn streamed_outputs_match_batch_run() {
    const TICKS: u64 = 40;
    let net = output_net();
    let model_text = modelfile::save(&net);
    let events = trace(TICKS);

    // (a) Over the wire: served chip session, injected then subscribed.
    let (server, mut client) = spawn(|c| c.max_speed = true);
    assert_eq!(
        client
            .create_session(
                "wire",
                Engine::Chip,
                Pace::MaxSpeed,
                ModelSource::Model(model_text.clone()),
            )
            .unwrap(),
        Response::Created {
            session: "wire".into()
        }
    );
    match client.inject("wire", &events).unwrap() {
        Response::InjectAck { accepted } => assert_eq!(accepted as usize, events.len()),
        other => panic!("{other:?}"),
    }
    assert_eq!(client.subscribe("wire").unwrap(), Response::Ok);
    assert_eq!(client.run_for("wire", TICKS).unwrap(), Response::Ok);

    let mut served_events: Vec<(u64, u32)> = Vec::new();
    let mut served_ticks = 0u64;
    let mut served_spikes = 0u64;
    while let Some(u) = client.poll_update() {
        served_ticks += 1;
        served_spikes += u.spikes_out;
        for port in u.ports {
            served_events.push((u.tick, port));
        }
    }
    let served = match client.stats("wire").unwrap() {
        Response::StatsData(s) => s,
        other => panic!("{other:?}"),
    };
    server.shutdown();

    // (b) Locally: batch TrueNorthSim::run over the same model + trace.
    let (batch_net, _) = modelfile::load_verified(&model_text, &LintConfig::default()).unwrap();
    let mut sim = tn_chip::TrueNorthSim::new(batch_net);
    let mut src = ScheduledSource::new();
    for &(t, core, axon) in &events {
        src.push_checked(t, core, axon, sim.network().num_cores())
            .unwrap();
    }
    sim.run(TICKS, &mut src);
    let batch_events: Vec<(u64, u32)> = sim
        .outputs()
        .events()
        .iter()
        .map(|e| (e.tick, e.port))
        .collect();

    // Spike-for-spike equivalence across the serving layer.
    served_events.sort_unstable();
    assert!(!batch_events.is_empty(), "the net produced output spikes");
    assert_eq!(served_events, batch_events, "output transcripts differ");
    assert_eq!(served_ticks, TICKS, "one TickUpdate per tick");
    assert_eq!(served.tick, sim.current_tick());
    assert_eq!(served_spikes, sim.stats().totals.spikes_out);
    assert_eq!(
        served.state_digest,
        sim.network().state_digest(),
        "served and batch state diverged"
    );
    assert!(served.energy_j > 0.0, "chip sessions report energy");
}

#[test]
fn overload_sheds_and_keeps_ticking() {
    let (server, mut client) = spawn(|c| {
        c.max_speed = true;
        c.input_capacity = 8;
    });
    client
        .create_session(
            "hot",
            Engine::Reference,
            Pace::MaxSpeed,
            ModelSource::Blank {
                width: 1,
                height: 1,
                seed: 3,
            },
        )
        .unwrap();
    // Offer far more than the queue holds, all for a future tick.
    let burst: Vec<_> = (0..100u64)
        .map(|i| (1000, CoreId(0), (i % 256) as u16))
        .collect();
    match client.inject("hot", &burst).unwrap() {
        Response::Overloaded {
            accepted,
            dropped,
            total_dropped,
        } => {
            assert_eq!(accepted, 8);
            assert_eq!(dropped, 92);
            assert_eq!(total_dropped, 92);
        }
        other => panic!("{other:?}"),
    }
    // The session keeps ticking and surfaces the shed load in stats.
    assert_eq!(client.run_for("hot", 10).unwrap(), Response::Ok);
    match client.stats("hot").unwrap() {
        Response::StatsData(s) => {
            assert_eq!(s.tick, 10);
            assert_eq!(s.dropped_inputs, 92);
            assert_eq!(s.pending_inputs, 8);
        }
        other => panic!("{other:?}"),
    }
    // An invalid batch is a client bug, not backpressure.
    match client.inject("hot", &[(2000, CoreId(0), 999)]).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::InvalidInjection),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn idle_sessions_are_evicted() {
    let (server, mut client) = spawn(|c| {
        c.max_speed = true;
        c.idle_timeout = Duration::from_millis(80);
    });
    client
        .create_session(
            "sleepy",
            Engine::Reference,
            Pace::MaxSpeed,
            ModelSource::Blank {
                width: 1,
                height: 1,
                seed: 5,
            },
        )
        .unwrap();
    assert_eq!(server.session_count(), 1);
    // Wait without touching the session — every command resets its idle
    // clock; `session_count` only reads the registry.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.session_count() != 0 {
        assert!(Instant::now() < deadline, "session was never evicted");
        std::thread::sleep(Duration::from_millis(40));
    }
    match client.stats("sleepy").unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn snapshot_restores_across_sessions() {
    let (server, mut client) = spawn(|c| c.max_speed = true);
    let model = ModelSource::Model(modelfile::save(&output_net()));
    client
        .create_session("a", Engine::Chip, Pace::MaxSpeed, model.clone())
        .unwrap();
    client.inject("a", &trace(20)).unwrap();
    client.run_for("a", 20).unwrap();
    let bytes = match client.snapshot("a").unwrap() {
        Response::SnapshotData { bytes } => bytes,
        other => panic!("{other:?}"),
    };
    let digest_a = match client.stats("a").unwrap() {
        Response::StatsData(s) => s.state_digest,
        other => panic!("{other:?}"),
    };

    // Restore into a *different* engine: the snapshot is portable across
    // expressions of the kernel.
    client
        .create_session("b", Engine::Reference, Pace::MaxSpeed, model)
        .unwrap();
    assert_eq!(client.restore("b", bytes).unwrap(), Response::Ok);
    match client.stats("b").unwrap() {
        Response::StatsData(s) => {
            assert_eq!(s.tick, 20);
            assert_eq!(s.state_digest, digest_a);
        }
        other => panic!("{other:?}"),
    }
    // Garbage snapshots are rejected cleanly.
    match client.restore("b", vec![0xFF; 10]).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::SnapshotRejected),
        other => panic!("{other:?}"),
    }
    // A shape-mismatched snapshot is rejected too.
    client
        .create_session(
            "tiny",
            Engine::Reference,
            Pace::MaxSpeed,
            ModelSource::Blank {
                width: 2,
                height: 2,
                seed: 1,
            },
        )
        .unwrap();
    let snap_b = match client.snapshot("b").unwrap() {
        Response::SnapshotData { bytes } => bytes,
        other => panic!("{other:?}"),
    };
    match client.restore("tiny", snap_b).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::SnapshotRejected);
            assert!(message.contains("cores"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn real_time_sessions_hold_the_tick() {
    let (server, mut client) = spawn(|c| {
        c.tick_period = Duration::from_millis(2);
    });
    client
        .create_session(
            "rt",
            Engine::Reference,
            Pace::RealTime,
            ModelSource::Blank {
                width: 1,
                height: 1,
                seed: 9,
            },
        )
        .unwrap();
    let start = Instant::now();
    assert_eq!(client.run_for("rt", 10).unwrap(), Response::Ok);
    // First tick is immediate, nine more are paced at 2 ms each.
    assert!(
        start.elapsed() >= Duration::from_millis(10),
        "real-time run finished implausibly fast: {:?}",
        start.elapsed()
    );
    server.shutdown();
}

#[test]
fn subscriber_streams_while_another_connection_drives() {
    let (server, mut driver) = spawn(|c| c.max_speed = true);
    let model = ModelSource::Model(modelfile::save(&output_net()));
    driver
        .create_session("shared", Engine::Chip, Pace::MaxSpeed, model)
        .unwrap();

    let mut watcher = Client::connect(server.addr()).unwrap();
    assert_eq!(watcher.subscribe("shared").unwrap(), Response::Ok);

    driver.inject("shared", &trace(10)).unwrap();
    driver.run_for("shared", 10).unwrap();

    let mut seen = 0;
    while let Some(u) = watcher.wait_update(Duration::from_secs(5)).unwrap() {
        assert_eq!(u.session, "shared");
        seen += 1;
        if seen == 10 {
            break;
        }
    }
    assert_eq!(seen, 10, "watcher saw every tick another connection ran");
    server.shutdown();
}

#[test]
fn metrics_scrape_over_the_wire() {
    // A real-time chip session paced at a fast tick so the test stays
    // quick; the scrape must be valid exposition carrying the session's
    // jitter/deadline histograms, the kernel totals, and the chip-only
    // series — with the per-tick delta path (tn_session_*) agreeing
    // with the engine-total sync (tn_kernel_*).
    let (server, mut client) = spawn(|c| c.tick_period = Duration::from_micros(200));
    let model = ModelSource::Model(modelfile::save(&output_net()));
    client
        .create_session("obs", Engine::Chip, Pace::RealTime, model)
        .unwrap();
    client.inject("obs", &trace(20)).unwrap();
    assert_eq!(client.run_for("obs", 25).unwrap(), Response::Ok);

    let text = match client.metrics("obs").unwrap() {
        Response::MetricsData { text } => text,
        other => panic!("{other:?}"),
    };
    let summary = tn_obs::validate_exposition(&text).expect("valid exposition");
    assert!(summary.families > 5, "expected many families: {summary:?}");
    for needle in [
        "# TYPE tn_session_tick_jitter_ns histogram",
        "# TYPE tn_session_deadline_lateness_ns histogram",
        "tn_session_deadline_miss_total",
        "tn_session_ticks_total 25",
        "tn_kernel_ticks_total 25",
        "tn_chip_mesh_hops_total",
        "tn_chip_energy_joules{mode=\"realtime\"}",
        "tn_fastpath_tier_ticks_total{tier=\"scalar\"}",
        "# flight-recorder",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // 25 real-time ticks → 25 jitter observations.
    assert!(
        text.contains("tn_session_tick_jitter_ns_count 25"),
        "{text}"
    );
    server.shutdown();
}

#[test]
fn overload_drops_are_counted_once() {
    // Satellite check on `SessionStats::dropped_inputs = engine drops +
    // injector drops`: the injector validates targets against the grid
    // before queueing, so every shed event is counted in exactly one of
    // the two tallies. Flood a chip session's tiny queue with *valid*
    // events: all drops are injector-side, the engine sheds nothing, and
    // the wire-visible sum equals the injector tally exactly.
    let (server, mut client) = spawn(|c| {
        c.max_speed = true;
        c.input_capacity = 8;
    });
    client
        .create_session(
            "flood",
            Engine::Chip,
            Pace::MaxSpeed,
            ModelSource::Blank {
                width: 1,
                height: 1,
                seed: 3,
            },
        )
        .unwrap();
    let burst: Vec<_> = (0..200u64)
        .map(|i| (5, CoreId(0), (i % 256) as u16))
        .collect();
    let (accepted, dropped) = match client.inject("flood", &burst).unwrap() {
        Response::Overloaded {
            accepted, dropped, ..
        } => (accepted, dropped),
        other => panic!("{other:?}"),
    };
    assert_eq!(accepted + dropped, 200);
    // Run past the events' tick so every accepted event is delivered:
    // if engine-side drops were double-booked, the sum would now exceed
    // the injector's tally.
    assert_eq!(client.run_for("flood", 20).unwrap(), Response::Ok);
    match client.stats("flood").unwrap() {
        Response::StatsData(s) => {
            assert_eq!(s.tick, 20);
            assert_eq!(
                s.dropped_inputs, dropped as u64,
                "dropped_inputs must equal the injector tally exactly — \
                 no event may be counted by both the queue and the engine"
            );
            assert_eq!(s.pending_inputs, 0, "accepted events were delivered");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn output_eviction_is_surfaced_in_stats_and_metrics() {
    // A tiny output high-water mark: one tick's burst of output spikes
    // overflows it, the oldest are evicted and counted, and the tally
    // reaches the client through both Stats and GetMetrics.
    let (server, mut client) = spawn(|c| {
        c.max_speed = true;
        c.output_capacity = 4;
    });
    let model = ModelSource::Model(modelfile::save(&output_net()));
    client
        .create_session("burst", Engine::Reference, Pace::MaxSpeed, model)
        .unwrap();
    let events: Vec<_> = (0..32u64).map(|i| (0, CoreId(0), i as u16)).collect();
    client.inject("burst", &events).unwrap();
    assert_eq!(client.run_for("burst", 5).unwrap(), Response::Ok);
    let evicted = match client.stats("burst").unwrap() {
        Response::StatsData(s) => {
            assert_eq!(s.spikes_out, 32, "all injected axons fired");
            assert!(
                s.spikes_evicted > 0,
                "a 32-spike tick must overflow a 4-spike transcript"
            );
            s.spikes_evicted
        }
        other => panic!("{other:?}"),
    };
    let text = match client.metrics("burst").unwrap() {
        Response::MetricsData { text } => text,
        other => panic!("{other:?}"),
    };
    assert!(
        text.contains(&format!("tn_session_spikes_evicted_total {evicted}")),
        "{text}"
    );
    server.shutdown();
}
