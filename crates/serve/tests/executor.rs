//! Thread-lifecycle regression tests for the sharded session executor.
//!
//! The serving layer's thread count must be O(shards), not O(sessions)
//! or O(connections). Two historical leaks pinned here:
//!
//! * per-session driver threads — replaced by the shard pool, so
//!   creating many sessions must not grow the process thread count;
//! * writer threads orphaned by abrupt client disconnects — the old
//!   reader/writer pair never joined the writer when the reader died
//!   mid-session; the poll-based connection loop has no per-connection
//!   threads at all, so hard disconnects must leave nothing behind.
//!
//! Counts come from `/proc/self/task` (Linux). On other platforms the
//! helper returns 0 and the assertions hold trivially.

use std::time::{Duration, Instant};
use tn_serve::{Client, Engine, ModelSource, Pace, Response, Server, ServerConfig, ServerHandle};

fn spawn(mutate: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_speed: true,
        ..Default::default()
    };
    mutate(&mut cfg);
    Server::spawn(cfg).expect("bind loopback")
}

/// Process thread count via /proc (Linux); 0 elsewhere.
fn count_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

/// Wait for the thread count to settle at or below `limit` — control
/// offload threads are short-lived and allowed to wind down.
fn settles_below(limit: usize, timeout: Duration) -> (bool, usize) {
    let deadline = Instant::now() + timeout;
    let mut last = count_threads();
    while Instant::now() < deadline {
        last = count_threads();
        if last <= limit {
            return (true, last);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    (false, last)
}

fn create(client: &mut Client, name: &str) {
    let resp = client
        .create_session(
            name,
            Engine::Reference,
            Pace::MaxSpeed,
            ModelSource::Blank {
                width: 2,
                height: 2,
                seed: 7,
            },
        )
        .expect("create");
    assert_eq!(
        resp,
        Response::Created {
            session: name.into()
        }
    );
}

#[test]
fn thread_count_is_o_shards_not_o_sessions() {
    let server = spawn(|c| {
        c.exec_shards = 2;
        c.max_sessions = 256;
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    // Let the steady-state pool (acceptor + shards) come up first.
    create(&mut client, "warmup");
    assert_eq!(client.run_for("warmup", 5).unwrap(), Response::Ok);
    let baseline = count_threads();

    for i in 0..64 {
        create(&mut client, &format!("s{i}"));
        assert_eq!(client.run_for(&format!("s{i}"), 5).unwrap(), Response::Ok);
    }
    assert_eq!(server.session_count(), 65);

    // 64 live sessions must not cost 64 threads — only transient
    // control offloads may briefly exceed the baseline.
    let slack = baseline + 4;
    let (ok, n) = settles_below(slack, Duration::from_secs(5));
    assert!(
        ok,
        "64 sessions grew the thread count past O(shards): baseline={baseline}, now={n}"
    );
    server.shutdown();
}

#[test]
fn abrupt_disconnects_leak_no_threads_and_keep_sessions_alive() {
    let server = spawn(|c| {
        c.exec_shards = 1;
        c.max_sessions = 256;
    });
    // Steady state first.
    {
        let mut c = Client::connect(server.addr()).expect("connect");
        create(&mut c, "keeper");
        assert_eq!(c.run_for("keeper", 3).unwrap(), Response::Ok);
    } // dropped without CloseSession: a hard disconnect
    let baseline = count_threads();

    // A storm of connections that die abruptly — subscribed, mid-work,
    // no goodbye. The old writer threads leaked exactly here.
    for i in 0..48 {
        let mut c = Client::connect(server.addr()).expect("connect");
        let name = format!("gone{i}");
        create(&mut c, &name);
        assert_eq!(c.subscribe(&name).unwrap(), Response::Ok);
        assert_eq!(c.run_for(&name, 3).unwrap(), Response::Ok);
        drop(c); // RST/EOF with a subscription still attached
    }

    let (ok, n) = settles_below(baseline + 4, Duration::from_secs(5));
    assert!(
        ok,
        "48 abrupt disconnects leaked threads: baseline={baseline}, now={n}"
    );

    // Sessions outlive their connections: a fresh connection still sees
    // every session and can drive one.
    let mut c = Client::connect(server.addr()).expect("reconnect");
    assert_eq!(server.session_count(), 49);
    match c.stats("gone7").expect("stats") {
        Response::StatsData(s) => assert_eq!(s.tick, 3),
        other => panic!("{other:?}"),
    }
    assert_eq!(c.run_for("gone7", 2).unwrap(), Response::Ok);
    server.shutdown();

    // Shutdown winds the pool itself down.
    let (ok, n) = settles_below(baseline, Duration::from_secs(5));
    assert!(ok, "server shutdown left threads behind: {n} > {baseline}");
}
