//! Demo client for tn-serve: create a session, stream spikes in,
//! subscribe to output spikes, and read statistics.
//!
//! Run standalone (spawns an in-process server on a loopback port):
//!
//! ```text
//! cargo run --release -p tn-serve --example tn_client
//! ```
//!
//! Or point it at a running `tn-serve` instance:
//!
//! ```text
//! cargo run --release -p tn-serve --example tn_client -- 127.0.0.1:4160
//! ```

use tn_core::{
    modelfile, CoreConfig, CoreId, Crossbar, Dest, NetworkBuilder, NeuronConfig, NEURONS_PER_CORE,
};
use tn_serve::{Client, Engine, ModelSource, Pace, Response, Server, ServerConfig};

/// A 1×1 board whose neurons echo their identity axon to output ports.
fn echo_model() -> String {
    let mut b = NetworkBuilder::new(1, 1, 2014);
    let mut c = CoreConfig::new();
    *c.crossbar = Crossbar::from_fn(|i, j| i == j);
    for j in 0..NEURONS_PER_CORE {
        c.neurons[j] = NeuronConfig::lif(1, 1);
        c.neurons[j].dest = Dest::Output(j as u32);
    }
    b.add_core(c);
    modelfile::save(&b.build())
}

fn main() {
    // Connect to the given address, or host a throwaway server in-process.
    let mut embedded = None;
    let addr = match std::env::args().nth(1) {
        Some(addr) => addr,
        None => {
            let server = Server::spawn(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                max_speed: true,
                ..Default::default()
            })
            .expect("bind loopback server");
            let addr = server.addr().to_string();
            println!("hosting an in-process server on {addr}");
            embedded = Some(server);
            addr
        }
    };

    let mut client = Client::connect(&addr).expect("connect");
    println!("ping → {:?}", client.ping().expect("ping"));

    let created = client
        .create_session(
            "demo",
            Engine::Chip,
            Pace::MaxSpeed,
            ModelSource::Model(echo_model()),
        )
        .expect("create session");
    println!("create → {created:?}");

    // A pulse train: two axons per tick for 50 ticks.
    let events: Vec<(u64, CoreId, u16)> = (0..50u64)
        .flat_map(|t| [(t, CoreId(0), (t % 256) as u16), (t, CoreId(0), 200)])
        .collect();
    println!(
        "inject → {:?}",
        client.inject("demo", &events).expect("inject")
    );

    client.subscribe("demo").expect("subscribe");
    client.run_for("demo", 50).expect("run");

    let mut spikes = 0u64;
    let mut updates = 0u64;
    while let Some(u) = client.poll_update() {
        updates += 1;
        spikes += u.ports.len() as u64;
        if u.tick < 3 {
            println!("tick {:>2}: output ports {:?}", u.tick, u.ports);
        }
    }
    println!("... {updates} tick updates, {spikes} output spikes total");

    match client.stats("demo").expect("stats") {
        Response::StatsData(s) => println!(
            "stats: tick={} spikes_out={} sops={} dropped_inputs={} digest={:#018x} \
             energy={:.3e} J ({})",
            s.tick, s.spikes_out, s.sops, s.dropped_inputs, s.state_digest, s.energy_j, s.engine
        ),
        other => println!("stats → {other:?}"),
    }

    client.close_session("demo").expect("close");
    if let Some(server) = embedded {
        server.shutdown();
    }
    println!("done");
}
