//! tn-serve: a multi-session spike-streaming runtime service over the
//! neurosynaptic kernel.
//!
//! The paper's system is not a batch simulator but a *real-time
//! platform*: a board that free-runs at the 1 ms tick while hosts stream
//! spikes in and read spikes out. This crate supplies that operational
//! layer for the reproduction — a long-running TCP service hosting live
//! simulator instances ("sessions") of any kernel expression
//! ([`tn_chip::TrueNorthSim`], [`tn_compass::ReferenceSim`],
//! [`tn_compass::ParallelSim`]) behind one versioned binary protocol:
//!
//! - **sessions** are named, created from a lint-verified model file or
//!   a blank board, and multiplexed onto a small fixed pool of driver
//!   shards ([`ShardExecutor`]) honoring the paper's 1 ms tick
//!   ([`Pace::RealTime`]) on a shared deadline wheel or free-running
//!   ([`Pace::MaxSpeed`]);
//! - **injection** goes through a bounded queue with explicit
//!   backpressure — overload is shed and *counted*, never allowed to
//!   stall the tick loop ([`Response::Overloaded`]);
//! - **outputs** stream to subscribers tick by tick
//!   ([`Response::TickUpdate`]), with per-tick statistics and modelled
//!   energy;
//! - **state** is portable: sessions checkpoint to
//!   [`tn_core::NetworkSnapshot`] bytes and restore across sessions,
//!   engines, and server restarts.
//!
//! Because every expression of the kernel is deterministic, a served
//! session fed an injection trace over the wire reproduces a local batch
//! run *bit-exactly* — the integration tests assert equality of output
//! transcripts and state digests.
//!
//! Entry points: [`Server::spawn`] (embedded/tests), the `tn-serve`
//! binary (standalone), and [`Client`] (blocking connection).

pub mod client;
pub mod executor;
pub mod protocol;
pub mod resilient;
pub mod scheduler;
pub mod server;
pub mod session;
pub(crate) mod sync;

pub use client::{Client, ClientError, SessionEvent};
pub use executor::{default_shards, ExecutorConfig, ShardExecutor};
pub use protocol::{
    Engine, ErrorCode, Health, ModelSource, Pace, ProtocolError, Request, Response, SessionEntry,
    SessionStats, TickUpdate, PROTOCOL_VERSION,
};
pub use resilient::{BackoffPolicy, ReconnectingClient, RetrySequence, SessionSpec};
pub use scheduler::{Clock, PaceOutcome, SystemClock, TickScheduler, VirtualClock};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{
    spawn_session, spawn_session_resumed, Cmd, MigrationTicket, Outbound, SessionConfig,
    SessionGone, SessionHandle,
};
