//! The sharded session executor: M:N driving of [`SessionTask`]s over
//! a small fixed pool of shard threads.
//!
//! The paper's real-time contract is one spike-tick per millisecond
//! *per board*, regardless of how many boards a host serves. A
//! thread-per-session design collapses under that goal long before the
//! kernel does: thousands of 1 ms-periodic threads thrash the OS
//! scheduler, and every session costs a stack. This module replaces it
//! with `min(cores, 8)` shard threads (configurable), each multiplexing
//! many sessions:
//!
//! - **Deadline wheel** — real-time sessions are keyed into a min-heap
//!   by the next deadline of their [`TickScheduler`] grid. The shard
//!   sleeps until the earliest armed deadline, runs every due tick,
//!   and re-arms. Wake-up jitter on an armed deadline is telemetry,
//!   not a deadline miss (`TickScheduler::begin_tick`), exactly
//!   mirroring what the old blocking `pace()` path booked.
//! - **Load shedding** — an overloaded shard falls behind the grid;
//!   `begin_tick` then books the skipped edges as misses and jumps to
//!   the next future edge, so lateness sheds whole ticks instead of
//!   compounding. Shed edges are counted per shard
//!   (`tn_shard_exec_deadline_miss_total`) and per session, and input
//!   backpressure stays where it was: the bounded injector queue.
//! - **Max-speed batches** — free-running sessions round-robin through
//!   a ready queue in bounded tick batches so one greedy session
//!   cannot starve a shard.
//! - **Sweeps** — every few milliseconds a shard thaws expired
//!   migration quiesces and evicts idle sessions. Eviction is decided
//!   through [`MigrationPin::begin_evict`], which shares a mutex with
//!   the migration pin, so evict-vs-migrate is a total order (DFS
//!   model-checked below and in `server::model_tests`).
//!
//! Shard assignment is round-robin by admission id; a session never
//! moves between shards, so every task is single-threaded for its
//! whole life and needs no interior locking. Per-shard health is
//! published on a shared registry: `tn_shard_exec_sessions{shard=..}`,
//! `tn_shard_exec_runnable{shard=..}`, and a per-shard tick-jitter
//! histogram.

use crate::protocol::{Pace, SessionStats};
use crate::scheduler::PaceOutcome;
use crate::session::{
    Cmd, SessionConfig, SessionGone, SessionHandle, SessionTask, LATENESS_BOUNDS,
};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::{Duration, Instant};
use tn_compass::KernelSession;
use tn_core::wire::InputEvent;
use tn_obs::{Counter, Gauge, Histogram, Registry};

/// How often a shard runs its housekeeping sweep (idle eviction,
/// quiesce-hold expiry, gauge refresh). Bounds eviction latency and the
/// idle wake-up rate: an idle shard wakes ~200×/s, nothing at scale.
const SWEEP_PERIOD: Duration = Duration::from_millis(5);

/// Max consecutive ticks one max-speed session runs before the shard
/// rotates to the next ready session (fairness bound).
const MAX_SPEED_BATCH: u64 = 64;

/// Executor tuning.
#[derive(Clone, Debug, Default)]
pub struct ExecutorConfig {
    /// Driver shard threads. 0 means auto: `min(cores, 8)`.
    pub shards: usize,
    /// Transient mode, for [`crate::session::spawn_session`]: shards
    /// are detached and exit once every admitted session has closed,
    /// instead of waiting for an explicit [`ShardExecutor::shutdown`].
    pub transient: bool,
}

/// Resolve the shard count: explicit, or `min(cores, 8)`.
pub fn default_shards(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(8)
}

/// Messages into a shard thread. Commands address sessions by admission
/// id; a command for an id the shard no longer holds is dropped, which
/// drops its reply sender — the caller observes the hangup, the same
/// signal a crashed driver thread used to give.
pub(crate) enum ShardMsg {
    Admit { id: u64, task: Box<SessionTask> },
    Cmd(u64, Cmd),
    Shutdown,
}

/// The shard pool. Admission round-robins sessions across shards; the
/// pool's thread count is fixed at construction — serving N sessions
/// costs N tasks, not N threads.
pub struct ShardExecutor {
    shards: Vec<Sender<ShardMsg>>,
    joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_id: AtomicU64,
    registry: Arc<Registry>,
}

impl ShardExecutor {
    pub fn new(cfg: ExecutorConfig) -> Self {
        let n = default_shards(cfg.shards);
        let registry = Arc::new(Registry::new());
        let mut shards = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        for k in 0..n {
            let (tx, rx) = std::sync::mpsc::channel();
            let metrics = ShardMetrics::new(&registry, k);
            let transient = cfg.transient;
            let handle = std::thread::Builder::new()
                .name(format!("tn-exec-shard-{k}"))
                .spawn(move || Shard::new(rx, metrics, transient).run())
                .expect("spawn shard thread");
            shards.push(tx);
            if cfg.transient {
                // sync: detached on purpose — a transient shard owns no
                // external state and exits by itself once its sessions
                // close or every handle (and this executor) is dropped,
                // disconnecting the channel.
                drop(handle);
            } else {
                joins.push(handle);
            }
        }
        ShardExecutor {
            shards,
            joins: Mutex::new(joins),
            // sync: plain id allocator; uniqueness is all that matters.
            next_id: AtomicU64::new(1),
            registry,
        }
    }

    /// Admit a session: build its task and handle, offer any migrated
    /// pending inputs, and hand the task to its shard. The returned
    /// handle routes commands by admission id.
    pub fn admit(
        &self,
        name: String,
        sim: Box<dyn KernelSession>,
        cfg: SessionConfig,
        base: SessionStats,
        pending: &[InputEvent],
        grid_phase: Option<Duration>,
    ) -> Result<SessionHandle, SessionGone> {
        // sync: see above — a monotone ticket, no ordering needed.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[(id as usize) % self.shards.len()];
        let (task, handle) =
            SessionTask::build(id, shard.clone(), name, sim, cfg, base, pending, grid_phase);
        shard
            .send(ShardMsg::Admit {
                id,
                task: Box::new(task),
            })
            .map_err(|_| SessionGone)?;
        Ok(handle)
    }

    /// The shared per-shard metrics registry (one scrape target for the
    /// whole pool; series carry a `shard` label).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Stop every shard: in-flight sessions are abandoned (waiters get
    /// a shutdown error) and marked closed, then the threads join.
    pub fn shutdown(&self) {
        for tx in &self.shards {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        let joins = {
            let mut guard = self.joins.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for j in joins {
            let _ = j.join();
        }
    }
}

/// Cached handles for the series a shard touches on its hot path.
struct ShardMetrics {
    sessions: Arc<Gauge>,
    runnable: Arc<Gauge>,
    ticks: Arc<Counter>,
    deadline_miss: Arc<Counter>,
    admitted: Arc<Counter>,
    evicted: Arc<Counter>,
    jitter_ns: Arc<Histogram>,
}

impl ShardMetrics {
    fn new(registry: &Registry, k: usize) -> Self {
        let ks = k.to_string();
        let labels: [(&str, &str); 1] = [("shard", ks.as_str())];
        ShardMetrics {
            sessions: registry.gauge_with("tn_shard_exec_sessions", &labels),
            runnable: registry.gauge_with("tn_shard_exec_runnable", &labels),
            ticks: registry.counter_with("tn_shard_exec_ticks_total", &labels),
            deadline_miss: registry.counter_with("tn_shard_exec_deadline_miss_total", &labels),
            admitted: registry.counter_with("tn_shard_exec_admitted_total", &labels),
            evicted: registry.counter_with("tn_shard_exec_evicted_total", &labels),
            jitter_ns: registry.histogram_with(
                "tn_shard_exec_tick_jitter_ns",
                &labels,
                &LATENESS_BOUNDS,
            ),
        }
    }
}

/// A session's slot in its shard's table, with the wheel/ready
/// membership flags that keep each id enqueued at most once.
struct Entry {
    task: SessionTask,
    in_wheel: bool,
    in_ready: bool,
}

/// One shard thread's whole world. Single-threaded by construction:
/// only this thread ever touches its table, wheel, or tasks.
struct Shard {
    rx: Receiver<ShardMsg>,
    tasks: HashMap<u64, Entry>,
    /// Min-heap of `(deadline, id)` for real-time sessions. Entries are
    /// validated lazily on pop (the task may have been removed,
    /// quiesced, or drained since it was armed).
    wheel: BinaryHeap<Reverse<(Instant, u64)>>,
    /// Round-robin queue of runnable max-speed sessions.
    ready: VecDeque<u64>,
    metrics: ShardMetrics,
    transient: bool,
    admitted_any: bool,
}

impl Shard {
    fn new(rx: Receiver<ShardMsg>, metrics: ShardMetrics, transient: bool) -> Self {
        Shard {
            rx,
            tasks: HashMap::new(),
            wheel: BinaryHeap::new(),
            ready: VecDeque::new(),
            metrics,
            transient,
            admitted_any: false,
        }
    }

    fn run(mut self) {
        let mut next_sweep = Instant::now() + SWEEP_PERIOD;
        loop {
            if !self.intake(next_sweep) {
                return; // shutdown or all channels gone
            }
            self.run_due_wheel();
            self.run_ready_batch();
            let now = Instant::now();
            if now >= next_sweep {
                self.sweep(now);
                next_sweep = now + SWEEP_PERIOD;
            }
            if self.transient && self.admitted_any && self.tasks.is_empty() {
                return;
            }
        }
    }

    /// Pull commands: blocking (bounded by the earliest deadline and
    /// the sweep cadence) when nothing is runnable, non-blocking
    /// otherwise. Returns `false` when the shard should exit.
    fn intake(&mut self, next_sweep: Instant) -> bool {
        if self.ready.is_empty() {
            let now = Instant::now();
            let until = match self.wheel.peek() {
                Some(&Reverse((due, _))) => due.min(next_sweep),
                None => next_sweep,
            };
            match self.rx.recv_timeout(until.saturating_duration_since(now)) {
                Ok(msg) => {
                    if self.handle_msg(msg) {
                        return false;
                    }
                }
                Err(RecvTimeoutError::Timeout) => return true,
                Err(RecvTimeoutError::Disconnected) => {
                    self.close_all();
                    return false;
                }
            }
        }
        loop {
            match self.rx.try_recv() {
                Ok(msg) => {
                    if self.handle_msg(msg) {
                        return false;
                    }
                }
                Err(TryRecvError::Empty) => return true,
                Err(TryRecvError::Disconnected) => {
                    self.close_all();
                    return false;
                }
            }
        }
    }

    /// Returns `true` on shutdown.
    fn handle_msg(&mut self, msg: ShardMsg) -> bool {
        match msg {
            ShardMsg::Admit { id, task } => {
                self.admitted_any = true;
                self.tasks.insert(
                    id,
                    Entry {
                        task: *task,
                        in_wheel: false,
                        in_ready: false,
                    },
                );
                self.metrics.admitted.inc();
                self.metrics.sessions.set(self.tasks.len() as f64);
                self.enqueue(id);
                false
            }
            ShardMsg::Cmd(id, cmd) => {
                let close = match self.tasks.get_mut(&id) {
                    Some(entry) => entry.task.handle_cmd(cmd),
                    // Stale id: dropping the command drops its reply
                    // sender and the caller sees the session as gone.
                    None => false,
                };
                if close {
                    self.remove(id);
                } else {
                    self.enqueue(id);
                }
                false
            }
            ShardMsg::Shutdown => {
                self.close_all();
                true
            }
        }
    }

    /// Put a runnable session where its pace says it belongs: the
    /// deadline wheel (arming its next grid edge) or the ready queue.
    fn enqueue(&mut self, id: u64) {
        let Some(entry) = self.tasks.get_mut(&id) else {
            return;
        };
        if !entry.task.runnable() {
            return;
        }
        match entry.task.scheduler.pace_mode() {
            Pace::MaxSpeed => {
                if !entry.in_ready {
                    entry.in_ready = true;
                    self.ready.push_back(id);
                }
            }
            Pace::RealTime => {
                if !entry.in_wheel {
                    let due = entry.task.scheduler.next_ready_at(Instant::now());
                    entry.in_wheel = true;
                    self.wheel.push(Reverse((due, id)));
                }
            }
        }
    }

    /// Run every real-time tick whose deadline has arrived.
    fn run_due_wheel(&mut self) {
        loop {
            let now = Instant::now();
            let id = match self.wheel.peek() {
                Some(&Reverse((due, id))) if due <= now => id,
                _ => return,
            };
            self.wheel.pop();
            let Some(entry) = self.tasks.get_mut(&id) else {
                continue;
            };
            entry.in_wheel = false;
            if !entry.task.runnable() {
                continue;
            }
            let outcome = entry.task.scheduler.begin_tick(now);
            self.metrics
                .jitter_ns
                .observe(outcome.lateness.as_nanos() as u64);
            if outcome.missed_now > 0 {
                // Shed edges: the wheel skipped this session forward.
                self.metrics.deadline_miss.add(outcome.missed_now);
            }
            entry.task.tick(outcome);
            self.metrics.ticks.inc();
            self.enqueue(id);
        }
    }

    /// Round-robin the ready queue, giving each max-speed session a
    /// bounded tick batch.
    fn run_ready_batch(&mut self) {
        let rotations = self.ready.len();
        for _ in 0..rotations {
            let Some(id) = self.ready.pop_front() else {
                return;
            };
            let Some(entry) = self.tasks.get_mut(&id) else {
                continue;
            };
            entry.in_ready = false;
            let mut budget = MAX_SPEED_BATCH;
            while budget > 0 && entry.task.runnable() {
                entry.task.tick(PaceOutcome::default());
                self.metrics.ticks.inc();
                budget -= 1;
            }
            self.enqueue(id);
        }
    }

    /// Housekeeping: thaw expired quiesce holds, evict idle sessions
    /// (unless pinned for migration), refresh gauges.
    fn sweep(&mut self, now: Instant) {
        let mut thawed = Vec::new();
        let mut evict = Vec::new();
        let mut runnable = 0u64;
        for (&id, entry) in self.tasks.iter_mut() {
            if let Some(until) = entry.task.quiesced_until {
                if now >= until {
                    // The migrator crashed or stalled past its hold;
                    // the session resumes by itself.
                    entry.task.thaw();
                    thawed.push(id);
                }
                continue;
            }
            if entry.task.runnable() {
                runnable += 1;
                continue;
            }
            if now >= entry.task.idle_deadline {
                if entry.task.pin.begin_evict() {
                    evict.push(id);
                } else {
                    // Pinned mid-migration: the control plane owns its
                    // fate; restart the idle clock.
                    entry.task.extend_idle(now);
                }
            }
        }
        for id in thawed {
            self.enqueue(id);
        }
        for id in evict {
            let Some(mut entry) = self.tasks.remove(&id) else {
                continue;
            };
            // The pin is already CLOSED (begin_evict); complete the
            // exit protocol by flipping the handle's flag.
            entry.task.abandon();
            entry
                .task
                .closed
                .store(true, crate::sync::atomic::Ordering::Release);
            self.metrics.evicted.inc();
        }
        self.metrics.sessions.set(self.tasks.len() as f64);
        self.metrics.runnable.set(runnable as f64);
    }

    fn remove(&mut self, id: u64) {
        if let Some(entry) = self.tasks.remove(&id) {
            entry.task.finish();
        }
        self.metrics.sessions.set(self.tasks.len() as f64);
    }

    fn close_all(&mut self) {
        for (_, mut entry) in self.tasks.drain() {
            entry.task.abandon();
            entry.task.finish();
        }
        self.wheel.clear();
        self.ready.clear();
        self.metrics.sessions.set(0.0);
        self.metrics.runnable.set(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Response;
    use std::sync::mpsc;
    use tn_compass::ReferenceSim;
    use tn_core::NetworkBuilder;

    fn blank_sim() -> Box<dyn KernelSession> {
        Box::new(ReferenceSim::new(NetworkBuilder::new(1, 2, 1).build()))
    }

    fn ask(h: &SessionHandle, mk: impl FnOnce(mpsc::Sender<Response>) -> Cmd) -> Response {
        let (tx, rx) = mpsc::channel();
        h.send(mk(tx)).expect("session alive");
        rx.recv_timeout(Duration::from_secs(10)).expect("reply")
    }

    #[test]
    fn many_sessions_multiplex_on_two_shards() {
        let exec = ShardExecutor::new(ExecutorConfig {
            shards: 2,
            transient: false,
        });
        let cfg = SessionConfig {
            pace: Pace::MaxSpeed,
            ..Default::default()
        };
        let handles: Vec<_> = (0..16)
            .map(|i| {
                exec.admit(
                    format!("s{i}"),
                    blank_sim(),
                    cfg.clone(),
                    SessionStats::default(),
                    &[],
                    None,
                )
                .expect("admit")
            })
            .collect();
        // Drive them all concurrently through two shard threads.
        let replies: Vec<_> = handles
            .iter()
            .map(|h| {
                let (tx, rx) = mpsc::channel();
                h.send(Cmd::RunFor {
                    ticks: 200,
                    reply: tx,
                })
                .expect("alive");
                rx
            })
            .collect();
        for rx in replies {
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(10)).expect("reply"),
                Response::Ok
            );
        }
        for h in &handles {
            match ask(h, |r| Cmd::Stats { reply: r }) {
                Response::StatsData(s) => assert_eq!(s.tick, 200),
                other => panic!("{other:?}"),
            }
        }
        let text = exec.registry().render_text();
        tn_obs::validate_exposition(&text).expect("valid shard exposition");
        assert!(
            text.contains("tn_shard_exec_sessions{shard=\"0\"}"),
            "{text}"
        );
        assert!(
            text.contains("tn_shard_exec_sessions{shard=\"1\"}"),
            "{text}"
        );
        let ticks: u64 = (0..2)
            .map(|k| {
                let ks = k.to_string();
                exec.registry()
                    .counter_value("tn_shard_exec_ticks_total", &[("shard", ks.as_str())])
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(ticks, 16 * 200);
        exec.shutdown();
        for h in &handles {
            assert!(h.is_closed(), "shutdown closes every session");
        }
    }

    #[test]
    fn real_time_sessions_share_one_wheel_and_hold_cadence() {
        let exec = ShardExecutor::new(ExecutorConfig {
            shards: 1,
            transient: false,
        });
        let cfg = SessionConfig {
            pace: Pace::RealTime,
            tick_period: Duration::from_millis(2),
            ..Default::default()
        };
        let handles: Vec<_> = (0..4)
            .map(|i| {
                exec.admit(
                    format!("rt{i}"),
                    blank_sim(),
                    cfg.clone(),
                    SessionStats::default(),
                    &[],
                    None,
                )
                .expect("admit")
            })
            .collect();
        let start = Instant::now();
        let replies: Vec<_> = handles
            .iter()
            .map(|h| {
                let (tx, rx) = mpsc::channel();
                h.send(Cmd::RunFor {
                    ticks: 10,
                    reply: tx,
                })
                .expect("alive");
                rx
            })
            .collect();
        for rx in replies {
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(10)).expect("reply"),
                Response::Ok
            );
        }
        // 10 ticks on a 2 ms grid cannot finish faster than the grid,
        // even multiplexed: the wheel paces each session separately.
        assert!(
            start.elapsed() >= Duration::from_millis(18),
            "wheel must pace real-time sessions, finished in {:?}",
            start.elapsed()
        );
        for h in &handles {
            match ask(h, |r| Cmd::Stats { reply: r }) {
                Response::StatsData(s) => assert_eq!(s.tick, 10),
                other => panic!("{other:?}"),
            }
        }
        exec.shutdown();
    }

    #[test]
    fn shard_thread_count_is_fixed_not_per_session() {
        let exec = ShardExecutor::new(ExecutorConfig {
            shards: 2,
            transient: false,
        });
        let before = count_threads();
        let cfg = SessionConfig {
            pace: Pace::MaxSpeed,
            ..Default::default()
        };
        let handles: Vec<_> = (0..64)
            .map(|i| {
                exec.admit(
                    format!("tc{i}"),
                    blank_sim(),
                    cfg.clone(),
                    SessionStats::default(),
                    &[],
                    None,
                )
                .expect("admit")
            })
            .collect();
        for h in &handles {
            assert_eq!(ask(h, |r| Cmd::RunFor { ticks: 5, reply: r }), Response::Ok);
        }
        let after = count_threads();
        assert!(
            after <= before + 2,
            "64 admissions must not grow the thread count (before={before}, after={after})"
        );
        exec.shutdown();
    }

    /// Process thread count via /proc (Linux); falls back to 0 elsewhere
    /// so the assertion trivially holds.
    fn count_threads() -> usize {
        std::fs::read_dir("/proc/self/task")
            .map(|d| d.count())
            .unwrap_or(0)
    }
}

/// Model-checked protocols for the sharded executor's session table
/// (satellite: the registry eviction model tests, ported to the
/// executor's evict path). Run with `RUSTFLAGS="--cfg tn_check"`.
#[cfg(all(test, tn_check))]
mod model_tests {
    use super::*;
    use crate::session::model_handle;
    use std::sync::mpsc;

    #[test]
    fn model_exec_evict_vs_tick_dfs() {
        // A shard's idle-eviction decision (begin_evict, then the
        // closed flip) racing a client command send through the handle
        // — the executor-table version of handle-close-vs-send. The
        // send may land in the channel before or after the evict, but
        // after eviction completes every send must fail cleanly, and a
        // send that failed must never have enqueued a command.
        let report = tn_check::check_dfs(&tn_check::Config::default(), 150_000, || {
            let (h, closed, rx, pin) = model_handle("e");
            let evictor = {
                let pin = Arc::clone(&pin);
                tn_check::thread::spawn(move || {
                    // The sweep's evict path: atomic with pin() via the
                    // shared mutex, then the exit protocol.
                    if pin.begin_evict() {
                        drop(rx); // the shard drops the task (and queue)
                        closed.store(true, Ordering::Release);
                        true
                    } else {
                        false
                    }
                })
            };
            let ticker = {
                let h = h.clone();
                tn_check::thread::spawn(move || {
                    let (reply, _keep) = mpsc::channel();
                    h.send(Cmd::RunFor { ticks: 1, reply }).is_ok()
                })
            };
            let evicted = evictor.join().unwrap();
            let _sent = ticker.join().unwrap();
            assert!(evicted, "no pin holder exists, eviction must win");
            let (reply, _keep) = mpsc::channel();
            assert!(
                h.send(Cmd::Stats { reply }).is_err(),
                "sends after a completed evict must report SessionGone"
            );
        });
        report.assert_ok();
        println!(
            "model_exec_evict_vs_tick_dfs: {} schedules, exhausted={}",
            report.schedules, report.exhausted
        );
    }

    #[test]
    fn model_exec_evict_vs_adopt_dfs() {
        // Idle eviction of a session racing the adoption (same-name
        // re-admission) that a migration target performs: the name
        // table must end holding exactly the adopted session, and the
        // adopt may only be admitted once the evicted handle is
        // observably closed (the registry's lazy reap).
        let report = tn_check::check_dfs(&tn_check::Config::default(), 150_000, || {
            let reg = Arc::new(crate::server::Registry::new(1));
            let (old, old_closed, _rx_old, old_pin) = model_handle("m");
            reg.insert(old, Arc::new(Vec::new()))
                .expect("first insert fits");
            let evictor = {
                let pin = Arc::clone(&old_pin);
                tn_check::thread::spawn(move || {
                    if pin.begin_evict() {
                        old_closed.store(true, Ordering::Release);
                    }
                })
            };
            let adopter = {
                let reg = Arc::clone(&reg);
                tn_check::thread::spawn(move || {
                    let (new, _c, _rx, _p) = model_handle("m");
                    reg.insert(new, Arc::new(Vec::new())).is_ok()
                })
            };
            evictor.join().unwrap();
            let adopted = adopter.join().unwrap();
            // Whatever interleaved, eviction completed by now, so a
            // retry must succeed — and the table holds exactly one
            // live session named "m".
            if !adopted {
                let (new, _c, _rx, _p) = model_handle("m");
                reg.insert(new, Arc::new(Vec::new()))
                    .expect("post-evict adopt must land");
            }
            assert_eq!(reg.count(), 1, "exactly the adopted session remains");
            assert!(
                reg.get("m").is_some_and(|h| !h.is_closed()),
                "the surviving entry is the live adopted session"
            );
        });
        report.assert_ok();
        println!(
            "model_exec_evict_vs_adopt_dfs: {} schedules, exhausted={}",
            report.schedules, report.exhausted
        );
    }
}
