//! A session: one live simulator instance behind a driver thread.
//!
//! Each session owns a boxed [`KernelSession`] (any kernel expression)
//! and is advanced exclusively by its driver thread, which multiplexes
//! three duties at tick granularity:
//!
//! 1. **Ticking** — running queued `RunFor` work at the session's pace
//!    (real-time 1 ms cadence or max speed), pulling injected spikes
//!    from the bounded [`tn_chip::stream`] queue;
//! 2. **Command service** — snapshots, restores, and stats are handled
//!    *between* ticks, so they always observe a tick boundary (the only
//!    place the blueprint's state is well-defined);
//! 3. **Streaming** — after every tick, output spikes and tick
//!    statistics fan out to subscribers; a subscriber that went away is
//!    dropped, never waited on.
//!
//! A session with no work and no commands for the configured idle
//! timeout evicts itself: the driver exits, marks the handle closed,
//! and the registry reaps it. Backpressure never blocks the driver —
//! injection overload is shed and counted upstream, and slow
//! subscriber channels fail the send rather than stalling the tick.

use crate::protocol::{ErrorCode, Health, Pace, Response, SessionStats, TickUpdate};
use crate::scheduler::{PaceOutcome, TickScheduler};
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};
use tn_chip::stream::{stream_channel, Injector, StreamSource};
use tn_compass::KernelSession;
use tn_core::wire::InputEvent;
use tn_core::NetworkSnapshot;
use tn_obs::{Counter, FlightRecorder, Histogram, Registry, TickFrame};

/// Per-session tuning, inherited from the server configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    pub pace: Pace,
    /// Real-time tick period (the paper's tick is 1 ms).
    pub tick_period: Duration,
    /// Sessions idle longer than this are evicted.
    pub idle_timeout: Duration,
    /// Bound on queued injected events (backpressure threshold).
    pub input_capacity: usize,
    /// High-water mark on the undrained output transcript; beyond it the
    /// oldest spikes are evicted and counted (`SessionStats::
    /// spikes_evicted`) instead of growing without bound.
    pub output_capacity: usize,
    /// Flight-recorder depth: the last N ticks kept for post-mortems.
    pub flight_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            pace: Pace::RealTime,
            tick_period: Duration::from_millis(1),
            idle_timeout: Duration::from_secs(120),
            input_capacity: 1 << 16,
            output_capacity: 1 << 20,
            flight_capacity: FlightRecorder::DEFAULT_CAPACITY,
        }
    }
}

/// A frame on its way out to one connection's writer thread.
pub enum Outbound {
    /// An encoded frame to write.
    Frame(Vec<u8>),
    /// Close the connection's writer.
    Close,
}

/// Commands a connection thread sends to a session driver. Replies
/// arrive on the per-command channel; `RunFor` replies only after all
/// requested ticks have run.
pub enum Cmd {
    RunFor {
        ticks: u64,
        reply: Sender<Response>,
    },
    Snapshot {
        reply: Sender<Response>,
    },
    Restore {
        bytes: Vec<u8>,
        reply: Sender<Response>,
    },
    Stats {
        reply: Sender<Response>,
    },
    GetMetrics {
        reply: Sender<Response>,
    },
    Subscribe {
        sink: Sender<Outbound>,
        reply: Sender<Response>,
    },
    Close {
        reply: Sender<Response>,
    },
    /// Control plane: freeze the session at its next tick boundary and
    /// hand back everything a target server needs to adopt it. The
    /// driver stops ticking until [`Cmd::Resume`] or [`Cmd::Retire`]
    /// arrives — or `hold` elapses, after which it resumes by itself so
    /// a crashed migrator can never wedge the session.
    Quiesce {
        hold: Duration,
        reply: Sender<MigrationTicket>,
    },
    /// Control plane: the migration was aborted — thaw and keep ticking
    /// here as if nothing happened.
    Resume,
    /// Control plane: the target has adopted the session. Answer every
    /// queued `RunFor` waiter and every subscriber with a
    /// [`Response::Redirect`] to `addr`, then exit.
    Retire {
        addr: String,
        reply: Sender<Response>,
    },
}

/// Everything the migration transfer phase ships to the target: the
/// quiesced snapshot, the cumulative counters that do *not* live in the
/// snapshot (so stats stay continuous across the move), and the input
/// events still queued for future ticks.
#[derive(Clone, Debug)]
pub struct MigrationTicket {
    pub snapshot: Vec<u8>,
    pub baseline: SessionStats,
    pub pending: Vec<InputEvent>,
}

/// The migration pin: a three-state mutex/condvar cell shared between a
/// session's handle and its driver. It serializes the two decisions
/// that race during a live migration — the driver deciding to idle-evict
/// and the control plane deciding to migrate — and gives the commit
/// phase a handshake to wait on.
///
/// States: `RUNNING` (normal), `MIGRATING` (pinned — the driver must
/// not idle-evict), `CLOSED` (the driver has exited). All transitions
/// happen under the mutex, so pin-vs-evict is a total order: whoever
/// locks first wins, and the loser observes it (model-checked in
/// `server::model_tests`).
pub(crate) struct MigrationPin {
    state: Mutex<u8>,
    cond: Condvar,
}

pub(crate) const PIN_RUNNING: u8 = 0;
pub(crate) const PIN_MIGRATING: u8 = 1;
pub(crate) const PIN_CLOSED: u8 = 2;

impl MigrationPin {
    pub(crate) fn new() -> Self {
        MigrationPin {
            state: Mutex::new(PIN_RUNNING),
            cond: Condvar::new(),
        }
    }

    /// `RUNNING → MIGRATING`. Fails if the driver already exited (the
    /// eviction won the race) or another migration holds the pin.
    pub(crate) fn pin(&self) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if *st != PIN_RUNNING {
            return false;
        }
        *st = PIN_MIGRATING;
        true
    }

    /// `MIGRATING → RUNNING` (abort path). A no-op once closed.
    pub(crate) fn unpin(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if *st == PIN_MIGRATING {
            *st = PIN_RUNNING;
        }
        self.cond.notify_all();
    }

    /// The driver's exit protocol: `* → CLOSED`, waking any commit-phase
    /// waiter.
    pub(crate) fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *st = PIN_CLOSED;
        self.cond.notify_all();
    }

    pub(crate) fn is_migrating(&self) -> bool {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) == PIN_MIGRATING
    }

    /// Commit-phase handshake: block until the retiring driver reaches
    /// `CLOSED`, bounded by `timeout`. Returns whether it did.
    pub(crate) fn wait_closed(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while *st != PIN_CLOSED {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) = self
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        true
    }
}

/// The session's driver is gone (evicted, closed, or crashed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionGone;

impl std::fmt::Display for SessionGone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session driver is gone")
    }
}

impl std::error::Error for SessionGone {}

/// Shared handle to a live session.
#[derive(Clone)]
pub struct SessionHandle {
    pub name: String,
    cmd: Sender<Cmd>,
    injector: Injector,
    closed: Arc<AtomicBool>,
    migration: Arc<MigrationPin>,
}

impl SessionHandle {
    /// Queue a command for the driver. `Err` means the driver is gone
    /// (evicted or closed).
    pub fn send(&self, cmd: Cmd) -> Result<(), SessionGone> {
        if self.is_closed() {
            return Err(SessionGone);
        }
        self.cmd.send(cmd).map_err(|_| SessionGone)
    }

    /// The injection side-channel: offers go straight into the bounded
    /// stream queue without a driver round-trip.
    pub fn injector(&self) -> &Injector {
        &self.injector
    }

    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// The session's migration pin (see [`MigrationPin`]).
    pub(crate) fn migration(&self) -> &Arc<MigrationPin> {
        &self.migration
    }
}

/// Spawn a session driver around a simulator instance. The thread is
/// detached; it exits on `Close`, on idle timeout, or when every
/// `SessionHandle` clone is dropped.
pub fn spawn_session(
    name: String,
    sim: Box<dyn KernelSession>,
    cfg: SessionConfig,
) -> SessionHandle {
    spawn_session_resumed(name, sim, cfg, SessionStats::default(), &[])
}

/// [`spawn_session`] for an *adopted* (migrated-in) session: `base`
/// carries the source server's cumulative counters so stats stay
/// continuous, and `pending` re-queues the input events that had not
/// yet reached their tick when the session was quiesced.
pub fn spawn_session_resumed(
    name: String,
    mut sim: Box<dyn KernelSession>,
    cfg: SessionConfig,
    base: SessionStats,
    pending: &[InputEvent],
) -> SessionHandle {
    let (cmd_tx, cmd_rx) = mpsc::channel();
    let (source, injector) = stream_channel(sim.network().num_cores(), cfg.input_capacity);
    // sync: the driver's store(true, Release) on exit pairs with
    // load(Acquire) in is_closed(), ordering the driver's final state
    // before any caller that observes the handle as closed — so a
    // handle seen closed is safe for the registry to reap and replace
    // (model-checked in server::model_tests).
    let closed = Arc::new(AtomicBool::new(false));
    let migration = Arc::new(MigrationPin::new());
    let handle = SessionHandle {
        name: name.clone(),
        cmd: cmd_tx,
        injector: injector.clone(),
        closed: Arc::clone(&closed),
        migration: Arc::clone(&migration),
    };
    if !pending.is_empty() {
        // The driver has no queued work yet, so re-offering the carried
        // events here races nothing; capacity matches the source's
        // config, so a ticket's worth always fits.
        injector
            .offer(pending)
            .expect("migrated pending events were validated on first ingest");
    }
    sim.outputs().set_capacity(cfg.output_capacity);
    let mut driver = Driver {
        name,
        sim,
        source,
        injector,
        scheduler: TickScheduler::new(cfg.pace, cfg.tick_period),
        subscribers: Vec::new(),
        run_queue: VecDeque::new(),
        obs: SessionObs::new(cfg.flight_capacity),
        base,
        quiesced_until: None,
        pin: migration,
    };
    // sync: deliberately detached — the driver self-terminates on
    // Close, idle timeout, or all handles dropping, and its last act
    // is the closed.store(true, Release) the registry reaps on.
    std::thread::Builder::new()
        .name(format!("tn-session-{}", driver.name))
        .spawn(move || {
            driver.run(cmd_rx, cfg.idle_timeout);
            // The pin reaches CLOSED before the closed flag flips, so a
            // migrator that loses the pin race also sees is_closed().
            driver.pin.close();
            closed.store(true, Ordering::Release);
        })
        .expect("spawn session driver");
    handle
}

/// Model-checking constructor: a handle with no driver thread. The
/// test plays the driver — it gets the `closed` flag to flip (the
/// driver's exit protocol) and the command receiver so `send` works.
#[cfg(all(tn_check, test))]
pub(crate) fn model_handle(
    name: &str,
) -> (
    SessionHandle,
    Arc<AtomicBool>,
    Receiver<Cmd>,
    Arc<MigrationPin>,
) {
    let (cmd_tx, cmd_rx) = mpsc::channel();
    let (_source, injector) = stream_channel(1, 4);
    // sync: see spawn_session — the model test flips this flag in the
    // driver's stead.
    let closed = Arc::new(AtomicBool::new(false));
    let migration = Arc::new(MigrationPin::new());
    let handle = SessionHandle {
        name: name.to_string(),
        cmd: cmd_tx,
        injector,
        closed: Arc::clone(&closed),
        migration: Arc::clone(&migration),
    };
    (handle, closed, cmd_rx, migration)
}

/// A session's observability state: its own metrics registry (sessions
/// are separate scrape targets, so no session label is needed), a
/// bounded flight recorder, and cached handles for the counters the
/// tick loop touches every tick.
///
/// The `tn_session_*` counters are accumulated *per tick from
/// `TickStats` deltas* — an independent accounting path from the
/// engine-total sync in `KernelSession::publish_metrics` — so a scrape
/// cross-checks the two: `tn_session_ticks_total` must equal
/// `tn_kernel_ticks_total`, and likewise for every shared series.
struct SessionObs {
    registry: Registry,
    flight: FlightRecorder,
    ticks: Arc<Counter>,
    axon_events: Arc<Counter>,
    sops: Arc<Counter>,
    neuron_updates: Arc<Counter>,
    spikes_out: Arc<Counter>,
    prng_draws: Arc<Counter>,
    deadline_miss: Arc<Counter>,
    /// Start-time offset from the deadline, observed on *every* paced
    /// tick (0 for a tick that started on its edge) — the session's
    /// jitter distribution.
    jitter_ns: Arc<Histogram>,
    /// Lateness observed only on ticks that missed their deadline.
    lateness_ns: Arc<Histogram>,
}

/// 1 µs … ~16 ms in ×4 steps: spans sub-tick jitter up to many whole
/// 1 ms periods of lateness.
const LATENESS_BOUNDS: [u64; 8] = [
    1_000, 4_000, 16_000, 64_000, 256_000, 1_024_000, 4_096_000, 16_384_000,
];

impl SessionObs {
    fn new(flight_capacity: usize) -> Self {
        let registry = Registry::new();
        SessionObs {
            flight: FlightRecorder::new(flight_capacity),
            ticks: registry.counter("tn_session_ticks_total"),
            axon_events: registry.counter("tn_session_axon_events_total"),
            sops: registry.counter("tn_session_sops_total"),
            neuron_updates: registry.counter("tn_session_neuron_updates_total"),
            spikes_out: registry.counter("tn_session_spikes_out_total"),
            prng_draws: registry.counter("tn_session_prng_draws_total"),
            deadline_miss: registry.counter("tn_session_deadline_miss_total"),
            jitter_ns: registry.histogram("tn_session_tick_jitter_ns", &LATENESS_BOUNDS),
            lateness_ns: registry.histogram("tn_session_deadline_lateness_ns", &LATENESS_BOUNDS),
            registry,
        }
    }
}

struct Driver {
    name: String,
    sim: Box<dyn KernelSession>,
    source: StreamSource,
    injector: Injector,
    scheduler: TickScheduler,
    subscribers: Vec<Sender<Outbound>>,
    /// Outstanding `RunFor` work: `(ticks_left, reply)` in arrival order.
    run_queue: VecDeque<(u64, Sender<Response>)>,
    obs: SessionObs,
    /// Cumulative counters inherited from this session's pre-migration
    /// life on another server (all zero for a fresh session).
    base: SessionStats,
    /// While `Some`, the session is quiesced for migration: no ticks
    /// run until `Resume`/`Retire` arrives or the deadline passes.
    quiesced_until: Option<Instant>,
    pin: Arc<MigrationPin>,
}

impl Driver {
    /// Degradation state: `Failed` once every core is disabled,
    /// `Degraded` while any core is disabled or the fault layer has
    /// dropped traffic, `Healthy` otherwise.
    fn health(&self, fault_dropped: u64) -> Health {
        let disabled = self.sim.disabled_cores();
        if disabled == self.sim.network().num_cores() {
            Health::Failed
        } else if disabled > 0 || fault_dropped > 0 {
            Health::Degraded
        } else {
            Health::Healthy
        }
    }

    fn run(&mut self, cmd_rx: Receiver<Cmd>, idle_timeout: Duration) {
        loop {
            if let Some(until) = self.quiesced_until {
                // Quiesced for migration: frozen at the tick boundary.
                // Serve commands, but run nothing until Resume/Retire —
                // or the hold deadline, after which the driver thaws
                // itself (a crashed migrator must not stop the ticking).
                let now = Instant::now();
                if now >= until {
                    self.thaw();
                    continue;
                }
                match cmd_rx.recv_timeout(until - now) {
                    Ok(cmd) => {
                        if self.handle_cmd(cmd) {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => self.thaw(),
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            } else if self.run_queue.is_empty() {
                // Idle: block for the next command, up to eviction.
                self.scheduler.reset();
                match cmd_rx.recv_timeout(idle_timeout) {
                    Ok(cmd) => {
                        if self.handle_cmd(cmd) {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        // A migration in flight pins the session against
                        // idle eviction; the pin also restarts the idle
                        // clock, so a pinned session cannot be reaped
                        // out from under its migrator.
                        if self.pin.is_migrating() {
                            continue;
                        }
                        return; // evicted
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return; // abandoned
                    }
                }
            } else {
                // Busy: service pending commands between ticks, without
                // blocking the cadence.
                while let Ok(cmd) = cmd_rx.try_recv() {
                    if self.handle_cmd(cmd) {
                        return;
                    }
                }
                if self.run_queue.is_empty() {
                    continue;
                }
                let pace = self.scheduler.pace();
                self.tick(pace);
            }
        }
    }

    /// Leave the quiesced state and re-anchor the real-time cadence so
    /// the frozen interval does not book phantom deadline misses.
    fn thaw(&mut self) {
        self.quiesced_until = None;
        self.scheduler.reset();
    }

    /// Point-in-time stats, with the migration baselines folded in so a
    /// session reports the same cumulative counters wherever it runs.
    fn stats(&mut self) -> SessionStats {
        let totals = self.sim.stats().totals;
        let fault_dropped = self
            .sim
            .fault_counters()
            .map(|c| c.total_dropped())
            .unwrap_or(0)
            + self.base.fault_dropped;
        // The two drop tallies are disjoint by construction, so
        // their sum never double-counts an event: `Injector::
        // offer` validates targets against the grid and rejects
        // whole batches up front (counting them itself), so every
        // event it forwards has an in-grid core — the engine's
        // own out-of-grid shedding can only fire for events that
        // bypassed the injector. Pinned by the
        // `overload_drops_are_counted_once` integration test.
        let dropped_inputs =
            self.sim.dropped_inputs() + self.injector.dropped() + self.base.dropped_inputs;
        SessionStats {
            tick: self.sim.current_tick(),
            spikes_out: totals.spikes_out + self.base.spikes_out,
            sops: totals.sops + self.base.sops,
            neuron_updates: totals.neuron_updates + self.base.neuron_updates,
            dropped_inputs,
            pending_inputs: self.injector.pending() as u64,
            missed_deadlines: self.scheduler.missed_deadlines() + self.base.missed_deadlines,
            state_digest: self.sim.state_digest(),
            energy_j: self.sim.energy_j().unwrap_or(0.0) + self.base.energy_j,
            health: self.health(fault_dropped),
            fault_dropped,
            spikes_evicted: self.sim.outputs().evicted() + self.base.spikes_evicted,
            engine: self.sim.engine_name().to_string(),
        }
    }

    /// Run exactly one tick and stream it to subscribers.
    fn tick(&mut self, pace: PaceOutcome) {
        let tick = self.sim.current_tick();
        let energy_before = self.sim.energy_j().unwrap_or(0.0);
        let stats = self.sim.step(&mut self.source);

        // Per-tick delta accounting (see `SessionObs`), plus the
        // deadline telemetry from this tick's pacing outcome.
        let lateness_ns = pace.lateness.as_nanos() as u64;
        self.obs.ticks.inc();
        self.obs.axon_events.add(stats.axon_events);
        self.obs.sops.add(stats.sops);
        self.obs.neuron_updates.add(stats.neuron_updates);
        self.obs.spikes_out.add(stats.spikes_out);
        self.obs.prng_draws.add(stats.prng_draws);
        if self.scheduler.pace_mode() == Pace::RealTime {
            self.obs.jitter_ns.observe(lateness_ns);
            if pace.missed_now > 0 {
                self.obs.deadline_miss.add(pace.missed_now);
                self.obs.lateness_ns.observe(lateness_ns);
            }
        }
        self.obs.flight.record(TickFrame {
            tick,
            spikes_out: stats.spikes_out,
            sops: stats.sops,
            axon_events: stats.axon_events,
            pending_inputs: self.injector.pending() as u64,
            dropped_inputs: self.sim.dropped_inputs() + self.injector.dropped(),
            lateness_ns,
            missed: pace.missed_now,
        });

        let outputs = self.sim.outputs().take();
        if !self.subscribers.is_empty() {
            let update = Response::TickUpdate(TickUpdate {
                session: self.name.clone(),
                tick,
                spikes_out: stats.spikes_out,
                sops: stats.sops,
                energy_j: self.sim.energy_j().map_or(0.0, |e| e - energy_before),
                ports: outputs.iter().map(|e| e.port).collect(),
            });
            let frame = update.encode();
            self.subscribers
                .retain(|sink| sink.send(Outbound::Frame(frame.clone())).is_ok());
        }
        if let Some((left, _)) = self.run_queue.front_mut() {
            *left -= 1;
            if *left == 0 {
                let (_, reply) = self.run_queue.pop_front().unwrap();
                let _ = reply.send(Response::Ok);
            }
        }
    }

    /// Handle one command; returns `true` when the session should close.
    fn handle_cmd(&mut self, cmd: Cmd) -> bool {
        match cmd {
            Cmd::RunFor { ticks, reply } => {
                if ticks == 0 {
                    let _ = reply.send(Response::Ok);
                } else {
                    self.run_queue.push_back((ticks, reply));
                }
            }
            Cmd::Snapshot { reply } => {
                let bytes = self.sim.checkpoint().to_bytes();
                let _ = reply.send(Response::SnapshotData { bytes });
            }
            Cmd::Restore { bytes, reply } => {
                let resp = match NetworkSnapshot::from_bytes(&bytes) {
                    Ok(snap) if snap.cores.len() == self.sim.network().num_cores() => {
                        self.sim.restore(&snap);
                        Response::Ok
                    }
                    Ok(snap) => Response::Error {
                        code: ErrorCode::SnapshotRejected,
                        message: format!(
                            "snapshot has {} cores, session has {}",
                            snap.cores.len(),
                            self.sim.network().num_cores()
                        ),
                    },
                    Err(e) => Response::Error {
                        code: ErrorCode::SnapshotRejected,
                        message: e.to_string(),
                    },
                };
                let _ = reply.send(resp);
            }
            Cmd::Stats { reply } => {
                let _ = reply.send(Response::StatsData(self.stats()));
            }
            Cmd::GetMetrics { reply } => {
                // Sync the engine's own totals (an independent path from
                // the per-tick deltas above — a scrape can cross-check
                // tn_kernel_* against tn_session_*), then the
                // session-level point-in-time series.
                self.sim.publish_metrics(&self.obs.registry);
                let reg = &self.obs.registry;
                reg.counter("tn_session_deadline_miss_total")
                    .set(self.scheduler.missed_deadlines());
                reg.counter("tn_session_dropped_inputs_total")
                    .set(self.sim.dropped_inputs() + self.injector.dropped());
                reg.counter("tn_session_spikes_evicted_total")
                    .set(self.sim.outputs().evicted());
                reg.gauge("tn_session_pending_inputs")
                    .set(self.injector.pending() as f64);
                let mut text = reg.render_text();
                text.push_str(&self.obs.flight.render_text());
                let _ = reply.send(Response::MetricsData { text });
            }
            Cmd::Subscribe { sink, reply } => {
                self.subscribers.push(sink);
                let _ = reply.send(Response::Ok);
            }
            Cmd::Close { reply } => {
                // Unfinished runs are abandoned; tell their waiters.
                for (_, waiting) in self.run_queue.drain(..) {
                    let _ = waiting.send(Response::Error {
                        code: ErrorCode::Shutdown,
                        message: "session closed".to_string(),
                    });
                }
                let _ = reply.send(Response::Ok);
                return true;
            }
            Cmd::Quiesce { hold, reply } => {
                // Settle the engine at the tick boundary (sharded
                // sessions flush in-flight boundary batches), then build
                // the ticket. Pending inputs are *copied*, not drained:
                // an aborted migration must leave the source exactly as
                // it was, and on commit the source queue dies with the
                // retiring driver anyway.
                self.sim.quiesce();
                let snapshot = self.sim.checkpoint().to_bytes();
                let baseline = self.stats();
                let pending = self.injector.pending_events();
                self.quiesced_until = Some(Instant::now() + hold);
                let _ = reply.send(MigrationTicket {
                    snapshot,
                    baseline,
                    pending,
                });
            }
            Cmd::Resume => {
                if self.quiesced_until.is_some() {
                    self.thaw();
                }
            }
            Cmd::Retire { addr, reply } => {
                // The target owns the session now: answer everyone who
                // is (or will be, via the registry's moved map) waiting
                // on this copy with the forwarding address.
                let redirect = Response::Redirect {
                    session: self.name.clone(),
                    addr,
                };
                for (_, waiting) in self.run_queue.drain(..) {
                    let _ = waiting.send(redirect.clone());
                }
                let frame = redirect.encode();
                for sink in self.subscribers.drain(..) {
                    let _ = sink.send(Outbound::Frame(frame.clone()));
                }
                let _ = reply.send(Response::Ok);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_compass::ReferenceSim;
    use tn_core::NetworkBuilder;

    fn blank_session(cfg: SessionConfig) -> SessionHandle {
        let net = NetworkBuilder::new(2, 2, 1).build();
        spawn_session("t".into(), Box::new(ReferenceSim::new(net)), cfg)
    }

    fn ask(h: &SessionHandle, mk: impl FnOnce(Sender<Response>) -> Cmd) -> Response {
        let (tx, rx) = mpsc::channel();
        h.send(mk(tx)).expect("session alive");
        rx.recv_timeout(Duration::from_secs(10)).expect("reply")
    }

    #[test]
    fn run_for_replies_after_the_ticks_ran() {
        let h = blank_session(SessionConfig {
            pace: Pace::MaxSpeed,
            ..Default::default()
        });
        assert_eq!(
            ask(&h, |r| Cmd::RunFor {
                ticks: 25,
                reply: r
            }),
            Response::Ok
        );
        match ask(&h, |r| Cmd::Stats { reply: r }) {
            Response::StatsData(s) => {
                assert_eq!(s.tick, 25);
                assert_eq!(s.engine, "reference");
                assert_eq!(s.missed_deadlines, 0);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ask(&h, |r| Cmd::Close { reply: r }), Response::Ok);
        // The driver marks itself closed promptly after Close.
        for _ in 0..100 {
            if h.is_closed() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(h.is_closed());
    }

    #[test]
    fn idle_sessions_evict_themselves() {
        let h = blank_session(SessionConfig {
            pace: Pace::MaxSpeed,
            idle_timeout: Duration::from_millis(50),
            ..Default::default()
        });
        assert!(!h.is_closed());
        for _ in 0..100 {
            if h.is_closed() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(h.is_closed(), "idle session was not evicted");
        // Commands to an evicted session fail cleanly.
        let (tx, _rx) = mpsc::channel();
        assert!(h.send(Cmd::Stats { reply: tx }).is_err());
    }

    #[test]
    fn snapshot_restore_between_sessions() {
        let cfg = SessionConfig {
            pace: Pace::MaxSpeed,
            ..Default::default()
        };
        let a = blank_session(cfg.clone());
        ask(&a, |r| Cmd::RunFor {
            ticks: 10,
            reply: r,
        });
        let bytes = match ask(&a, |r| Cmd::Snapshot { reply: r }) {
            Response::SnapshotData { bytes } => bytes,
            other => panic!("{other:?}"),
        };
        let b = blank_session(cfg);
        assert_eq!(
            ask(&b, |r| Cmd::Restore {
                bytes: bytes.clone(),
                reply: r
            }),
            Response::Ok
        );
        match ask(&b, |r| Cmd::Stats { reply: r }) {
            Response::StatsData(s) => assert_eq!(s.tick, 10),
            other => panic!("{other:?}"),
        }
        // Garbage bytes are rejected, not fatal.
        match ask(&b, |r| Cmd::Restore {
            bytes: vec![1, 2, 3],
            reply: r,
        }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::SnapshotRejected),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metrics_scrape_is_valid_and_reconciles_with_engine_totals() {
        let h = blank_session(SessionConfig {
            pace: Pace::MaxSpeed,
            ..Default::default()
        });
        ask(&h, |r| Cmd::RunFor {
            ticks: 12,
            reply: r,
        });
        let text = match ask(&h, |r| Cmd::GetMetrics { reply: r }) {
            Response::MetricsData { text } => text,
            other => panic!("{other:?}"),
        };
        let summary = tn_obs::validate_exposition(&text).expect("valid exposition");
        assert!(summary.samples > 0);
        // The per-tick delta path (tn_session_*) and the engine-total
        // sync (tn_kernel_*) agree on the tick count.
        assert!(text.contains("tn_session_ticks_total 12"), "{text}");
        assert!(text.contains("tn_kernel_ticks_total 12"), "{text}");
        assert!(text.contains("# flight-recorder"), "{text}");
    }

    #[test]
    fn subscribers_receive_every_tick() {
        let h = blank_session(SessionConfig {
            pace: Pace::MaxSpeed,
            ..Default::default()
        });
        let (sink, updates) = mpsc::channel();
        assert_eq!(ask(&h, |r| Cmd::Subscribe { sink, reply: r }), Response::Ok);
        ask(&h, |r| Cmd::RunFor { ticks: 5, reply: r });
        let mut ticks = Vec::new();
        while let Ok(Outbound::Frame(f)) = updates.try_recv() {
            let (op, payload) = crate::protocol::split_frame(&f).unwrap();
            match Response::decode(op, payload).unwrap() {
                Response::TickUpdate(u) => ticks.push(u.tick),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(ticks, vec![0, 1, 2, 3, 4]);
    }
}
