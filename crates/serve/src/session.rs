//! A session: one live simulator instance multiplexed on a driver shard.
//!
//! Each session owns a boxed [`KernelSession`] (any kernel expression)
//! and is advanced exclusively by the shard of the
//! [`crate::executor::ShardExecutor`] it was admitted to. A shard
//! multiplexes many sessions at tick granularity, with three duties per
//! session:
//!
//! 1. **Ticking** — running queued `RunFor` work at the session's pace
//!    (real-time 1 ms cadence via the shard's deadline wheel, or max
//!    speed in round-robin batches), pulling injected spikes from the
//!    bounded [`tn_chip::stream`] queue;
//! 2. **Command service** — snapshots, restores, and stats are handled
//!    *between* ticks, so they always observe a tick boundary (the only
//!    place the blueprint's state is well-defined);
//! 3. **Streaming** — after every tick, output spikes and tick
//!    statistics fan out to subscribers; a subscriber that went away is
//!    dropped, never waited on.
//!
//! A session with no work and no commands for the configured idle
//! timeout is evicted by its shard's sweep: the task is dropped, the
//! handle marked closed, and the registry reaps it. Backpressure never
//! blocks a shard — injection overload is shed and counted upstream,
//! and slow subscriber channels fail the send rather than stalling the
//! tick.

use crate::executor::{ExecutorConfig, ShardExecutor, ShardMsg};
use crate::protocol::{ErrorCode, Health, Pace, Response, SessionStats, TickUpdate};
use crate::scheduler::{PaceOutcome, TickScheduler};
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::time::{Duration, Instant};
use tn_chip::stream::{stream_channel, Injector, StreamSource};
use tn_compass::KernelSession;
use tn_core::wire::InputEvent;
use tn_core::NetworkSnapshot;
use tn_obs::{Counter, FlightRecorder, Histogram, Registry, TickFrame};

/// Per-session tuning, inherited from the server configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    pub pace: Pace,
    /// Real-time tick period (the paper's tick is 1 ms).
    pub tick_period: Duration,
    /// Sessions idle longer than this are evicted.
    pub idle_timeout: Duration,
    /// Bound on queued injected events (backpressure threshold).
    pub input_capacity: usize,
    /// High-water mark on the undrained output transcript; beyond it the
    /// oldest spikes are evicted and counted (`SessionStats::
    /// spikes_evicted`) instead of growing without bound.
    pub output_capacity: usize,
    /// Flight-recorder depth: the last N ticks kept for post-mortems.
    pub flight_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            pace: Pace::RealTime,
            tick_period: Duration::from_millis(1),
            idle_timeout: Duration::from_secs(120),
            input_capacity: 1 << 16,
            output_capacity: 1 << 20,
            flight_capacity: FlightRecorder::DEFAULT_CAPACITY,
        }
    }
}

/// A frame on its way out to one connection's outbound queue.
pub enum Outbound {
    /// An encoded frame to write.
    Frame(Vec<u8>),
    /// Close the connection.
    Close,
}

/// Commands a connection sends to a session's shard. Replies arrive on
/// the per-command channel; `RunFor` replies only after all requested
/// ticks have run.
pub enum Cmd {
    RunFor {
        ticks: u64,
        reply: Sender<Response>,
    },
    Snapshot {
        reply: Sender<Response>,
    },
    Restore {
        bytes: Vec<u8>,
        reply: Sender<Response>,
    },
    Stats {
        reply: Sender<Response>,
    },
    GetMetrics {
        reply: Sender<Response>,
    },
    Subscribe {
        sink: Sender<Outbound>,
        reply: Sender<Response>,
    },
    Close {
        reply: Sender<Response>,
    },
    /// Control plane: freeze the session at its next tick boundary and
    /// hand back everything a target server needs to adopt it. The
    /// session stops ticking until [`Cmd::Resume`] or [`Cmd::Retire`]
    /// arrives — or `hold` elapses, after which it resumes by itself so
    /// a crashed migrator can never wedge the session.
    Quiesce {
        hold: Duration,
        reply: Sender<MigrationTicket>,
    },
    /// Control plane: the migration was aborted — thaw and keep ticking
    /// here as if nothing happened.
    Resume,
    /// Control plane: the target has adopted the session. Answer every
    /// queued `RunFor` waiter and every subscriber with a
    /// [`Response::Redirect`] to `addr`, then exit.
    Retire {
        addr: String,
        reply: Sender<Response>,
    },
}

/// Everything the migration transfer phase ships to the target: the
/// quiesced snapshot, the cumulative counters that do *not* live in the
/// snapshot (so stats stay continuous across the move), the input
/// events still queued for future ticks, and the real-time grid phase —
/// the offset to the next unbooked deadline edge, so exactly one side
/// books the in-flight slot (the source books any overrun at quiesce;
/// the target resumes the grid instead of re-anchoring).
#[derive(Clone, Debug)]
pub struct MigrationTicket {
    pub snapshot: Vec<u8>,
    pub baseline: SessionStats,
    pub pending: Vec<InputEvent>,
    /// `None` for max-speed sessions and never-anchored grids.
    pub grid_phase: Option<Duration>,
}

/// The migration pin: a three-state mutex/condvar cell shared between a
/// session's handle and its driver shard. It serializes the two
/// decisions that race during a live migration — the shard deciding to
/// idle-evict and the control plane deciding to migrate — and gives the
/// commit phase a handshake to wait on.
///
/// States: `RUNNING` (normal), `MIGRATING` (pinned — the shard must
/// not idle-evict), `CLOSED` (the session is gone). All transitions
/// happen under the mutex, so pin-vs-evict is a total order: whoever
/// locks first wins, and the loser observes it (model-checked in
/// `server::model_tests` and `executor::model_tests`).
pub(crate) struct MigrationPin {
    state: Mutex<u8>,
    cond: Condvar,
}

pub(crate) const PIN_RUNNING: u8 = 0;
pub(crate) const PIN_MIGRATING: u8 = 1;
pub(crate) const PIN_CLOSED: u8 = 2;

impl MigrationPin {
    pub(crate) fn new() -> Self {
        MigrationPin {
            state: Mutex::new(PIN_RUNNING),
            cond: Condvar::new(),
        }
    }

    /// `RUNNING → MIGRATING`. Fails if the session already closed (the
    /// eviction won the race) or another migration holds the pin.
    pub(crate) fn pin(&self) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if *st != PIN_RUNNING {
            return false;
        }
        *st = PIN_MIGRATING;
        true
    }

    /// `MIGRATING → RUNNING` (abort path). A no-op once closed.
    pub(crate) fn unpin(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if *st == PIN_MIGRATING {
            *st = PIN_RUNNING;
        }
        self.cond.notify_all();
    }

    /// The shard's idle-eviction decision, made atomic with `pin()` by
    /// sharing its mutex: `RUNNING → CLOSED` succeeds, `MIGRATING` is
    /// spared (the control plane owns the session's fate until it
    /// unpins). Unlike the unconditional [`MigrationPin::close`] used
    /// by explicit `Close`/`Retire`, eviction never steals a session
    /// out from under a pin holder.
    pub(crate) fn begin_evict(&self) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match *st {
            PIN_MIGRATING => false,
            _ => {
                *st = PIN_CLOSED;
                self.cond.notify_all();
                true
            }
        }
    }

    /// The session's exit protocol: `* → CLOSED`, waking any
    /// commit-phase waiter.
    pub(crate) fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *st = PIN_CLOSED;
        self.cond.notify_all();
    }

    /// Used by the `tn_check` migration model tests.
    #[cfg_attr(not(tn_check), allow(dead_code))]
    pub(crate) fn is_migrating(&self) -> bool {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) == PIN_MIGRATING
    }

    /// Commit-phase handshake: block until the retiring session reaches
    /// `CLOSED`, bounded by `timeout`. Returns whether it did.
    pub(crate) fn wait_closed(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while *st != PIN_CLOSED {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) = self
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        true
    }
}

/// The session's driver is gone (evicted, closed, or crashed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionGone;

impl std::fmt::Display for SessionGone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session driver is gone")
    }
}

impl std::error::Error for SessionGone {}

/// Shared handle to a live session. Commands route to the executor
/// shard that owns the session, addressed by its admission id.
#[derive(Clone)]
pub struct SessionHandle {
    pub name: String,
    pub(crate) id: u64,
    pub(crate) shard: Sender<ShardMsg>,
    injector: Injector,
    closed: Arc<AtomicBool>,
    migration: Arc<MigrationPin>,
}

impl SessionHandle {
    /// Queue a command for the session's shard. `Err` means the session
    /// is gone (evicted or closed).
    pub fn send(&self, cmd: Cmd) -> Result<(), SessionGone> {
        if self.is_closed() {
            return Err(SessionGone);
        }
        self.shard
            .send(ShardMsg::Cmd(self.id, cmd))
            .map_err(|_| SessionGone)
    }

    /// The injection side-channel: offers go straight into the bounded
    /// stream queue without a shard round-trip.
    pub fn injector(&self) -> &Injector {
        &self.injector
    }

    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// The session's migration pin (see [`MigrationPin`]).
    pub(crate) fn migration(&self) -> &Arc<MigrationPin> {
        &self.migration
    }
}

/// Spawn a standalone session on a private single-shard executor. The
/// shard thread is detached; it exits once the session closes (on
/// `Close`, idle timeout, or `Retire`) or every `SessionHandle` clone
/// plus the executor are dropped. Servers hosting many sessions should
/// admit them to a shared [`ShardExecutor`] instead.
pub fn spawn_session(
    name: String,
    sim: Box<dyn KernelSession>,
    cfg: SessionConfig,
) -> SessionHandle {
    spawn_session_resumed(name, sim, cfg, SessionStats::default(), &[])
}

/// [`spawn_session`] for an *adopted* (migrated-in) session: `base`
/// carries the source server's cumulative counters so stats stay
/// continuous, and `pending` re-queues the input events that had not
/// yet reached their tick when the session was quiesced.
pub fn spawn_session_resumed(
    name: String,
    sim: Box<dyn KernelSession>,
    cfg: SessionConfig,
    base: SessionStats,
    pending: &[InputEvent],
) -> SessionHandle {
    let exec = ShardExecutor::new(ExecutorConfig {
        shards: 1,
        transient: true,
    });
    exec.admit(name, sim, cfg, base, pending, None)
        .expect("a fresh transient executor always admits")
}

/// Model-checking constructor: a handle with no shard behind it. The
/// test plays the shard — it gets the `closed` flag to flip (the
/// session's exit protocol) and the shard receiver so `send` works.
#[cfg(all(tn_check, test))]
pub(crate) fn model_handle(
    name: &str,
) -> (
    SessionHandle,
    Arc<AtomicBool>,
    std::sync::mpsc::Receiver<ShardMsg>,
    Arc<MigrationPin>,
) {
    let (shard_tx, shard_rx) = std::sync::mpsc::channel();
    let (_source, injector) = stream_channel(1, 4);
    // sync: see SessionTask::finish — the model test flips this flag in
    // the shard's stead.
    let closed = Arc::new(AtomicBool::new(false));
    let migration = Arc::new(MigrationPin::new());
    let handle = SessionHandle {
        name: name.to_string(),
        id: 1,
        shard: shard_tx,
        injector,
        closed: Arc::clone(&closed),
        migration: Arc::clone(&migration),
    };
    (handle, closed, shard_rx, migration)
}

/// A session's observability state: its own metrics registry (sessions
/// are separate scrape targets, so no session label is needed), a
/// bounded flight recorder, and cached handles for the counters the
/// tick loop touches every tick.
///
/// The `tn_session_*` counters are accumulated *per tick from
/// `TickStats` deltas* — an independent accounting path from the
/// engine-total sync in `KernelSession::publish_metrics` — so a scrape
/// cross-checks the two: `tn_session_ticks_total` must equal
/// `tn_kernel_ticks_total`, and likewise for every shared series.
struct SessionObs {
    registry: Registry,
    flight: FlightRecorder,
    ticks: Arc<Counter>,
    axon_events: Arc<Counter>,
    sops: Arc<Counter>,
    neuron_updates: Arc<Counter>,
    spikes_out: Arc<Counter>,
    prng_draws: Arc<Counter>,
    deadline_miss: Arc<Counter>,
    /// Start-time offset from the deadline, observed on *every* paced
    /// tick (0 for a tick that started on its edge) — the session's
    /// jitter distribution.
    jitter_ns: Arc<Histogram>,
    /// Lateness observed only on ticks that missed their deadline.
    lateness_ns: Arc<Histogram>,
}

/// 1 µs … ~16 ms in ×4 steps: spans sub-tick jitter up to many whole
/// 1 ms periods of lateness.
pub(crate) const LATENESS_BOUNDS: [u64; 8] = [
    1_000, 4_000, 16_000, 64_000, 256_000, 1_024_000, 4_096_000, 16_384_000,
];

impl SessionObs {
    fn new(flight_capacity: usize) -> Self {
        let registry = Registry::new();
        SessionObs {
            flight: FlightRecorder::new(flight_capacity),
            ticks: registry.counter("tn_session_ticks_total"),
            axon_events: registry.counter("tn_session_axon_events_total"),
            sops: registry.counter("tn_session_sops_total"),
            neuron_updates: registry.counter("tn_session_neuron_updates_total"),
            spikes_out: registry.counter("tn_session_spikes_out_total"),
            prng_draws: registry.counter("tn_session_prng_draws_total"),
            deadline_miss: registry.counter("tn_session_deadline_miss_total"),
            jitter_ns: registry.histogram("tn_session_tick_jitter_ns", &LATENESS_BOUNDS),
            lateness_ns: registry.histogram("tn_session_deadline_lateness_ns", &LATENESS_BOUNDS),
            registry,
        }
    }
}

/// One session's complete driving state, owned and advanced by exactly
/// one executor shard (shards are single-threaded, so nothing in here
/// needs interior synchronization beyond the shared pin/closed cell).
pub(crate) struct SessionTask {
    pub(crate) name: String,
    sim: Box<dyn KernelSession>,
    source: StreamSource,
    injector: Injector,
    pub(crate) scheduler: TickScheduler,
    subscribers: Vec<Sender<Outbound>>,
    /// Outstanding `RunFor` work: `(ticks_left, reply)` in arrival order.
    run_queue: VecDeque<(u64, Sender<Response>)>,
    obs: SessionObs,
    /// Cumulative counters inherited from this session's pre-migration
    /// life on another server (all zero for a fresh session).
    base: SessionStats,
    /// While `Some`, the session is quiesced for migration: no ticks
    /// run until `Resume`/`Retire` arrives or the deadline passes.
    pub(crate) quiesced_until: Option<Instant>,
    pub(crate) pin: Arc<MigrationPin>,
    pub(crate) closed: Arc<AtomicBool>,
    /// Evict when `Instant::now()` passes this with no queued work;
    /// refreshed by every command and every tick.
    pub(crate) idle_deadline: Instant,
    idle_timeout: Duration,
}

impl SessionTask {
    /// Build a task and its handle for admission to a shard. `base`/
    /// `pending` are zero/empty for fresh sessions and carry the source
    /// server's state for adopted ones; `grid_phase` resumes the
    /// source's real-time deadline grid so the in-flight slot books on
    /// exactly one side.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        id: u64,
        shard: Sender<ShardMsg>,
        name: String,
        mut sim: Box<dyn KernelSession>,
        cfg: SessionConfig,
        base: SessionStats,
        pending: &[InputEvent],
        grid_phase: Option<Duration>,
    ) -> (SessionTask, SessionHandle) {
        let (source, injector) = stream_channel(sim.network().num_cores(), cfg.input_capacity);
        // sync: the shard's store(true, Release) on removal pairs with
        // load(Acquire) in is_closed(), ordering the session's final
        // state before any caller that observes the handle as closed —
        // so a handle seen closed is safe for the registry to reap and
        // replace (model-checked in server::model_tests).
        let closed = Arc::new(AtomicBool::new(false));
        let migration = Arc::new(MigrationPin::new());
        let handle = SessionHandle {
            name: name.clone(),
            id,
            shard,
            injector: injector.clone(),
            closed: Arc::clone(&closed),
            migration: Arc::clone(&migration),
        };
        if !pending.is_empty() {
            // The task has no queued work yet, so re-offering the
            // carried events here races nothing; capacity matches the
            // source's config, so a ticket's worth always fits.
            injector
                .offer(pending)
                .expect("migrated pending events were validated on first ingest");
        }
        sim.outputs().set_capacity(cfg.output_capacity);
        let now = Instant::now();
        let mut scheduler = TickScheduler::new(cfg.pace, cfg.tick_period);
        if let Some(phase) = grid_phase {
            scheduler.import_phase(now, phase);
        }
        let task = SessionTask {
            name,
            sim,
            source,
            injector,
            scheduler,
            subscribers: Vec::new(),
            run_queue: VecDeque::new(),
            obs: SessionObs::new(cfg.flight_capacity),
            base,
            quiesced_until: None,
            pin: migration,
            closed,
            idle_deadline: now + cfg.idle_timeout,
            idle_timeout: cfg.idle_timeout,
        };
        (task, handle)
    }

    /// Whether this task has tick work it may run right now.
    pub(crate) fn runnable(&self) -> bool {
        self.quiesced_until.is_none() && !self.run_queue.is_empty()
    }

    /// Restart the idle clock (a pinned session must not evict while
    /// the control plane holds it, so its idle life begins anew).
    pub(crate) fn extend_idle(&mut self, now: Instant) {
        self.idle_deadline = now + self.idle_timeout;
    }

    /// Degradation state: `Failed` once every core is disabled,
    /// `Degraded` while any core is disabled or the fault layer has
    /// dropped traffic, `Healthy` otherwise.
    fn health(&self, fault_dropped: u64) -> Health {
        let disabled = self.sim.disabled_cores();
        if disabled == self.sim.network().num_cores() {
            Health::Failed
        } else if disabled > 0 || fault_dropped > 0 {
            Health::Degraded
        } else {
            Health::Healthy
        }
    }

    /// Leave the quiesced state and re-anchor the real-time cadence so
    /// the frozen interval does not book phantom deadline misses.
    pub(crate) fn thaw(&mut self) {
        self.quiesced_until = None;
        self.scheduler.reset();
        self.idle_deadline = Instant::now() + self.idle_timeout;
    }

    /// The session's exit protocol, run by its shard on removal: the
    /// pin reaches CLOSED before the closed flag flips, so a migrator
    /// that loses the pin race also sees `is_closed()`.
    pub(crate) fn finish(&self) {
        self.pin.close();
        self.closed.store(true, Ordering::Release);
    }

    /// Point-in-time stats, with the migration baselines folded in so a
    /// session reports the same cumulative counters wherever it runs.
    fn stats(&mut self) -> SessionStats {
        let totals = self.sim.stats().totals;
        let fault_dropped = self
            .sim
            .fault_counters()
            .map(|c| c.total_dropped())
            .unwrap_or(0)
            + self.base.fault_dropped;
        // The two drop tallies are disjoint by construction, so
        // their sum never double-counts an event: `Injector::
        // offer` validates targets against the grid and rejects
        // whole batches up front (counting them itself), so every
        // event it forwards has an in-grid core — the engine's
        // own out-of-grid shedding can only fire for events that
        // bypassed the injector. Pinned by the
        // `overload_drops_are_counted_once` integration test.
        let dropped_inputs =
            self.sim.dropped_inputs() + self.injector.dropped() + self.base.dropped_inputs;
        SessionStats {
            tick: self.sim.current_tick(),
            spikes_out: totals.spikes_out + self.base.spikes_out,
            sops: totals.sops + self.base.sops,
            neuron_updates: totals.neuron_updates + self.base.neuron_updates,
            dropped_inputs,
            pending_inputs: self.injector.pending() as u64,
            missed_deadlines: self.scheduler.missed_deadlines() + self.base.missed_deadlines,
            state_digest: self.sim.state_digest(),
            energy_j: self.sim.energy_j().unwrap_or(0.0) + self.base.energy_j,
            health: self.health(fault_dropped),
            fault_dropped,
            spikes_evicted: self.sim.outputs().evicted() + self.base.spikes_evicted,
            engine: self.sim.engine_name().to_string(),
        }
    }

    /// Run exactly one tick and stream it to subscribers. Returns the
    /// pacing outcome so the shard can fold it into its own telemetry.
    pub(crate) fn tick(&mut self, pace: PaceOutcome) -> PaceOutcome {
        let tick = self.sim.current_tick();
        let energy_before = self.sim.energy_j().unwrap_or(0.0);
        let stats = self.sim.step(&mut self.source);

        // Per-tick delta accounting (see `SessionObs`), plus the
        // deadline telemetry from this tick's pacing outcome.
        let lateness_ns = pace.lateness.as_nanos() as u64;
        self.obs.ticks.inc();
        self.obs.axon_events.add(stats.axon_events);
        self.obs.sops.add(stats.sops);
        self.obs.neuron_updates.add(stats.neuron_updates);
        self.obs.spikes_out.add(stats.spikes_out);
        self.obs.prng_draws.add(stats.prng_draws);
        if self.scheduler.pace_mode() == Pace::RealTime {
            self.obs.jitter_ns.observe(lateness_ns);
            if pace.missed_now > 0 {
                self.obs.deadline_miss.add(pace.missed_now);
                self.obs.lateness_ns.observe(lateness_ns);
            }
        }
        self.obs.flight.record(TickFrame {
            tick,
            spikes_out: stats.spikes_out,
            sops: stats.sops,
            axon_events: stats.axon_events,
            pending_inputs: self.injector.pending() as u64,
            dropped_inputs: self.sim.dropped_inputs() + self.injector.dropped(),
            lateness_ns,
            missed: pace.missed_now,
        });

        let outputs = self.sim.outputs().take();
        if !self.subscribers.is_empty() {
            let update = Response::TickUpdate(TickUpdate {
                session: self.name.clone(),
                tick,
                spikes_out: stats.spikes_out,
                sops: stats.sops,
                energy_j: self.sim.energy_j().map_or(0.0, |e| e - energy_before),
                ports: outputs.iter().map(|e| e.port).collect(),
            });
            let frame = update.encode();
            self.subscribers
                .retain(|sink| sink.send(Outbound::Frame(frame.clone())).is_ok());
        }
        if let Some((left, _)) = self.run_queue.front_mut() {
            *left -= 1;
            if *left == 0 {
                let (_, reply) = self.run_queue.pop_front().unwrap();
                let _ = reply.send(Response::Ok);
            }
        }
        self.idle_deadline = Instant::now() + self.idle_timeout;
        if self.run_queue.is_empty() {
            // The burst is done; forget the cadence so the gap until the
            // next RunFor is idleness, not bookable lateness.
            self.scheduler.reset();
        }
        pace
    }

    /// Handle one command; returns `true` when the session should close.
    pub(crate) fn handle_cmd(&mut self, cmd: Cmd) -> bool {
        self.idle_deadline = Instant::now() + self.idle_timeout;
        match cmd {
            Cmd::RunFor { ticks, reply } => {
                if ticks == 0 {
                    let _ = reply.send(Response::Ok);
                } else {
                    self.run_queue.push_back((ticks, reply));
                }
            }
            Cmd::Snapshot { reply } => {
                let bytes = self.sim.checkpoint().to_bytes();
                let _ = reply.send(Response::SnapshotData { bytes });
            }
            Cmd::Restore { bytes, reply } => {
                let resp = match NetworkSnapshot::from_bytes(&bytes) {
                    Ok(snap) if snap.cores.len() == self.sim.network().num_cores() => {
                        self.sim.restore(&snap);
                        Response::Ok
                    }
                    Ok(snap) => Response::Error {
                        code: ErrorCode::SnapshotRejected,
                        message: format!(
                            "snapshot has {} cores, session has {}",
                            snap.cores.len(),
                            self.sim.network().num_cores()
                        ),
                    },
                    Err(e) => Response::Error {
                        code: ErrorCode::SnapshotRejected,
                        message: e.to_string(),
                    },
                };
                let _ = reply.send(resp);
            }
            Cmd::Stats { reply } => {
                let _ = reply.send(Response::StatsData(self.stats()));
            }
            Cmd::GetMetrics { reply } => {
                // Sync the engine's own totals (an independent path from
                // the per-tick deltas above — a scrape can cross-check
                // tn_kernel_* against tn_session_*), then the
                // session-level point-in-time series.
                self.sim.publish_metrics(&self.obs.registry);
                let reg = &self.obs.registry;
                reg.counter("tn_session_deadline_miss_total")
                    .set(self.scheduler.missed_deadlines());
                reg.counter("tn_session_dropped_inputs_total")
                    .set(self.sim.dropped_inputs() + self.injector.dropped());
                reg.counter("tn_session_spikes_evicted_total")
                    .set(self.sim.outputs().evicted());
                reg.gauge("tn_session_pending_inputs")
                    .set(self.injector.pending() as f64);
                let mut text = reg.render_text();
                text.push_str(&self.obs.flight.render_text());
                let _ = reply.send(Response::MetricsData { text });
            }
            Cmd::Subscribe { sink, reply } => {
                self.subscribers.push(sink);
                let _ = reply.send(Response::Ok);
            }
            Cmd::Close { reply } => {
                // Unfinished runs are abandoned; tell their waiters.
                for (_, waiting) in self.run_queue.drain(..) {
                    let _ = waiting.send(Response::Error {
                        code: ErrorCode::Shutdown,
                        message: "session closed".to_string(),
                    });
                }
                let _ = reply.send(Response::Ok);
                return true;
            }
            Cmd::Quiesce { hold, reply } => {
                // Freeze the real-time grid first: any in-flight overrun
                // books here, once, and the exported phase points at the
                // next unbooked edge — so the stats baseline below
                // already carries the booking and the adopting side
                // resumes without re-counting it (satellite of the
                // migration double-count fix).
                let grid_phase = self.scheduler.export_phase(Instant::now());
                // Settle the engine at the tick boundary (sharded
                // sessions flush in-flight boundary batches), then build
                // the ticket. Pending inputs are *copied*, not drained:
                // an aborted migration must leave the source exactly as
                // it was, and on commit the source queue dies with the
                // retiring task anyway.
                self.sim.quiesce();
                let snapshot = self.sim.checkpoint().to_bytes();
                let baseline = self.stats();
                let pending = self.injector.pending_events();
                self.quiesced_until = Some(Instant::now() + hold);
                let _ = reply.send(MigrationTicket {
                    snapshot,
                    baseline,
                    pending,
                    grid_phase,
                });
            }
            Cmd::Resume => {
                if self.quiesced_until.is_some() {
                    self.thaw();
                }
            }
            Cmd::Retire { addr, reply } => {
                // The target owns the session now: answer everyone who
                // is (or will be, via the registry's moved map) waiting
                // on this copy with the forwarding address.
                let redirect = Response::Redirect {
                    session: self.name.clone(),
                    addr,
                };
                for (_, waiting) in self.run_queue.drain(..) {
                    let _ = waiting.send(redirect.clone());
                }
                let frame = redirect.encode();
                for sink in self.subscribers.drain(..) {
                    let _ = sink.send(Outbound::Frame(frame.clone()));
                }
                let _ = reply.send(Response::Ok);
                return true;
            }
        }
        false
    }

    /// Abandon every waiter with a shutdown error (executor teardown).
    pub(crate) fn abandon(&mut self) {
        for (_, waiting) in self.run_queue.drain(..) {
            let _ = waiting.send(Response::Error {
                code: ErrorCode::Shutdown,
                message: "session closed".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use tn_compass::ReferenceSim;
    use tn_core::NetworkBuilder;

    fn blank_session(cfg: SessionConfig) -> SessionHandle {
        let net = NetworkBuilder::new(2, 2, 1).build();
        spawn_session("t".into(), Box::new(ReferenceSim::new(net)), cfg)
    }

    fn ask(h: &SessionHandle, mk: impl FnOnce(Sender<Response>) -> Cmd) -> Response {
        let (tx, rx) = mpsc::channel();
        h.send(mk(tx)).expect("session alive");
        rx.recv_timeout(Duration::from_secs(10)).expect("reply")
    }

    #[test]
    fn run_for_replies_after_the_ticks_ran() {
        let h = blank_session(SessionConfig {
            pace: Pace::MaxSpeed,
            ..Default::default()
        });
        assert_eq!(
            ask(&h, |r| Cmd::RunFor {
                ticks: 25,
                reply: r
            }),
            Response::Ok
        );
        match ask(&h, |r| Cmd::Stats { reply: r }) {
            Response::StatsData(s) => {
                assert_eq!(s.tick, 25);
                assert_eq!(s.engine, "reference");
                assert_eq!(s.missed_deadlines, 0);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ask(&h, |r| Cmd::Close { reply: r }), Response::Ok);
        // The shard marks the session closed promptly after Close.
        for _ in 0..100 {
            if h.is_closed() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(h.is_closed());
    }

    #[test]
    fn idle_sessions_evict_themselves() {
        let h = blank_session(SessionConfig {
            pace: Pace::MaxSpeed,
            idle_timeout: Duration::from_millis(50),
            ..Default::default()
        });
        assert!(!h.is_closed());
        for _ in 0..100 {
            if h.is_closed() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(h.is_closed(), "idle session was not evicted");
        // Commands to an evicted session fail cleanly.
        let (tx, _rx) = mpsc::channel();
        assert!(h.send(Cmd::Stats { reply: tx }).is_err());
    }

    #[test]
    fn snapshot_restore_between_sessions() {
        let cfg = SessionConfig {
            pace: Pace::MaxSpeed,
            ..Default::default()
        };
        let a = blank_session(cfg.clone());
        ask(&a, |r| Cmd::RunFor {
            ticks: 10,
            reply: r,
        });
        let bytes = match ask(&a, |r| Cmd::Snapshot { reply: r }) {
            Response::SnapshotData { bytes } => bytes,
            other => panic!("{other:?}"),
        };
        let b = blank_session(cfg);
        assert_eq!(
            ask(&b, |r| Cmd::Restore {
                bytes: bytes.clone(),
                reply: r
            }),
            Response::Ok
        );
        match ask(&b, |r| Cmd::Stats { reply: r }) {
            Response::StatsData(s) => assert_eq!(s.tick, 10),
            other => panic!("{other:?}"),
        }
        // Garbage bytes are rejected, not fatal.
        match ask(&b, |r| Cmd::Restore {
            bytes: vec![1, 2, 3],
            reply: r,
        }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::SnapshotRejected),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metrics_scrape_is_valid_and_reconciles_with_engine_totals() {
        let h = blank_session(SessionConfig {
            pace: Pace::MaxSpeed,
            ..Default::default()
        });
        ask(&h, |r| Cmd::RunFor {
            ticks: 12,
            reply: r,
        });
        let text = match ask(&h, |r| Cmd::GetMetrics { reply: r }) {
            Response::MetricsData { text } => text,
            other => panic!("{other:?}"),
        };
        let summary = tn_obs::validate_exposition(&text).expect("valid exposition");
        assert!(summary.samples > 0);
        // The per-tick delta path (tn_session_*) and the engine-total
        // sync (tn_kernel_*) agree on the tick count.
        assert!(text.contains("tn_session_ticks_total 12"), "{text}");
        assert!(text.contains("tn_kernel_ticks_total 12"), "{text}");
        assert!(text.contains("# flight-recorder"), "{text}");
    }

    #[test]
    fn subscribers_receive_every_tick() {
        let h = blank_session(SessionConfig {
            pace: Pace::MaxSpeed,
            ..Default::default()
        });
        let (sink, updates) = mpsc::channel();
        assert_eq!(ask(&h, |r| Cmd::Subscribe { sink, reply: r }), Response::Ok);
        ask(&h, |r| Cmd::RunFor { ticks: 5, reply: r });
        let mut ticks = Vec::new();
        while let Ok(Outbound::Frame(f)) = updates.try_recv() {
            let (op, payload) = crate::protocol::split_frame(&f).unwrap();
            match Response::decode(op, payload).unwrap() {
                Response::TickUpdate(u) => ticks.push(u.tick),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(ticks, vec![0, 1, 2, 3, 4]);
    }
}
