//! The real-time tick scheduler.
//!
//! The physical chip advances on a global 1 kHz synchronization signal:
//! every core must finish its tick before the next 1 ms edge, and a tick
//! that misses the edge is a *deadline miss*, not a silent slowdown
//! (paper Section III-C). [`TickScheduler`] reproduces that contract for
//! a served session: in [`Pace::RealTime`] it sleeps each tick out to
//! the configured period and *counts* deadline misses when the host
//! falls behind — without accumulating debt, exactly like a dropped
//! sync edge — while [`Pace::MaxSpeed`] free-runs the simulator at host
//! speed (the paper's "faster than real-time" operating regime).

use crate::protocol::Pace;
use std::time::{Duration, Instant};

/// Paces a session's tick loop; create one per session driver.
pub struct TickScheduler {
    pace: Pace,
    period: Duration,
    /// Deadline of the next tick; `None` until the first paced tick
    /// (and after [`Self::reset`], so idle waits are not counted late).
    next: Option<Instant>,
    missed: u64,
}

impl TickScheduler {
    pub fn new(pace: Pace, period: Duration) -> Self {
        TickScheduler {
            pace,
            period: period.max(Duration::from_micros(1)),
            next: None,
            missed: 0,
        }
    }

    pub fn pace_mode(&self) -> Pace {
        self.pace
    }

    pub fn period(&self) -> Duration {
        self.period
    }

    /// Real-time deadlines missed so far (always 0 at max speed).
    pub fn missed_deadlines(&self) -> u64 {
        self.missed
    }

    /// Forget the current cadence. Call after an idle gap (no ticks
    /// requested) so the pause is not booked as missed deadlines.
    pub fn reset(&mut self) {
        self.next = None;
    }

    /// Block until the next tick may run. Returns the time waited.
    pub fn pace(&mut self) -> Duration {
        if self.pace == Pace::MaxSpeed {
            return Duration::ZERO;
        }
        let now = Instant::now();
        match self.next {
            None => {
                // First tick of a burst runs immediately and anchors the
                // cadence.
                self.next = Some(now + self.period);
                Duration::ZERO
            }
            Some(deadline) => {
                if now < deadline {
                    let wait = deadline - now;
                    std::thread::sleep(wait);
                    self.next = Some(deadline + self.period);
                    wait
                } else {
                    // Late: count every whole period overrun as a missed
                    // sync edge and re-anchor — the chip drops edges, it
                    // does not replay them.
                    let behind = now - deadline;
                    self.missed += 1 + (behind.as_nanos() / self.period.as_nanos()) as u64;
                    self.next = Some(now + self.period);
                    Duration::ZERO
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_speed_never_sleeps() {
        let mut s = TickScheduler::new(Pace::MaxSpeed, Duration::from_millis(50));
        let start = Instant::now();
        for _ in 0..100 {
            s.pace();
        }
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(s.missed_deadlines(), 0);
    }

    #[test]
    fn real_time_holds_the_cadence() {
        // A preempted sleep on a loaded host can legitimately blow a 2 ms
        // deadline, so allow a few attempts before declaring the pacing
        // logic itself broken.
        let period = Duration::from_millis(2);
        let mut last_missed = 0;
        for _ in 0..5 {
            let mut s = TickScheduler::new(Pace::RealTime, period);
            let start = Instant::now();
            for _ in 0..5 {
                s.pace();
            }
            // First tick is immediate; four more are paced ≥ one period each.
            assert!(start.elapsed() >= 4 * period, "{:?}", start.elapsed());
            last_missed = s.missed_deadlines();
            if last_missed == 0 {
                return;
            }
        }
        assert_eq!(last_missed, 0, "missed deadlines on every attempt");
    }

    #[test]
    fn falling_behind_counts_missed_deadlines_without_debt() {
        let period = Duration::from_millis(1);
        let mut s = TickScheduler::new(Pace::RealTime, period);
        s.pace(); // anchor
        std::thread::sleep(5 * period); // simulate a slow tick
        s.pace();
        assert!(s.missed_deadlines() >= 3, "{}", s.missed_deadlines());
        // The next tick is paced normally again (no catch-up burst).
        let start = Instant::now();
        s.pace();
        assert!(start.elapsed() >= period / 2, "{:?}", start.elapsed());
    }

    #[test]
    fn reset_forgives_idle_gaps() {
        let period = Duration::from_millis(1);
        let mut s = TickScheduler::new(Pace::RealTime, period);
        s.pace();
        std::thread::sleep(5 * period);
        s.reset(); // the gap was idleness, not lateness
        s.pace();
        assert_eq!(s.missed_deadlines(), 0);
    }
}
