//! The real-time tick scheduler.
//!
//! The physical chip advances on a global 1 kHz synchronization signal:
//! every core must finish its tick before the next 1 ms edge, and a tick
//! that misses the edge is a *deadline miss*, not a silent slowdown
//! (paper Section III-C). [`TickScheduler`] reproduces that contract for
//! a served session: in [`Pace::RealTime`] it sleeps each tick out to
//! the configured period and *counts* deadline misses when the host
//! falls behind — without accumulating debt, exactly like a dropped
//! sync edge — while [`Pace::MaxSpeed`] free-runs the simulator at host
//! speed (the paper's "faster than real-time" operating regime).
//!
//! Deadlines live on a fixed grid anchored at the first paced tick:
//! `anchor + k·period`. A late tick skips forward to the next *grid*
//! edge, never to `now + period` — re-anchoring at `now` would silently
//! forgive up to a period of drift on every miss, letting a host that is
//! consistently a little slow book far fewer misses than sync edges it
//! actually dropped.

use crate::protocol::Pace;
use crate::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Time source a [`TickScheduler`] paces against. Production uses
/// [`SystemClock`]; tests use [`VirtualClock`] so cadence and miss
/// accounting are asserted deterministically instead of racing the
/// host's real scheduler.
pub trait Clock: Send {
    fn now(&self) -> Instant;
    fn sleep(&self, d: Duration);
}

/// The host's monotonic clock and a real `thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A deterministic clock: `sleep` advances virtual time instantly and
/// `advance` models work taking wall time. Clones share one timeline.
#[derive(Clone)]
pub struct VirtualClock(Arc<Mutex<Instant>>);

impl VirtualClock {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        VirtualClock(Arc::new(Mutex::new(Instant::now())))
    }

    /// Advance the timeline, as if the caller spent `d` working.
    pub fn advance(&self, d: Duration) {
        *self.0.lock().unwrap() += d;
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Instant {
        *self.0.lock().unwrap()
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// What one [`TickScheduler::pace`] call did, for the caller's jitter
/// and deadline-miss telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PaceOutcome {
    /// Time slept waiting for the deadline (zero when late or free-running).
    pub waited: Duration,
    /// How far past the deadline the tick started (zero when on time).
    pub lateness: Duration,
    /// Sync edges dropped by this call (0 when the deadline was met).
    pub missed_now: u64,
}

/// Paces a session's tick loop; create one per session driver.
pub struct TickScheduler {
    pace: Pace,
    period: Duration,
    /// Deadline of the next tick; `None` until the first paced tick
    /// (and after [`Self::reset`], so idle waits are not counted late).
    next: Option<Instant>,
    missed: u64,
    clock: Box<dyn Clock>,
}

impl TickScheduler {
    pub fn new(pace: Pace, period: Duration) -> Self {
        Self::with_clock(pace, period, Box::new(SystemClock))
    }

    /// Scheduler on an explicit time source (tests pass [`VirtualClock`]).
    pub fn with_clock(pace: Pace, period: Duration, clock: Box<dyn Clock>) -> Self {
        TickScheduler {
            pace,
            period: period.max(Duration::from_micros(1)),
            next: None,
            missed: 0,
            clock,
        }
    }

    pub fn pace_mode(&self) -> Pace {
        self.pace
    }

    pub fn period(&self) -> Duration {
        self.period
    }

    /// Real-time deadlines missed so far (always 0 at max speed).
    pub fn missed_deadlines(&self) -> u64 {
        self.missed
    }

    /// Forget the current cadence. Call after an idle gap (no ticks
    /// requested) so the pause is not booked as missed deadlines.
    pub fn reset(&mut self) {
        self.next = None;
    }

    /// Block until the next tick may run.
    pub fn pace(&mut self) -> PaceOutcome {
        if self.pace == Pace::MaxSpeed {
            return PaceOutcome::default();
        }
        let now = self.clock.now();
        match self.next {
            None => {
                // First tick of a burst runs immediately and anchors the
                // deadline grid.
                self.next = Some(now + self.period);
                PaceOutcome::default()
            }
            Some(deadline) => {
                if now <= deadline {
                    let wait = deadline - now;
                    self.clock.sleep(wait);
                    self.next = Some(deadline + self.period);
                    PaceOutcome {
                        waited: wait,
                        ..PaceOutcome::default()
                    }
                } else {
                    // Late: every whole period overrun is a dropped sync
                    // edge. Skip to the next edge *on the original grid*
                    // — the chip drops edges, it neither replays them nor
                    // lets the grid slip to wherever the host happens to
                    // be (that would forgive sub-period drift forever).
                    let behind = now - deadline;
                    let skipped = 1 + (behind.as_nanos() / self.period.as_nanos()) as u64;
                    self.missed += skipped;
                    self.next = Some(deadline + self.period * skipped as u32);
                    PaceOutcome {
                        waited: Duration::ZERO,
                        lateness: behind,
                        missed_now: skipped,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virtual_scheduler(pace: Pace, period: Duration) -> (TickScheduler, VirtualClock) {
        let clock = VirtualClock::new();
        let s = TickScheduler::with_clock(pace, period, Box::new(clock.clone()));
        (s, clock)
    }

    #[test]
    fn max_speed_never_sleeps() {
        let (mut s, clock) = virtual_scheduler(Pace::MaxSpeed, Duration::from_millis(50));
        let start = clock.now();
        for _ in 0..100 {
            assert_eq!(s.pace(), PaceOutcome::default());
        }
        assert_eq!(clock.now(), start, "max speed consumed no time");
        assert_eq!(s.missed_deadlines(), 0);
    }

    #[test]
    fn real_time_holds_the_cadence() {
        let period = Duration::from_millis(2);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        let start = clock.now();
        assert_eq!(s.pace(), PaceOutcome::default(), "first tick is immediate");
        for _ in 0..4 {
            let out = s.pace();
            assert_eq!(out.waited, period, "an idle host sleeps a full period");
            assert_eq!(out.missed_now, 0);
        }
        assert_eq!(clock.now() - start, 4 * period);
        assert_eq!(s.missed_deadlines(), 0);
    }

    #[test]
    fn busy_ticks_sleep_only_the_remainder() {
        let period = Duration::from_millis(2);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        s.pace(); // anchor
        clock.advance(period / 2); // the tick's work took half a period
        let out = s.pace();
        assert_eq!(out.waited, period / 2);
        assert_eq!(out.missed_now, 0);
        assert_eq!(s.missed_deadlines(), 0);
    }

    #[test]
    fn falling_behind_counts_missed_deadlines_without_debt() {
        let period = Duration::from_millis(1);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        s.pace(); // anchor: deadlines at t0+p, t0+2p, ...
        clock.advance(period * 5 + period / 2); // a slow tick: now = t0 + 5.5p
        let out = s.pace();
        assert_eq!(out.missed_now, 5, "4 whole overruns + the blown edge");
        assert_eq!(out.lateness, period * 4 + period / 2);
        assert_eq!(s.missed_deadlines(), 5);
        // No catch-up burst: the next deadline is the next *grid* edge
        // (t0 + 6p), so the following tick sleeps exactly the remainder —
        // the grid did not slip to now + period.
        let out = s.pace();
        assert_eq!(out.waited, period / 2);
        assert_eq!(out.missed_now, 0);
        assert_eq!(s.missed_deadlines(), 5, "recovered ticks book no misses");
    }

    #[test]
    fn sub_period_drift_is_not_silently_forgiven() {
        // A host consistently 1.25 periods slow must keep booking misses;
        // under the old `now + period` re-anchoring it booked only the
        // first one and then drifted forever.
        let period = Duration::from_millis(4);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        s.pace(); // anchor
        for _ in 0..4 {
            clock.advance(period * 5 / 4);
            s.pace();
        }
        assert!(
            s.missed_deadlines() >= 4,
            "drift of 1.25 periods/tick booked only {} misses",
            s.missed_deadlines()
        );
    }

    #[test]
    fn reset_forgives_idle_gaps() {
        let period = Duration::from_millis(1);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        s.pace();
        clock.advance(5 * period);
        s.reset(); // the gap was idleness, not lateness
        let out = s.pace();
        assert_eq!(out, PaceOutcome::default(), "re-anchor, no sleep, no miss");
        assert_eq!(s.missed_deadlines(), 0);
    }
}
