//! The real-time tick scheduler.
//!
//! The physical chip advances on a global 1 kHz synchronization signal:
//! every core must finish its tick before the next 1 ms edge, and a tick
//! that misses the edge is a *deadline miss*, not a silent slowdown
//! (paper Section III-C). [`TickScheduler`] reproduces that contract for
//! a served session: in [`Pace::RealTime`] it sleeps each tick out to
//! the configured period and *counts* deadline misses when the host
//! falls behind — without accumulating debt, exactly like a dropped
//! sync edge — while [`Pace::MaxSpeed`] free-runs the simulator at host
//! speed (the paper's "faster than real-time" operating regime).
//!
//! Deadlines live on a fixed grid anchored at the first paced tick:
//! `anchor + k·period`. A late tick skips forward to the next *grid*
//! edge, never to `now + period` — re-anchoring at `now` would silently
//! forgive up to a period of drift on every miss, letting a host that is
//! consistently a little slow book far fewer misses than sync edges it
//! actually dropped.

use crate::protocol::Pace;
use crate::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Time source a [`TickScheduler`] paces against. Production uses
/// [`SystemClock`]; tests use [`VirtualClock`] so cadence and miss
/// accounting are asserted deterministically instead of racing the
/// host's real scheduler.
pub trait Clock: Send {
    fn now(&self) -> Instant;
    fn sleep(&self, d: Duration);
}

/// The host's monotonic clock and a real `thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A deterministic clock: `sleep` advances virtual time instantly and
/// `advance` models work taking wall time. Clones share one timeline.
#[derive(Clone)]
pub struct VirtualClock(Arc<Mutex<Instant>>);

impl VirtualClock {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        VirtualClock(Arc::new(Mutex::new(Instant::now())))
    }

    /// Advance the timeline, as if the caller spent `d` working.
    pub fn advance(&self, d: Duration) {
        *self.0.lock().unwrap() += d;
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Instant {
        *self.0.lock().unwrap()
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// What one [`TickScheduler::pace`] call did, for the caller's jitter
/// and deadline-miss telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PaceOutcome {
    /// Time slept waiting for the deadline (zero when late or free-running).
    pub waited: Duration,
    /// How far past the deadline the tick started (zero when on time).
    pub lateness: Duration,
    /// Sync edges dropped by this call (0 when the deadline was met).
    pub missed_now: u64,
}

/// Paces a session's tick loop; create one per session driver.
pub struct TickScheduler {
    pace: Pace,
    period: Duration,
    /// Deadline of the next tick; `None` until the first paced tick
    /// (and after [`Self::reset`], so idle waits are not counted late).
    next: Option<Instant>,
    /// Deadline handed out by [`Self::next_ready_at`] that a deadline
    /// wheel is sleeping toward. A wake at-or-after an armed deadline is
    /// an on-time tick (its start offset is wakeup jitter, not a blown
    /// slot) — mirroring how the blocking [`Self::pace`] path absorbs
    /// `sleep` overshoot into the *next* slot instead of booking it.
    armed: Option<Instant>,
    missed: u64,
    clock: Box<dyn Clock>,
}

impl TickScheduler {
    pub fn new(pace: Pace, period: Duration) -> Self {
        Self::with_clock(pace, period, Box::new(SystemClock))
    }

    /// Scheduler on an explicit time source (tests pass [`VirtualClock`]).
    pub fn with_clock(pace: Pace, period: Duration, clock: Box<dyn Clock>) -> Self {
        TickScheduler {
            pace,
            period: period.max(Duration::from_micros(1)),
            next: None,
            armed: None,
            missed: 0,
            clock,
        }
    }

    pub fn pace_mode(&self) -> Pace {
        self.pace
    }

    pub fn period(&self) -> Duration {
        self.period
    }

    /// Real-time deadlines missed so far (always 0 at max speed).
    pub fn missed_deadlines(&self) -> u64 {
        self.missed
    }

    /// Forget the current cadence. Call after an idle gap (no ticks
    /// requested) so the pause is not booked as missed deadlines.
    pub fn reset(&mut self) {
        self.next = None;
        self.armed = None;
    }

    /// Non-blocking half of the executor pacing protocol: when may the
    /// next tick start? Returns `now` when it may run immediately (max
    /// speed, an unanchored grid, or a deadline already behind us) and
    /// the grid edge otherwise, *arming* that edge so the wake-up's
    /// start offset is classified as wheel jitter rather than an
    /// overrun (see [`Self::begin_tick`]).
    pub fn next_ready_at(&mut self, now: Instant) -> Instant {
        if self.pace == Pace::MaxSpeed {
            return now;
        }
        match self.next {
            None => now,
            Some(deadline) if deadline <= now => now,
            Some(deadline) => {
                self.armed = Some(deadline);
                deadline
            }
        }
    }

    /// Non-blocking half of the executor pacing protocol: book the tick
    /// that is about to run at `now`. The miss accounting is the same
    /// fixed-grid arithmetic as [`Self::pace`]: whole-period overruns
    /// are dropped sync edges, and the grid never slips to `now`. The
    /// one refinement is the armed-wake case — a deadline wheel that
    /// slept toward the edge and woke `ε` late starts the tick with
    /// `lateness = ε` but books a miss only for *whole periods* of
    /// oversleep, exactly as the blocking path absorbs `sleep`
    /// overshoot into the next slot.
    pub fn begin_tick(&mut self, now: Instant) -> PaceOutcome {
        if self.pace == Pace::MaxSpeed {
            return PaceOutcome::default();
        }
        match self.next {
            None => {
                // First tick of a burst runs immediately and anchors
                // the deadline grid.
                self.next = Some(now + self.period);
                PaceOutcome::default()
            }
            Some(deadline) => {
                let armed_here = self.armed == Some(deadline);
                self.armed = None;
                if now <= deadline {
                    // Woken at (or slightly before, via a coalesced
                    // wheel slot) the edge: on time.
                    self.next = Some(deadline + self.period);
                    PaceOutcome::default()
                } else {
                    let behind = now - deadline;
                    // Either way the grid skips to its first edge
                    // strictly after `now` — never to `now + period`.
                    let whole = (behind.as_nanos() / self.period.as_nanos()) as u64;
                    // Armed wake: this edge's tick *is running now*,
                    // just late — only fully elapsed periods beyond it
                    // are dropped edges. Unarmed (back-to-back work
                    // overran the slot): the edge itself was blown,
                    // matching `pace`.
                    let skipped = if armed_here { whole } else { whole + 1 };
                    self.missed += skipped;
                    self.next = Some(deadline + self.period * (whole + 1) as u32);
                    PaceOutcome {
                        waited: Duration::ZERO,
                        lateness: behind,
                        missed_now: skipped,
                    }
                }
            }
        }
    }

    /// Migration hand-off, source side: freeze the cadence and return
    /// the phase offset to the next *unbooked* grid edge. Any in-flight
    /// overrun is booked here, once — the target resumes the grid via
    /// [`Self::import_phase`] without re-anchoring, so the in-flight
    /// slot is never booked a second time (and a later abort-resume on
    /// the source, which `reset`s, cannot book it again either).
    /// `None` for max-speed or a never-anchored grid.
    pub fn export_phase(&mut self, now: Instant) -> Option<Duration> {
        if self.pace == Pace::MaxSpeed {
            return None;
        }
        let deadline = self.next?;
        self.armed = None;
        if now <= deadline {
            Some(deadline - now)
        } else {
            let behind = now - deadline;
            let skipped = 1 + (behind.as_nanos() / self.period.as_nanos()) as u64;
            self.missed += skipped;
            let next = deadline + self.period * skipped as u32;
            self.next = Some(next);
            Some(next - now)
        }
    }

    /// Migration hand-off, target side: resume the source's grid at
    /// `now + phase` instead of re-anchoring at the first tick. See
    /// [`Self::export_phase`].
    pub fn import_phase(&mut self, now: Instant, phase: Duration) {
        if self.pace == Pace::MaxSpeed {
            return;
        }
        self.next = Some(now + phase.min(self.period));
        self.armed = None;
    }

    /// Block until the next tick may run.
    pub fn pace(&mut self) -> PaceOutcome {
        if self.pace == Pace::MaxSpeed {
            return PaceOutcome::default();
        }
        let now = self.clock.now();
        match self.next {
            None => {
                // First tick of a burst runs immediately and anchors the
                // deadline grid.
                self.next = Some(now + self.period);
                PaceOutcome::default()
            }
            Some(deadline) => {
                if now <= deadline {
                    let wait = deadline - now;
                    self.clock.sleep(wait);
                    self.next = Some(deadline + self.period);
                    PaceOutcome {
                        waited: wait,
                        ..PaceOutcome::default()
                    }
                } else {
                    // Late: every whole period overrun is a dropped sync
                    // edge. Skip to the next edge *on the original grid*
                    // — the chip drops edges, it neither replays them nor
                    // lets the grid slip to wherever the host happens to
                    // be (that would forgive sub-period drift forever).
                    let behind = now - deadline;
                    let skipped = 1 + (behind.as_nanos() / self.period.as_nanos()) as u64;
                    self.missed += skipped;
                    self.next = Some(deadline + self.period * skipped as u32);
                    PaceOutcome {
                        waited: Duration::ZERO,
                        lateness: behind,
                        missed_now: skipped,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virtual_scheduler(pace: Pace, period: Duration) -> (TickScheduler, VirtualClock) {
        let clock = VirtualClock::new();
        let s = TickScheduler::with_clock(pace, period, Box::new(clock.clone()));
        (s, clock)
    }

    #[test]
    fn max_speed_never_sleeps() {
        let (mut s, clock) = virtual_scheduler(Pace::MaxSpeed, Duration::from_millis(50));
        let start = clock.now();
        for _ in 0..100 {
            assert_eq!(s.pace(), PaceOutcome::default());
        }
        assert_eq!(clock.now(), start, "max speed consumed no time");
        assert_eq!(s.missed_deadlines(), 0);
    }

    #[test]
    fn real_time_holds_the_cadence() {
        let period = Duration::from_millis(2);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        let start = clock.now();
        assert_eq!(s.pace(), PaceOutcome::default(), "first tick is immediate");
        for _ in 0..4 {
            let out = s.pace();
            assert_eq!(out.waited, period, "an idle host sleeps a full period");
            assert_eq!(out.missed_now, 0);
        }
        assert_eq!(clock.now() - start, 4 * period);
        assert_eq!(s.missed_deadlines(), 0);
    }

    #[test]
    fn busy_ticks_sleep_only_the_remainder() {
        let period = Duration::from_millis(2);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        s.pace(); // anchor
        clock.advance(period / 2); // the tick's work took half a period
        let out = s.pace();
        assert_eq!(out.waited, period / 2);
        assert_eq!(out.missed_now, 0);
        assert_eq!(s.missed_deadlines(), 0);
    }

    #[test]
    fn falling_behind_counts_missed_deadlines_without_debt() {
        let period = Duration::from_millis(1);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        s.pace(); // anchor: deadlines at t0+p, t0+2p, ...
        clock.advance(period * 5 + period / 2); // a slow tick: now = t0 + 5.5p
        let out = s.pace();
        assert_eq!(out.missed_now, 5, "4 whole overruns + the blown edge");
        assert_eq!(out.lateness, period * 4 + period / 2);
        assert_eq!(s.missed_deadlines(), 5);
        // No catch-up burst: the next deadline is the next *grid* edge
        // (t0 + 6p), so the following tick sleeps exactly the remainder —
        // the grid did not slip to now + period.
        let out = s.pace();
        assert_eq!(out.waited, period / 2);
        assert_eq!(out.missed_now, 0);
        assert_eq!(s.missed_deadlines(), 5, "recovered ticks book no misses");
    }

    #[test]
    fn sub_period_drift_is_not_silently_forgiven() {
        // A host consistently 1.25 periods slow must keep booking misses;
        // under the old `now + period` re-anchoring it booked only the
        // first one and then drifted forever.
        let period = Duration::from_millis(4);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        s.pace(); // anchor
        for _ in 0..4 {
            clock.advance(period * 5 / 4);
            s.pace();
        }
        assert!(
            s.missed_deadlines() >= 4,
            "drift of 1.25 periods/tick booked only {} misses",
            s.missed_deadlines()
        );
    }

    #[test]
    fn wheel_pacing_matches_the_blocking_path() {
        // The executor protocol: next_ready_at → (wheel sleeps) →
        // begin_tick. On a punctual host it books exactly what pace()
        // books: zero misses, a full-period cadence.
        let period = Duration::from_millis(2);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        let t0 = clock.now();
        assert_eq!(s.next_ready_at(clock.now()), t0, "first tick immediate");
        assert_eq!(s.begin_tick(clock.now()), PaceOutcome::default());
        for k in 1..=4u32 {
            let due = s.next_ready_at(clock.now());
            assert_eq!(due, t0 + period * k, "grid edge {k}");
            clock.sleep(due - clock.now()); // the wheel's recv_timeout
            let out = s.begin_tick(clock.now());
            assert_eq!(out.missed_now, 0);
            assert_eq!(out.lateness, Duration::ZERO);
        }
        assert_eq!(s.missed_deadlines(), 0);
    }

    #[test]
    fn armed_wakeup_jitter_is_not_a_miss_but_whole_periods_are() {
        let period = Duration::from_millis(1);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        s.begin_tick(clock.now()); // anchor
        let due = s.next_ready_at(clock.now());
        // The wheel oversleeps by a quarter period: jitter, not a miss
        // (the blocking path likewise absorbs sleep overshoot).
        clock.sleep(due - clock.now() + period / 4);
        let out = s.begin_tick(clock.now());
        assert_eq!(out.lateness, period / 4);
        assert_eq!(out.missed_now, 0);
        // A shard stalled past whole grid edges *does* book them.
        let due = s.next_ready_at(clock.now());
        clock.sleep(due - clock.now() + period * 2 + period / 2);
        let out = s.begin_tick(clock.now());
        assert_eq!(out.missed_now, 2, "two whole edges dropped");
        assert_eq!(s.missed_deadlines(), 2);
        // The grid did not slip: the next edge is on the original grid.
        let due = s.next_ready_at(clock.now());
        clock.sleep(due - clock.now());
        assert_eq!(s.begin_tick(clock.now()).missed_now, 0);
        assert_eq!(s.missed_deadlines(), 2);
    }

    #[test]
    fn unarmed_overrun_still_books_the_blown_edge() {
        // Back-to-back ticks whose work overran the slot: no arming
        // happened, so the edge itself was blown — same math as pace().
        let period = Duration::from_millis(1);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        s.begin_tick(clock.now()); // anchor
        clock.advance(period * 5 + period / 2); // slow tick, no arm
        assert_eq!(s.next_ready_at(clock.now()), clock.now(), "already due");
        let out = s.begin_tick(clock.now());
        assert_eq!(out.missed_now, 5, "4 whole overruns + the blown edge");
        assert_eq!(s.missed_deadlines(), 5);
    }

    #[test]
    fn migration_phase_is_booked_exactly_once_on_commit() {
        // Source runs on-cadence, quiesces mid-slot, target imports the
        // phase: the in-flight slot is booked by exactly one side (here:
        // neither, because nothing overran), and the target's first tick
        // lands on the source's grid edge — not an immediate re-anchor.
        let period = Duration::from_millis(2);
        let (mut src, clock) = virtual_scheduler(Pace::RealTime, period);
        src.begin_tick(clock.now()); // anchor; next edge = t0 + p
        clock.advance(period / 4); // quiesce mid-slot
        let phase = src.export_phase(clock.now()).expect("anchored grid");
        assert_eq!(phase, period * 3 / 4);
        assert_eq!(src.missed_deadlines(), 0, "no overrun: source books none");

        let mut dst = TickScheduler::with_clock(Pace::RealTime, period, Box::new(clock.clone()));
        dst.import_phase(clock.now(), phase);
        let due = dst.next_ready_at(clock.now());
        assert_eq!(due - clock.now(), phase, "target resumes the grid");
        clock.sleep(phase);
        let out = dst.begin_tick(clock.now());
        assert_eq!(out.missed_now, 0, "in-flight slot not re-booked on target");
        assert_eq!(dst.missed_deadlines(), 0);
    }

    #[test]
    fn overrun_at_quiesce_is_booked_on_the_source_only() {
        // The session was already behind when the migrator quiesced it
        // mid-slot. The overrun books once, on the source, at export
        // time; the exported phase points at the next *unbooked* edge,
        // so the target books nothing for it — and an abort-resume
        // (thaw → reset) cannot book it a second time either.
        let period = Duration::from_millis(1);
        let (mut src, clock) = virtual_scheduler(Pace::RealTime, period);
        src.begin_tick(clock.now()); // anchor; next edge = t0 + p
        clock.advance(period * 2 + period / 2); // 1.5 edges overrun
        let phase = src.export_phase(clock.now()).expect("anchored grid");
        assert_eq!(src.missed_deadlines(), 2, "in-flight overrun books once");
        assert_eq!(phase, period / 2, "phase points at the next unbooked edge");

        // Commit path: the target resumes at that edge, books nothing.
        let mut dst = TickScheduler::with_clock(Pace::RealTime, period, Box::new(clock.clone()));
        dst.import_phase(clock.now(), phase);
        clock.sleep(phase);
        assert_eq!(dst.begin_tick(clock.now()).missed_now, 0);

        // Abort path: the source thaws (reset) and re-anchors — the
        // frozen interval is forgiven, the booked misses stay booked
        // exactly once.
        src.reset();
        assert_eq!(src.begin_tick(clock.now()), PaceOutcome::default());
        assert_eq!(src.missed_deadlines(), 2, "no double booking after abort");
    }

    #[test]
    fn export_phase_is_none_for_max_speed_and_unanchored_grids() {
        let (mut s, clock) = virtual_scheduler(Pace::MaxSpeed, Duration::from_millis(1));
        assert_eq!(s.export_phase(clock.now()), None);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, Duration::from_millis(1));
        assert_eq!(s.export_phase(clock.now()), None, "never ticked: no grid");
    }

    #[test]
    fn reset_forgives_idle_gaps() {
        let period = Duration::from_millis(1);
        let (mut s, clock) = virtual_scheduler(Pace::RealTime, period);
        s.pace();
        clock.advance(5 * period);
        s.reset(); // the gap was idleness, not lateness
        let out = s.pace();
        assert_eq!(out, PaceOutcome::default(), "re-anchor, no sleep, no miss");
        assert_eq!(s.missed_deadlines(), 0);
    }
}
