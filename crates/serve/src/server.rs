//! The TCP server: acceptor, poll-based connection I/O, session
//! registry, and the sharded session executor.
//!
//! Thread model (all `std::thread`, no external runtime) — O(shards),
//! never O(sessions) or O(connections):
//!
//! - one **acceptor/io** thread owns the nonblocking listener and every
//!   connection socket. Each pass it accepts, reads whatever bytes are
//!   available, parses at most one in-flight request per connection,
//!   drains each connection's outbound queue (replies and subscribed
//!   tick updates), and writes without blocking. A connection that
//!   hangs up is dropped on the spot — its outbound queue dies with it,
//!   so nothing is ever left blocked on a dead peer (the old
//!   per-connection writer-thread leak is gone by construction);
//! - a fixed pool of **executor shards** drives every session at tick
//!   granularity on a shared deadline wheel (see [`crate::executor`]);
//! - **control operations** (create/adopt/migrate/drain/list), which
//!   may build networks or dial other servers, run on short-lived
//!   offload threads that answer into the connection's pending-reply
//!   slot, keeping the io thread responsive.
//!
//! Shutdown is cooperative: a shared flag flips, the io loop flushes
//! queued replies for up to a second (so the `Ok` answering a `Drain`
//! still reaches its client), then the executor closes every session.
//! Injection never crosses a thread boundary twice — the io thread
//! pushes straight into the session's bounded stream queue and reports
//! shed load as [`Response::Overloaded`].

use crate::client::Client;
use crate::executor::{ExecutorConfig, ShardExecutor};
use crate::protocol::{
    ErrorCode, ModelSource, Pace, ProtocolError, Request, Response, SessionEntry, SessionStats,
    FRAME_HEADER_BYTES, FRAME_TRAILER_BYTES, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::resilient::BackoffPolicy;
use crate::session::{Cmd, MigrationTicket, Outbound, SessionConfig, SessionHandle};
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{Arc, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};
use tn_compass::{KernelSession, ParallelSim, ReferenceSim};
use tn_core::wire::InputEvent;
use tn_core::{modelfile, LintConfig, Network, NetworkBuilder, NetworkSnapshot};

/// Server-wide configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; use `127.0.0.1:0` to let the OS pick a port.
    pub addr: String,
    /// Real-time tick period for [`Pace::RealTime`] sessions (the
    /// paper's tick is 1 ms).
    pub tick_period: Duration,
    /// Force every session to [`Pace::MaxSpeed`] regardless of what its
    /// creator asked for (the `--max-speed` server flag).
    pub max_speed: bool,
    /// Idle sessions are evicted after this long without work.
    pub idle_timeout: Duration,
    /// Per-session bound on queued injected events.
    pub input_capacity: usize,
    /// Per-session high-water mark on undrained output spikes; beyond it
    /// the oldest are evicted and counted.
    pub output_capacity: usize,
    /// Hard cap on concurrently live sessions (admission control; the
    /// executor multiplexes everything admitted onto its fixed shards).
    pub max_sessions: usize,
    /// Worker threads for [`crate::protocol::Engine::Parallel`] sessions.
    pub parallel_threads: usize,
    /// Default shard count for [`Request::CreateShardedSession`] requests
    /// that ask for the server default (`shards == 0`).
    pub shards: usize,
    /// Session-executor driver shards. 0 means auto: `min(cores, 8)`.
    pub exec_shards: usize,
    /// Path to the `tn-shard-worker` binary; when set, sharded sessions
    /// place each shard in its own OS process, otherwise shards run as
    /// in-process workers (still exchanging spikes over loopback TCP).
    pub shard_worker_bin: Option<std::path::PathBuf>,
    /// Per-phase budget for live migrations: the quiesce reply, each
    /// connect attempt to the target, the adopt transfer, and the retire
    /// handshake are all individually bounded by this, so a wedged
    /// target can only stall the control plane — never the session.
    pub migration_timeout: Duration,
    /// How long a quiesced session stays frozen waiting for its
    /// migration to commit or abort before it thaws itself. Must exceed
    /// the worst-case connect + transfer time; a crashed migrator costs
    /// at most this much ticking time.
    pub migration_hold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4160".to_string(),
            tick_period: Duration::from_millis(1),
            max_speed: false,
            idle_timeout: Duration::from_secs(120),
            input_capacity: 1 << 16,
            output_capacity: 1 << 20,
            max_sessions: 32,
            parallel_threads: 2,
            shards: 2,
            exec_shards: 0,
            shard_worker_bin: None,
            migration_timeout: Duration::from_secs(10),
            migration_hold: Duration::from_secs(60),
        }
    }
}

/// One registered session: its live handle plus the encoded create
/// request it was built from — the spec a migration nests inside
/// [`Request::AdoptSession`] so the target can rebuild the same
/// engine/pace/fault plan before restoring the snapshot.
struct Entry {
    handle: SessionHandle,
    spec: Arc<Vec<u8>>,
}

/// Forwarding entries kept after migrations commit, so later requests
/// naming a moved session get a [`Response::Redirect`] instead of
/// `UnknownSession`. FIFO-bounded: old entries age out.
const MOVED_CAP: usize = 64;

struct RegistryState {
    sessions: HashMap<String, Entry>,
    /// Set by [`Request::Drain`]: creates are rejected from then on.
    /// Lives under the same mutex as the session map so drain-vs-create
    /// is a total order (model-checked below): an insert either
    /// completed before the drain (and gets migrated out with the rest)
    /// or observes the flag and is rejected — never half-admitted.
    draining: bool,
    moved: VecDeque<(String, String)>,
}

/// Named live sessions. Closed/evicted entries are reaped lazily on
/// every lookup and create.
pub(crate) struct Registry {
    state: Mutex<RegistryState>,
    max_sessions: usize,
}

impl Registry {
    pub(crate) fn new(max_sessions: usize) -> Self {
        Registry {
            state: Mutex::new(RegistryState {
                sessions: HashMap::new(),
                draining: false,
                moved: VecDeque::new(),
            }),
            max_sessions: max_sessions.max(1),
        }
    }

    pub(crate) fn get(&self, name: &str) -> Option<SessionHandle> {
        let mut st = self.state.lock().unwrap();
        st.sessions.retain(|_, e| !e.handle.is_closed());
        st.sessions.get(name).map(|e| e.handle.clone())
    }

    /// Handle plus creation spec — what a migration needs.
    fn get_entry(&self, name: &str) -> Option<(SessionHandle, Arc<Vec<u8>>)> {
        let mut st = self.state.lock().unwrap();
        st.sessions.retain(|_, e| !e.handle.is_closed());
        st.sessions
            .get(name)
            .map(|e| (e.handle.clone(), Arc::clone(&e.spec)))
    }

    /// Where a committed migration sent this session, if we remember.
    fn moved_to(&self, name: &str) -> Option<String> {
        let st = self.state.lock().unwrap();
        st.moved
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, addr)| addr.clone())
    }

    pub(crate) fn insert(&self, handle: SessionHandle, spec: Arc<Vec<u8>>) -> Result<(), Response> {
        let mut st = self.state.lock().unwrap();
        if st.draining {
            return Err(Response::Error {
                code: ErrorCode::Draining,
                message: "server is draining; create sessions elsewhere".to_string(),
            });
        }
        st.sessions.retain(|_, e| !e.handle.is_closed());
        if st.sessions.contains_key(&handle.name) {
            return Err(Response::Error {
                code: ErrorCode::SessionExists,
                message: format!("session '{}' already exists", handle.name),
            });
        }
        if st.sessions.len() >= self.max_sessions {
            return Err(Response::Error {
                code: ErrorCode::TooManySessions,
                message: format!("session budget ({}) exhausted", self.max_sessions),
            });
        }
        // A fresh session with this name supersedes any stale
        // forwarding entry (e.g. the session migrated back here).
        let name = handle.name.clone();
        st.moved.retain(|(n, _)| n != &name);
        st.sessions.insert(name, Entry { handle, spec });
        Ok(())
    }

    fn remove(&self, name: &str) -> Option<SessionHandle> {
        self.state
            .lock()
            .unwrap()
            .sessions
            .remove(name)
            .map(|e| e.handle)
    }

    /// Commit bookkeeping for a migration: drop the local entry and
    /// remember the forwarding address.
    fn record_moved(&self, name: &str, addr: &str) {
        let mut st = self.state.lock().unwrap();
        st.sessions.remove(name);
        st.moved.retain(|(n, _)| n != name);
        st.moved.push_back((name.to_string(), addr.to_string()));
        while st.moved.len() > MOVED_CAP {
            st.moved.pop_front();
        }
    }

    /// Live sessions, reaped and sorted by name (stable control-plane
    /// output).
    pub(crate) fn list(&self) -> Vec<(String, SessionHandle)> {
        let mut st = self.state.lock().unwrap();
        st.sessions.retain(|_, e| !e.handle.is_closed());
        let mut out: Vec<_> = st
            .sessions
            .iter()
            .map(|(n, e)| (n.clone(), e.handle.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Flip the drain flag; returns whether this call flipped it.
    pub(crate) fn set_draining(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        let first = !st.draining;
        st.draining = true;
        first
    }

    fn is_draining(&self) -> bool {
        self.state.lock().unwrap().draining
    }

    pub(crate) fn count(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.sessions.retain(|_, e| !e.handle.is_closed());
        st.sessions.len()
    }

    fn take_all(&self) -> Vec<SessionHandle> {
        self.state
            .lock()
            .unwrap()
            .sessions
            .drain()
            .map(|(_, e)| e.handle)
            .collect()
    }
}

/// Control-plane telemetry: migrations, drains, and per-phase timings,
/// rendered into every metrics scrape alongside the session's own
/// registry. One instance per server.
struct OpsMetrics {
    registry: tn_obs::Registry,
}

/// 1 µs … ~16 s in ×16 steps — spans a loopback quiesce up to a
/// cross-network transfer brushing its timeout.
const PHASE_BOUNDS: [u64; 6] = [1_000, 16_000, 256_000, 4_096_000, 65_536_000, 1_048_576_000];

impl OpsMetrics {
    fn new() -> Self {
        let registry = tn_obs::Registry::new();
        // Pre-register the unlabelled series so a scrape shows them at
        // zero before the first migration/drain ever happens.
        registry.counter("tn_ops_migrations_total");
        registry.counter("tn_ops_drains_total");
        OpsMetrics { registry }
    }

    fn migration_committed(&self) {
        self.registry.counter("tn_ops_migrations_total").inc();
    }

    fn migration_failed(&self, phase: &str) {
        self.registry
            .counter_with("tn_ops_migration_failures_total", &[("phase", phase)])
            .inc();
    }

    fn drain_started(&self) {
        self.registry.counter("tn_ops_drains_total").inc();
    }

    fn observe_phase(&self, phase: &str, since: Instant) {
        self.registry
            .histogram_with(
                "tn_ops_migration_phase_ns",
                &[("phase", phase)],
                &PHASE_BOUNDS,
            )
            .observe(since.elapsed().as_nanos() as u64);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
}

/// Controls a server started with [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind the listen socket (sessions start only when clients ask).
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let advertised = listener.local_addr()?.to_string();
        let registry = Arc::new(Registry::new(cfg.max_sessions));
        // sync: store(Release) in shutdown()/Drop pairs with
        // load(Acquire) in the io loop, ordering all pre-shutdown
        // writes before teardown.
        let shutdown = Arc::new(AtomicBool::new(false));
        let executor = Arc::new(ShardExecutor::new(ExecutorConfig {
            shards: cfg.exec_shards,
            transient: false,
        }));
        let ctx = Arc::new(ServerCtx {
            cfg,
            registry: Arc::clone(&registry),
            shutdown: Arc::clone(&shutdown),
            ops: OpsMetrics::new(),
            executor,
            advertised,
        });
        Ok(Server {
            listener,
            ctx,
            shutdown,
            registry,
        })
    }

    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Bind and run the io loop on a background thread; returns a
    /// handle for shutdown. This is the embedding/test entry point.
    pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(cfg)?;
        let addr = server.local_addr()?;
        let shutdown = Arc::clone(&server.shutdown);
        let registry = Arc::clone(&server.registry);
        let acceptor = std::thread::Builder::new()
            .name("tn-serve-acceptor".to_string())
            .spawn(move || server.run())
            .expect("spawn acceptor");
        Ok(ServerHandle {
            addr,
            shutdown,
            registry,
            acceptor: Some(acceptor),
        })
    }

    /// Accept and serve connections until shutdown. Blocks the calling
    /// thread; this is the CLI entry point. One thread multiplexes the
    /// listener and every connection socket.
    pub fn run(self) {
        let mut conns: Vec<Conn> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let mut progress = false;
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if let Ok(conn) = Conn::new(stream) {
                            conns.push(conn);
                            progress = true;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
            for conn in conns.iter_mut() {
                progress |= conn.pass(&self.ctx);
            }
            conns.retain(|c| !c.dead);
            if !progress {
                // Nothing moved: idle briefly instead of spinning.
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        // Grace: flush queued replies — in particular the final Ok to
        // the client whose Drain initiated this shutdown.
        let deadline = Instant::now() + Duration::from_secs(1);
        while Instant::now() < deadline {
            let mut outstanding = false;
            for conn in conns.iter_mut() {
                conn.resolve_pending(&self.ctx);
                conn.drain_outbound();
                conn.flush();
                outstanding |= !conn.dead && (conn.pending.is_some() || !conn.write_idle());
            }
            conns.retain(|c| !c.dead);
            if !outstanding {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(conns);
        // Close every session: abandons waiters and joins the shards.
        // After a completed drain this is a no-op on an empty table.
        self.ctx.executor.shutdown();
        let _ = self.registry.take_all();
    }
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown and wait for the io loop (and thus session
    /// teardown) to finish.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Live session count (for tests and the CLI status line).
    pub fn session_count(&self) -> usize {
        self.registry.count()
    }

    /// Whether the io loop has exited on its own — true once a drain
    /// has emptied the server (the CLI then exits 0).
    pub fn is_finished(&self) -> bool {
        self.acceptor.as_ref().is_none_or(|a| a.is_finished())
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Everything a request needs to be served: shared by the io loop and
/// the control-plane offload threads.
struct ServerCtx {
    cfg: ServerConfig,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    ops: OpsMetrics,
    executor: Arc<ShardExecutor>,
    /// This server's reachable address (post-bind, so a `:0` listen
    /// port is resolved) — what redirects and status replies advertise.
    advertised: String,
}

/// How a dispatched request answers: immediately, or later through a
/// pending-reply slot the io loop polls.
enum Dispatch {
    Now(Response),
    Wait(Pending),
}

/// What to do with a pending reply when it lands.
enum PendingKind {
    Plain,
    /// Append the server's control-plane and executor metrics to the
    /// session's scrape.
    Metrics,
    /// Remove the named session from the registry (CloseSession).
    Close(String),
}

/// One outstanding request on a connection. At most one per connection:
/// the io loop parses no further frames until it resolves, preserving
/// request/reply ordering.
struct Pending {
    rx: Receiver<Response>,
    kind: PendingKind,
    /// Context for the hangup error if the replier disappears.
    ctx: String,
}

impl ServerCtx {
    /// Route one decoded request. Cheap requests answer inline; session
    /// commands and control operations answer through a pending slot.
    fn dispatch(self: &Arc<Self>, req: Request, out_tx: &Sender<Outbound>) -> Dispatch {
        match req {
            Request::Ping => Dispatch::Now(Response::Pong),
            create @ (Request::CreateSession { .. } | Request::CreateShardedSession { .. }) => {
                self.offload("create", move |ctx| ctx.create_from(create))
            }
            Request::InjectSpikes { session, events } => {
                let handle = match self.lookup(&session) {
                    Ok(h) => h,
                    Err(resp) => return Dispatch::Now(resp),
                };
                Dispatch::Now(match handle.injector().offer(&events) {
                    Ok(outcome) if outcome.dropped > 0 => Response::Overloaded {
                        accepted: outcome.accepted,
                        dropped: outcome.dropped,
                        total_dropped: handle.injector().dropped(),
                    },
                    Ok(outcome) => Response::InjectAck {
                        accepted: outcome.accepted,
                    },
                    Err(e) => Response::Error {
                        code: ErrorCode::InvalidInjection,
                        message: e.to_string(),
                    },
                })
            }
            Request::Subscribe { session } => {
                let sink = out_tx.clone();
                self.session_cmd(&session, PendingKind::Plain, move |reply| Cmd::Subscribe {
                    sink,
                    reply,
                })
            }
            Request::RunFor { session, ticks } => {
                self.session_cmd(&session, PendingKind::Plain, move |reply| Cmd::RunFor {
                    ticks,
                    reply,
                })
            }
            Request::Snapshot { session } => {
                self.session_cmd(&session, PendingKind::Plain, |reply| Cmd::Snapshot {
                    reply,
                })
            }
            Request::Restore { session, bytes } => {
                self.session_cmd(&session, PendingKind::Plain, move |reply| Cmd::Restore {
                    bytes,
                    reply,
                })
            }
            Request::Stats { session } => {
                self.session_cmd(&session, PendingKind::Plain, |reply| Cmd::Stats { reply })
            }
            Request::GetMetrics { session } => {
                // The session's own scrape; the io loop appends the
                // server's control-plane and shard-executor series when
                // the reply lands (PendingKind::Metrics).
                self.session_cmd(&session, PendingKind::Metrics, |reply| Cmd::GetMetrics {
                    reply,
                })
            }
            Request::CloseSession { session } => {
                let kind = PendingKind::Close(session.clone());
                match self.session_cmd(&session, kind, |reply| Cmd::Close { reply }) {
                    now @ Dispatch::Now(_) => {
                        // Lookup failed or the driver is already gone —
                        // mirror the eager removal the reply path does.
                        self.registry.remove(&session);
                        now
                    }
                    wait => wait,
                }
            }
            Request::ListSessions => self.offload("list", |ctx| ctx.list_sessions()),
            Request::ServerStatus => Dispatch::Now(Response::ServerStatusData {
                addr: self.advertised.clone(),
                draining: self.registry.is_draining(),
                sessions: self.registry.count() as u32,
                max_sessions: self.registry.max_sessions as u32,
            }),
            Request::MigrateSession { session, target } => {
                self.offload("migrate", move |ctx| ctx.migrate(&session, &target))
            }
            Request::Drain { target } => self.offload("drain", move |ctx| ctx.drain_to(&target)),
            Request::AdoptSession {
                create,
                snapshot,
                baseline,
                pending,
                grid_phase,
            } => self.offload("adopt", move |ctx| {
                ctx.adopt_session(*create, snapshot, baseline, pending, grid_phase)
            }),
        }
    }

    /// Run a control operation on a short-lived thread, answering into
    /// a pending slot so the io loop stays responsive while networks
    /// build or remote servers are dialed.
    fn offload(
        self: &Arc<Self>,
        what: &str,
        f: impl FnOnce(&ServerCtx) -> Response + Send + 'static,
    ) -> Dispatch {
        let (tx, rx) = mpsc::channel();
        let ctx = Arc::clone(self);
        // sync: deliberately detached — the operation is bounded by the
        // migration/build timeouts and reports through `tx`; if it dies,
        // the io loop sees the disconnect and answers Shutdown.
        let _ = std::thread::Builder::new()
            .name("tn-serve-ctl".to_string())
            .spawn(move || {
                let _ = tx.send(f(&ctx));
            });
        Dispatch::Wait(Pending {
            rx,
            kind: PendingKind::Plain,
            ctx: what.to_string(),
        })
    }

    /// Resolve a session name to its live handle. A name this server
    /// migrated away answers with the forwarding address instead of
    /// `UnknownSession`, so clients re-home without operator help.
    fn lookup(&self, session: &str) -> Result<SessionHandle, Response> {
        if let Some(h) = self.registry.get(session) {
            return Ok(h);
        }
        if let Some(addr) = self.registry.moved_to(session) {
            return Err(Response::Redirect {
                session: session.to_string(),
                addr,
            });
        }
        Err(Response::Error {
            code: ErrorCode::UnknownSession,
            message: format!("no session named '{session}'"),
        })
    }

    /// Queue a command for a session's shard; the reply arrives through
    /// the connection's pending slot.
    fn session_cmd(
        &self,
        session: &str,
        kind: PendingKind,
        mk: impl FnOnce(Sender<Response>) -> Cmd,
    ) -> Dispatch {
        let handle = match self.lookup(session) {
            Ok(h) => h,
            Err(resp) => return Dispatch::Now(resp),
        };
        let (tx, rx) = mpsc::channel();
        if handle.send(mk(tx)).is_err() {
            return Dispatch::Now(Response::Error {
                code: ErrorCode::UnknownSession,
                message: format!("session '{session}' closed"),
            });
        }
        Dispatch::Wait(Pending {
            rx,
            kind,
            ctx: session.to_string(),
        })
    }

    /// Create a session from either create request, keeping its encoded
    /// form as the migration spec.
    fn create_from(&self, create: Request) -> Response {
        let spec = Arc::new(create.encode());
        match create {
            Request::CreateSession {
                name,
                engine,
                pace,
                source,
                fault_plan,
            } => match self.build_plain(engine, source, &fault_plan) {
                Ok(sim) => self.register(name, pace, sim, spec, SessionStats::default(), &[], None),
                Err(resp) => resp,
            },
            Request::CreateShardedSession {
                name,
                pace,
                source,
                fault_plan,
                shards,
            } => match self.build_sharded(source, &fault_plan, shards) {
                Ok(sim) => self.register(name, pace, sim, spec, SessionStats::default(), &[], None),
                Err(resp) => resp,
            },
            _ => unreachable!("create_from called with a non-create request"),
        }
    }

    /// Build a configured single-process expression (no registration).
    fn build_plain(
        &self,
        engine: crate::protocol::Engine,
        source: ModelSource,
        fault_plan: &str,
    ) -> Result<Box<dyn KernelSession>, Response> {
        let net = match self.build_network(source) {
            Ok(net) => net,
            Err(message) => {
                return Err(Response::Error {
                    code: ErrorCode::ModelRejected,
                    message,
                })
            }
        };
        let plan = Self::parse_fault_plan(fault_plan, &net)?;
        let mut sim: Box<dyn KernelSession> = match engine {
            crate::protocol::Engine::Chip => Box::new(tn_chip::TrueNorthSim::new(net)),
            crate::protocol::Engine::Reference => Box::new(ReferenceSim::new(net)),
            crate::protocol::Engine::Parallel => {
                Box::new(ParallelSim::new(net, self.cfg.parallel_threads))
            }
        };
        if let Some(plan) = &plan {
            sim.attach_faults(plan);
        }
        Ok(sim)
    }

    /// Build a session partitioned across `tn-shard` workers — the
    /// gateway half of the distributed sharding layer: it places the
    /// worker processes; the caller serves the session like any other.
    fn build_sharded(
        &self,
        source: ModelSource,
        fault_plan: &str,
        shards: u16,
    ) -> Result<Box<dyn KernelSession>, Response> {
        let net = match self.build_network(source) {
            Ok(net) => net,
            Err(message) => {
                return Err(Response::Error {
                    code: ErrorCode::ModelRejected,
                    message,
                })
            }
        };
        let plan = Self::parse_fault_plan(fault_plan, &net)?;
        let shards = if shards == 0 {
            self.cfg.shards
        } else {
            shards as usize
        };
        let spec = tn_shard::ShardSpec {
            shards,
            spawn: match &self.cfg.shard_worker_bin {
                Some(bin) => tn_shard::SpawnMode::Process {
                    worker_bin: bin.clone(),
                },
                None => tn_shard::SpawnMode::InProcess,
            },
            ..tn_shard::ShardSpec::default()
        };
        let mut sim: Box<dyn KernelSession> = match tn_shard::ShardedSession::launch(net, &spec) {
            Ok(s) => Box::new(s),
            Err(e) => {
                return Err(Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("failed to place shard workers: {e}"),
                })
            }
        };
        if let Some(plan) = &plan {
            sim.attach_faults(plan);
        }
        Ok(sim)
    }

    /// Control plane: every live session's name and point-in-time stats.
    /// Each shard round-trip is deadline-bounded; a wedged session is
    /// skipped rather than hanging the whole listing.
    fn list_sessions(&self) -> Response {
        let mut entries = Vec::new();
        for (name, handle) in self.registry.list() {
            let (tx, rx) = mpsc::channel();
            if handle.send(Cmd::Stats { reply: tx }).is_err() {
                continue;
            }
            if let Ok(Response::StatsData(stats)) = rx.recv_timeout(self.cfg.migration_timeout) {
                entries.push(SessionEntry { name, stats });
            }
        }
        Response::SessionList { entries }
    }

    /// Live-migrate `name` to the server at `target`.
    ///
    /// Phases (each bounded by `migration_timeout`): **pin** (excludes
    /// idle eviction and concurrent migrations), **quiesce** (freeze at
    /// a tick boundary and take the ticket), **connect** (dial the
    /// target with backoff), **transfer** (one `AdoptSession` frame),
    /// **commit** (retire the source task, redirect its clients, wait
    /// for it to close). Any failure before the target replies `Created`
    /// aborts back to an untouched, still-ticking source; after that
    /// point the target owns the session and the source always retires.
    fn migrate(&self, name: &str, target: &str) -> Response {
        let (handle, spec) = match self.registry.get_entry(name) {
            Some(e) => e,
            None => {
                return match self.lookup(name) {
                    Err(resp) => resp,
                    Ok(_) => Response::Error {
                        code: ErrorCode::MigrationFailed,
                        message: format!("session '{name}' closed mid-request"),
                    },
                }
            }
        };
        if target == self.advertised {
            return Response::Error {
                code: ErrorCode::MigrationFailed,
                message: "migration target is this server".to_string(),
            };
        }
        let pin = handle.migration();
        if !pin.pin() {
            return Response::Error {
                code: ErrorCode::MigrationFailed,
                message: format!("session '{name}' is already migrating or closing"),
            };
        }
        match self.try_migrate(&handle, &spec, target) {
            Ok(()) => {
                self.ops.migration_committed();
                self.registry.record_moved(name, target);
                Response::Redirect {
                    session: name.to_string(),
                    addr: target.to_string(),
                }
            }
            Err((phase, message)) => {
                // Abort to source: thaw the task and release the pin.
                // The session never stopped being servable — at worst it
                // sat quiesced for one phase timeout.
                let _ = handle.send(Cmd::Resume);
                pin.unpin();
                self.ops.migration_failed(phase);
                Response::Error {
                    code: ErrorCode::MigrationFailed,
                    message: format!("{phase}: {message}"),
                }
            }
        }
    }

    /// The fallible phases of [`ServerCtx::migrate`], returning the
    /// failing phase name for telemetry. The caller owns the pin.
    fn try_migrate(
        &self,
        handle: &SessionHandle,
        spec: &[u8],
        target: &str,
    ) -> Result<(), (&'static str, String)> {
        // Quiesce: freeze at the next tick boundary, take the ticket.
        // The source books any in-flight grid overrun here, once; the
        // ticket's grid phase tells the target where the next unbooked
        // deadline edge lies.
        let started = Instant::now();
        let (tx, rx) = mpsc::channel();
        handle
            .send(Cmd::Quiesce {
                hold: self.cfg.migration_hold,
                reply: tx,
            })
            .map_err(|e| ("quiesce", e.to_string()))?;
        let ticket: MigrationTicket = rx
            .recv_timeout(self.cfg.migration_timeout)
            .map_err(|e| ("quiesce", e.to_string()))?;
        self.ops.observe_phase("quiesce", started);

        // Connect: dial the target with per-attempt timeout + backoff.
        let started = Instant::now();
        let mut client = self.connect_target(target).map_err(|e| ("connect", e))?;
        self.ops.observe_phase("connect", started);

        // Transfer: the whole session in one AdoptSession frame.
        let started = Instant::now();
        let create = {
            let (op, payload) =
                crate::protocol::split_frame(spec).map_err(|e| ("transfer", e.message))?;
            Request::decode(op, payload).map_err(|e| ("transfer", e.message))?
        };
        let adopt = Request::AdoptSession {
            create: Box::new(create),
            snapshot: ticket.snapshot,
            baseline: ticket.baseline,
            pending: ticket.pending,
            grid_phase: ticket.grid_phase,
        };
        match client.request(&adopt) {
            Ok(Response::Created { .. }) => {}
            Ok(Response::Error { code, message }) => {
                return Err(("transfer", format!("target rejected ({code:?}): {message}")))
            }
            Ok(other) => return Err(("transfer", format!("unexpected adopt reply: {other:?}"))),
            Err(e) => return Err(("transfer", e.to_string())),
        }
        self.ops.observe_phase("transfer", started);

        // Commit: the target owns the session now — the one state this
        // protocol must never reach is the session ticking in two
        // places, so from here the source always retires; a sluggish
        // shard only degrades the handshake to best-effort.
        let started = Instant::now();
        let (tx, rx) = mpsc::channel();
        if handle
            .send(Cmd::Retire {
                addr: target.to_string(),
                reply: tx,
            })
            .is_ok()
        {
            let _ = rx.recv_timeout(self.cfg.migration_timeout);
        }
        handle.migration().wait_closed(self.cfg.migration_timeout);
        self.ops.observe_phase("commit", started);
        Ok(())
    }

    /// Dial the migration target, retrying with seeded-jitter backoff.
    /// Every attempt is individually bounded by `migration_timeout`.
    fn connect_target(&self, target: &str) -> Result<Client, String> {
        let policy = BackoffPolicy {
            base: Duration::from_millis(20),
            max: Duration::from_millis(250),
            max_retries: 3,
            seed: 0x7A12,
            ..BackoffPolicy::default()
        };
        let mut last = String::new();
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                std::thread::sleep(policy.delay(attempt - 1));
            }
            match Client::connect_with_timeout(target, self.cfg.migration_timeout) {
                Ok(mut c) => {
                    // The transfer reply must also be bounded: a target
                    // that accepts the socket then wedges would
                    // otherwise hold the source quiesced forever.
                    if let Err(e) = c.set_io_timeout(Some(self.cfg.migration_timeout)) {
                        last = e.to_string();
                        continue;
                    }
                    return Ok(c);
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(format!(
            "target {target} unreachable after {} attempts: {last}",
            policy.max_retries + 1
        ))
    }

    /// Control plane: stop admitting sessions, migrate every live one to
    /// `target`, and — once empty — signal the io loop so a CLI server
    /// exits 0. Draining is sticky: a partial drain (some sessions
    /// failed to move) leaves the server refusing creates, still
    /// serving what remains, and the operator retries.
    fn drain_to(&self, target: &str) -> Response {
        if target == self.advertised {
            return Response::Error {
                code: ErrorCode::MigrationFailed,
                message: "drain target is this server".to_string(),
            };
        }
        if self.registry.set_draining() {
            self.ops.drain_started();
        }
        let mut failures = Vec::new();
        for (name, _) in self.registry.list() {
            match self.migrate(&name, target) {
                Response::Redirect { .. } => {}
                Response::Error { message, .. } => failures.push(format!("{name}: {message}")),
                other => failures.push(format!("{name}: unexpected reply {other:?}")),
            }
        }
        if failures.is_empty() {
            // sync: Release pairs with the io loop's Acquire; the loop's
            // shutdown grace pass flushes this reply before teardown.
            self.shutdown.store(true, Ordering::Release);
            Response::Ok
        } else {
            Response::Error {
                code: ErrorCode::MigrationFailed,
                message: format!("drain incomplete: {}", failures.join("; ")),
            }
        }
    }

    /// Server → server: adopt a migrating session — rebuild the
    /// expression from its original create request, restore the quiesced
    /// snapshot, and resume the session with the source's counter
    /// baselines, still-queued inputs, and real-time grid phase.
    fn adopt_session(
        &self,
        create: Request,
        snapshot: Vec<u8>,
        baseline: SessionStats,
        pending: Vec<InputEvent>,
        grid_phase: Option<Duration>,
    ) -> Response {
        let spec = Arc::new(create.encode());
        let (name, pace, mut sim) = match create {
            Request::CreateSession {
                name,
                engine,
                pace,
                source,
                fault_plan,
            } => match self.build_plain(engine, source, &fault_plan) {
                Ok(sim) => (name, pace, sim),
                Err(resp) => return resp,
            },
            Request::CreateShardedSession {
                name,
                pace,
                source,
                fault_plan,
                shards,
            } => match self.build_sharded(source, &fault_plan, shards) {
                Ok(sim) => (name, pace, sim),
                Err(resp) => return resp,
            },
            // Request::decode already rejects other nestings; keep the
            // invariant locally checkable.
            _ => {
                return Response::Error {
                    code: ErrorCode::Protocol,
                    message: "adopt payload must nest a create request".to_string(),
                }
            }
        };
        let snap = match NetworkSnapshot::from_bytes(&snapshot) {
            Ok(s) if s.cores.len() == sim.network().num_cores() => s,
            Ok(s) => {
                return Response::Error {
                    code: ErrorCode::SnapshotRejected,
                    message: format!(
                        "adopted snapshot has {} cores, model builds {}",
                        s.cores.len(),
                        sim.network().num_cores()
                    ),
                }
            }
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::SnapshotRejected,
                    message: e.to_string(),
                }
            }
        };
        sim.restore(&snap);
        self.register(name, pace, sim, spec, baseline, &pending, grid_phase)
    }

    /// Parse and lint a fault plan against this network's grid before
    /// the session exists — a bad plan is rejected, never run.
    fn parse_fault_plan(
        fault_plan: &str,
        net: &Network,
    ) -> Result<Option<tn_core::FaultPlan>, Response> {
        if fault_plan.is_empty() {
            return Ok(None);
        }
        let plan = match tn_core::FaultPlan::parse(fault_plan) {
            Ok(p) => p,
            Err(e) => {
                return Err(Response::Error {
                    code: ErrorCode::ModelRejected,
                    message: format!("fault plan rejected: {e}"),
                })
            }
        };
        if let Err(msg) = tn_core::fault::check_plan(&plan, net.width(), net.height()) {
            return Err(Response::Error {
                code: ErrorCode::ModelRejected,
                message: format!("fault plan rejected: {msg}"),
            });
        }
        Ok(Some(plan))
    }

    /// Admit a configured expression to the shard executor and register
    /// it. `base`/`pending`/`grid_phase` are zero/empty/None for fresh
    /// sessions and carry the source server's state for adopted ones.
    #[allow(clippy::too_many_arguments)]
    fn register(
        &self,
        name: String,
        pace: Pace,
        sim: Box<dyn KernelSession>,
        spec: Arc<Vec<u8>>,
        base: SessionStats,
        pending: &[InputEvent],
        grid_phase: Option<Duration>,
    ) -> Response {
        let session_cfg = SessionConfig {
            pace: if self.cfg.max_speed {
                Pace::MaxSpeed
            } else {
                pace
            },
            tick_period: self.cfg.tick_period,
            idle_timeout: self.cfg.idle_timeout,
            input_capacity: self.cfg.input_capacity,
            output_capacity: self.cfg.output_capacity,
            ..SessionConfig::default()
        };
        let handle =
            match self
                .executor
                .admit(name.clone(), sim, session_cfg, base, pending, grid_phase)
            {
                Ok(h) => h,
                Err(_) => {
                    return Response::Error {
                        code: ErrorCode::Shutdown,
                        message: "executor is shut down".to_string(),
                    }
                }
            };
        match self.registry.insert(handle.clone(), spec) {
            Ok(()) => Response::Created { session: name },
            Err(resp) => {
                // Lost the race (or over budget, or draining): tear the
                // session down.
                let (tx, _rx) = mpsc::channel();
                let _ = handle.send(Cmd::Close { reply: tx });
                resp
            }
        }
    }

    /// Build (and statically verify) the session's network.
    fn build_network(&self, source: ModelSource) -> Result<Network, String> {
        match source {
            ModelSource::Blank {
                width,
                height,
                seed,
            } => NetworkBuilder::new(width, height, seed)
                .build_verified(&LintConfig::default())
                .map(|(net, _)| net)
                .map_err(|e| e.to_string()),
            ModelSource::Model(text) => modelfile::load_verified(&text, &LintConfig::default())
                .map(|(net, _)| net)
                .map_err(|e| e.to_string()),
        }
    }
}

/// One step of incremental frame extraction from a connection's read
/// buffer. Mirrors the old blocking reader's recovery semantics: any
/// malformation whose frame boundary is still known is recoverable.
enum FrameStep {
    /// Not enough buffered bytes yet.
    Need,
    Frame(u8, Vec<u8>),
    Recoverable(ProtocolError),
    /// Malformed beyond resynchronization: answer and close.
    Fatal(ProtocolError),
}

fn take_frame(rbuf: &mut Vec<u8>) -> FrameStep {
    if rbuf.len() < FRAME_HEADER_BYTES {
        return FrameStep::Need;
    }
    let hdr: [u8; FRAME_HEADER_BYTES] = rbuf[..FRAME_HEADER_BYTES].try_into().unwrap();
    let h = tn_core::wire::framed::read_header(&hdr);
    // Decode the length first: as long as it is sane, the frame
    // boundary (payload + CRC trailer) is known and any other
    // malformation is recoverable.
    if h.len > MAX_FRAME_BYTES {
        return FrameStep::Fatal(ProtocolError::new(format!(
            "frame length {} exceeds the {MAX_FRAME_BYTES}-byte cap",
            h.len
        )));
    }
    let total = FRAME_HEADER_BYTES + h.len as usize + FRAME_TRAILER_BYTES;
    if rbuf.len() < total {
        return FrameStep::Need;
    }
    let body = rbuf[FRAME_HEADER_BYTES..total].to_vec();
    rbuf.drain(..total);
    if h.version != PROTOCOL_VERSION {
        return FrameStep::Recoverable(ProtocolError::new(format!(
            "unsupported protocol version {} (this build speaks {PROTOCOL_VERSION})",
            h.version
        )));
    }
    match tn_core::wire::framed::verify_body(&h, &body) {
        Ok(payload) => FrameStep::Frame(h.opcode, payload.to_vec()),
        Err(e) => FrameStep::Recoverable(e.into()),
    }
}

/// One client connection, owned entirely by the io loop: a nonblocking
/// socket, an incremental read buffer, a write buffer, the outbound
/// queue subscribers stream into, and at most one pending request.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    /// Kept so subscriber sinks cloned from it stay connected even
    /// while no subscription exists.
    out_tx: Sender<Outbound>,
    out_rx: Receiver<Outbound>,
    wbuf: Vec<u8>,
    wpos: usize,
    pending: Option<Pending>,
    /// Flush the write buffer, then drop the connection.
    closing: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let (out_tx, out_rx) = mpsc::channel();
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            out_tx,
            out_rx,
            wbuf: Vec::new(),
            wpos: 0,
            pending: None,
            closing: false,
            dead: false,
        })
    }

    /// One full service pass; returns whether anything moved.
    fn pass(&mut self, ctx: &Arc<ServerCtx>) -> bool {
        let mut progress = false;
        progress |= self.fill_rbuf();
        progress |= self.parse_frames(ctx);
        progress |= self.resolve_pending(ctx);
        progress |= self.drain_outbound();
        progress |= self.flush();
        progress
    }

    fn push_frame(&mut self, frame: &[u8]) {
        self.wbuf.extend_from_slice(frame);
    }

    fn write_idle(&self) -> bool {
        self.wpos == self.wbuf.len()
    }

    /// Nonblocking read into the frame buffer. EOF switches to closing
    /// (flush what is queued, then drop) — the old reader also finished
    /// its in-flight reply before hanging up.
    fn fill_rbuf(&mut self) -> bool {
        if self.closing || self.dead {
            return false;
        }
        let mut progress = false;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.closing = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&buf[..n]);
                    progress = true;
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Parse and dispatch buffered frames — at most one outstanding
    /// request at a time, so replies keep request order.
    fn parse_frames(&mut self, ctx: &Arc<ServerCtx>) -> bool {
        let mut progress = false;
        while self.pending.is_none() && !self.closing && !self.dead {
            match take_frame(&mut self.rbuf) {
                FrameStep::Need => break,
                FrameStep::Frame(opcode, payload) => {
                    progress = true;
                    match Request::decode(opcode, &payload) {
                        Ok(req) => match ctx.dispatch(req, &self.out_tx) {
                            Dispatch::Now(resp) => self.push_frame(&resp.encode()),
                            Dispatch::Wait(p) => self.pending = Some(p),
                        },
                        Err(e) => self.push_frame(
                            &Response::Error {
                                code: ErrorCode::Protocol,
                                message: e.message,
                            }
                            .encode(),
                        ),
                    }
                }
                FrameStep::Recoverable(e) => {
                    progress = true;
                    self.push_frame(
                        &Response::Error {
                            code: ErrorCode::Protocol,
                            message: e.message,
                        }
                        .encode(),
                    );
                }
                FrameStep::Fatal(e) => {
                    progress = true;
                    self.push_frame(
                        &Response::Error {
                            code: ErrorCode::Protocol,
                            message: e.message,
                        }
                        .encode(),
                    );
                    self.closing = true;
                }
            }
        }
        progress
    }

    /// Poll the pending request's reply channel.
    fn resolve_pending(&mut self, ctx: &Arc<ServerCtx>) -> bool {
        let Some(p) = &self.pending else {
            return false;
        };
        let resp = match p.rx.try_recv() {
            Ok(resp) => resp,
            Err(TryRecvError::Empty) => return false,
            Err(TryRecvError::Disconnected) => Response::Error {
                code: ErrorCode::Shutdown,
                message: format!("session '{}' went away mid-request", p.ctx),
            },
        };
        let p = self.pending.take().unwrap();
        // Stream-before-reply ordering: the shard thread pushes every
        // subscribed tick update *before* it sends the reply, so once
        // the reply is visible here, those updates are already queued.
        // Drain them into the write buffer first — clients buffer
        // updates that precede a reply and must see all ticks a RunFor
        // produced before its Ok.
        self.drain_outbound();
        let resp = match p.kind {
            PendingKind::Plain => resp,
            PendingKind::Metrics => match resp {
                Response::MetricsData { mut text } => {
                    // Append the server's control-plane series and the
                    // shard executor's per-shard series to the scrape.
                    text.push_str(&ctx.ops.registry.render_text());
                    text.push_str(&ctx.executor.registry().render_text());
                    Response::MetricsData { text }
                }
                other => other,
            },
            PendingKind::Close(name) => {
                ctx.registry.remove(&name);
                resp
            }
        };
        self.push_frame(&resp.encode());
        true
    }

    /// Move queued outbound frames (subscribed tick updates, redirects)
    /// into the write buffer.
    fn drain_outbound(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.out_rx.try_recv() {
                Ok(Outbound::Frame(frame)) => {
                    self.wbuf.extend_from_slice(&frame);
                    progress = true;
                }
                Ok(Outbound::Close) => {
                    self.closing = true;
                    break;
                }
                Err(_) => break,
            }
        }
        progress
    }

    /// Nonblocking write of whatever the buffer holds.
    fn flush(&mut self) -> bool {
        if self.dead {
            return false;
        }
        let mut progress = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return progress;
                }
                Ok(n) => {
                    self.wpos += n;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return progress;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            if self.closing {
                let _ = self.stream.flush();
                self.dead = true;
            }
        } else if self.wpos > 64 * 1024 {
            // Reclaim flushed prefix so a long-lived subscriber stream
            // doesn't grow the buffer without bound.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        progress
    }
}

/// Model-checked protocol tests (run with `RUSTFLAGS="--cfg tn_check"`):
/// the session-registry eviction protocol — a session's exit
/// (`closed.store(true, Release)`) racing registry readers — explored
/// across interleavings, plus a small exhaustive DFS configuration for
/// the handle-close vs. command-send race.
#[cfg(all(test, tn_check))]
mod model_tests {
    use super::*;
    use crate::session::model_handle;

    fn schedules(default: u64) -> u64 {
        std::env::var("TN_CHECK_SCHEDULES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn blank_spec() -> Arc<Vec<u8>> {
        Arc::new(Vec::new())
    }

    /// A budget-1 registry holding one session whose shard exits
    /// concurrently with a lookup. Whatever the interleaving, once the
    /// close is complete the registry must reap the entry and admit a
    /// same-name replacement — the lazy-eviction contract `ServerCtx::
    /// create_from` depends on.
    fn eviction_race() {
        let reg = Arc::new(Registry::new(1));
        let (h1, closed1, _rx1, _pin1) = model_handle("a");
        reg.insert(h1, blank_spec())
            .expect("first insert fits the budget");
        let closer = tn_check::thread::spawn(move || {
            // The session's exit protocol: flip closed, last.
            closed1.store(true, Ordering::Release);
        });
        let reader = {
            let reg = Arc::clone(&reg);
            tn_check::thread::spawn(move || {
                // A racing lookup sees the session either live or
                // already reaped — both fine; it must never deadlock
                // or observe a half-closed handle that panics.
                if let Some(h) = reg.get("a") {
                    let _ = h.is_closed();
                }
            })
        };
        closer.join().unwrap();
        reader.join().unwrap();
        assert!(
            reg.get("a").is_none(),
            "a closed session must be reaped on the next lookup"
        );
        let (h2, _c2, _rx2, _p2) = model_handle("a");
        reg.insert(h2, blank_spec())
            .expect("eviction must free the budget for a replacement");
    }

    #[test]
    fn model_registry_eviction_races_close() {
        let n = schedules(400);
        let report =
            tn_check::check_random(&tn_check::Config::default(), n, 0x5E55_10E5, eviction_race);
        report.assert_ok();
        assert_eq!(report.schedules, n);
        println!(
            "model_registry_eviction: {} clean schedules",
            report.schedules
        );
    }

    #[test]
    fn model_handle_close_vs_send_dfs() {
        // Smallest config, explored exhaustively: a command send racing
        // the shard's exit (receiver drop, then closed flip). The send
        // may win or lose, but after the close is complete every send
        // must fail cleanly with SessionGone — never panic or hang.
        let report = tn_check::check_dfs(&tn_check::Config::default(), 150_000, || {
            let (h, closed, rx, _pin) = model_handle("s");
            let sender = {
                let h = h.clone();
                tn_check::thread::spawn(move || {
                    let (reply, _keep) = mpsc::channel();
                    let _ = h.send(Cmd::Stats { reply });
                })
            };
            let closer = tn_check::thread::spawn(move || {
                drop(rx); // shard gone
                closed.store(true, Ordering::Release);
            });
            sender.join().unwrap();
            closer.join().unwrap();
            let (reply, _keep) = mpsc::channel();
            assert!(
                h.send(Cmd::Stats { reply }).is_err(),
                "sends after a completed close must report SessionGone"
            );
        });
        report.assert_ok();
        println!(
            "model_close_vs_send_dfs: {} schedules, exhausted={}",
            report.schedules, report.exhausted
        );
    }

    #[test]
    fn model_migration_pin_vs_eviction_dfs() {
        // The pin-by-state contract: a migrator pinning the session
        // races the shard's idle-eviction decision (check the pin,
        // then close). All transitions go through one mutex, so the
        // outcomes are exactly two — the pin lands first and the shard
        // observes it (stays alive; here: skips closing), or the close
        // lands first and the pin fails. Never both, never neither.
        let report = tn_check::check_dfs(&tn_check::Config::default(), 150_000, || {
            let (h, closed, _rx, pin) = model_handle("m");
            let driver = {
                let pin = Arc::clone(&pin);
                tn_check::thread::spawn(move || {
                    // Idle-timeout path: evict only if not pinned.
                    if !pin.is_migrating() {
                        pin.close();
                        closed.store(true, Ordering::Release);
                        return true; // evicted
                    }
                    false
                })
            };
            let migrator = {
                let pin = Arc::clone(&pin);
                tn_check::thread::spawn(move || pin.pin())
            };
            let evicted = driver.join().unwrap();
            let pinned = migrator.join().unwrap();
            if pinned && evicted {
                // The one legal overlap: the pin landed *between* the
                // shard's check and its close. The migrator holds the
                // pin but the session is gone — it must be able to see
                // that and abort: the handle reports closed (close
                // precedes the closed flip in the exit protocol).
                assert!(
                    h.is_closed(),
                    "evicted session must be observable as closed by a pin holder"
                );
            }
            if !evicted {
                assert!(pinned, "shard only spares the session for a pin");
            }
        });
        report.assert_ok();
        println!(
            "model_pin_vs_eviction_dfs: {} schedules, exhausted={}",
            report.schedules, report.exhausted
        );
    }

    #[test]
    fn model_migration_abort_vs_driver_exit_dfs() {
        // The abort path (unpin) racing the session's exit (close). The
        // pin cell must end CLOSED whatever the order — unpin is a
        // strict MIGRATING→RUNNING edge and can never resurrect a
        // closed cell — and a later migration attempt must fail.
        let report = tn_check::check_dfs(&tn_check::Config::default(), 150_000, || {
            let (_h, _closed, _rx, pin) = model_handle("m");
            assert!(pin.pin(), "fresh session must accept the pin");
            let aborter = {
                let pin = Arc::clone(&pin);
                tn_check::thread::spawn(move || pin.unpin())
            };
            let exiter = {
                let pin = Arc::clone(&pin);
                tn_check::thread::spawn(move || pin.close())
            };
            aborter.join().unwrap();
            exiter.join().unwrap();
            assert!(
                !pin.pin(),
                "a closed session must never accept a new migration pin"
            );
            assert!(!pin.is_migrating(), "closed cell cannot read as migrating");
        });
        report.assert_ok();
        println!(
            "model_abort_vs_exit_dfs: {} schedules, exhausted={}",
            report.schedules, report.exhausted
        );
    }

    #[test]
    fn model_registry_drain_vs_create_dfs() {
        // Drain racing a create. Because the draining flag lives inside
        // the session-map mutex, the create either fully lands before
        // the flag flips (drain then migrates it out with the rest) or
        // is rejected with Draining — there is no interleaving where a
        // session is admitted to a drained server unnoticed.
        let report = tn_check::check_dfs(&tn_check::Config::default(), 150_000, || {
            let reg = Arc::new(Registry::new(4));
            let creator = {
                let reg = Arc::clone(&reg);
                tn_check::thread::spawn(move || {
                    let (h, _c, _rx, _p) = model_handle("late");
                    reg.insert(h, Arc::new(Vec::new())).is_ok()
                })
            };
            let drainer = {
                let reg = Arc::clone(&reg);
                tn_check::thread::spawn(move || {
                    reg.set_draining();
                    // What drain migrates out: the sessions present
                    // once the flag is up.
                    reg.list().len()
                })
            };
            let admitted = creator.join().unwrap();
            let seen = drainer.join().unwrap();
            if admitted {
                // An admitted session is visible to the drain sweep or
                // to any retry (draining rejects nothing already in).
                assert_eq!(reg.count(), 1);
            } else {
                assert_eq!(seen, 0, "rejected create must leave nothing behind");
                assert_eq!(reg.count(), 0);
            }
            // Post-drain creates always bounce with Draining.
            let (h2, _c2, _rx2, _p2) = model_handle("after");
            match reg.insert(h2, Arc::new(Vec::new())) {
                Err(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Draining),
                other => panic!("drained registry admitted a create: {other:?}"),
            }
        });
        report.assert_ok();
        println!(
            "model_drain_vs_create_dfs: {} schedules, exhausted={}",
            report.schedules, report.exhausted
        );
    }
}
