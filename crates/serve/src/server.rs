//! The TCP server: acceptor, session registry, and connection threads.
//!
//! Thread model (all `std::thread`, no external runtime):
//!
//! - one **acceptor** thread polls a nonblocking listener and spawns a
//!   pair of threads per connection;
//! - each connection gets a **reader** thread (parses frames, dispatches
//!   requests, answers in order) and a **writer** thread (drains a
//!   channel of outbound frames, so subscribed tick updates never block
//!   the reader or the session driver);
//! - each session runs its own **driver** thread (see
//!   [`crate::session`]).
//!
//! Shutdown is cooperative: a shared flag flips, the acceptor stops, the
//! readers notice on their next read timeout and hang up, and every
//! session is sent `Close`. Injection never crosses a thread boundary
//! twice — connection readers push straight into the session's bounded
//! stream queue and report shed load as [`Response::Overloaded`].

use crate::protocol::{
    ErrorCode, ModelSource, Pace, ProtocolError, Request, Response, FRAME_HEADER_BYTES,
    FRAME_TRAILER_BYTES, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::session::{spawn_session, Cmd, Outbound, SessionConfig, SessionHandle};
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{Arc, Mutex};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Sender};
use std::time::Duration;
use tn_compass::{KernelSession, ParallelSim, ReferenceSim};
use tn_core::{modelfile, LintConfig, Network, NetworkBuilder};

/// Server-wide configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; use `127.0.0.1:0` to let the OS pick a port.
    pub addr: String,
    /// Real-time tick period for [`Pace::RealTime`] sessions (the
    /// paper's tick is 1 ms).
    pub tick_period: Duration,
    /// Force every session to [`Pace::MaxSpeed`] regardless of what its
    /// creator asked for (the `--max-speed` server flag).
    pub max_speed: bool,
    /// Idle sessions are evicted after this long without work.
    pub idle_timeout: Duration,
    /// Per-session bound on queued injected events.
    pub input_capacity: usize,
    /// Per-session high-water mark on undrained output spikes; beyond it
    /// the oldest are evicted and counted.
    pub output_capacity: usize,
    /// Hard cap on concurrently live sessions.
    pub max_sessions: usize,
    /// Worker threads for [`crate::protocol::Engine::Parallel`] sessions.
    pub parallel_threads: usize,
    /// Default shard count for [`Request::CreateShardedSession`] requests
    /// that ask for the server default (`shards == 0`).
    pub shards: usize,
    /// Path to the `tn-shard-worker` binary; when set, sharded sessions
    /// place each shard in its own OS process, otherwise shards run as
    /// in-process workers (still exchanging spikes over loopback TCP).
    pub shard_worker_bin: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4160".to_string(),
            tick_period: Duration::from_millis(1),
            max_speed: false,
            idle_timeout: Duration::from_secs(120),
            input_capacity: 1 << 16,
            output_capacity: 1 << 20,
            max_sessions: 32,
            parallel_threads: 2,
            shards: 2,
            shard_worker_bin: None,
        }
    }
}

/// Named live sessions. Closed/evicted entries are reaped lazily on
/// every lookup and create.
struct Registry {
    sessions: Mutex<HashMap<String, SessionHandle>>,
    max_sessions: usize,
}

impl Registry {
    fn new(max_sessions: usize) -> Self {
        Registry {
            sessions: Mutex::new(HashMap::new()),
            max_sessions: max_sessions.max(1),
        }
    }

    fn get(&self, name: &str) -> Option<SessionHandle> {
        let mut map = self.sessions.lock().unwrap();
        map.retain(|_, h| !h.is_closed());
        map.get(name).cloned()
    }

    fn insert(&self, handle: SessionHandle) -> Result<(), Response> {
        let mut map = self.sessions.lock().unwrap();
        map.retain(|_, h| !h.is_closed());
        if map.contains_key(&handle.name) {
            return Err(Response::Error {
                code: ErrorCode::SessionExists,
                message: format!("session '{}' already exists", handle.name),
            });
        }
        if map.len() >= self.max_sessions {
            return Err(Response::Error {
                code: ErrorCode::TooManySessions,
                message: format!("session budget ({}) exhausted", self.max_sessions),
            });
        }
        map.insert(handle.name.clone(), handle);
        Ok(())
    }

    fn remove(&self, name: &str) -> Option<SessionHandle> {
        self.sessions.lock().unwrap().remove(name)
    }

    fn drain(&self) -> Vec<SessionHandle> {
        self.sessions
            .lock()
            .unwrap()
            .drain()
            .map(|(_, h)| h)
            .collect()
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
}

/// Controls a server started with [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind the listen socket (sessions start only when clients ask).
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            registry: Arc::new(Registry::new(cfg.max_sessions)),
            // sync: store(Release) in shutdown()/Drop pairs with
            // load(Acquire) in the acceptor loop and every FrameReader,
            // ordering all pre-shutdown writes before the readers exit.
            shutdown: Arc::new(AtomicBool::new(false)),
            cfg,
        })
    }

    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Bind and run the accept loop on a background thread; returns a
    /// handle for shutdown. This is the embedding/test entry point.
    pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(cfg)?;
        let addr = server.local_addr()?;
        let shutdown = Arc::clone(&server.shutdown);
        let registry = Arc::clone(&server.registry);
        let acceptor = std::thread::Builder::new()
            .name("tn-serve-acceptor".to_string())
            .spawn(move || server.run())
            .expect("spawn acceptor");
        Ok(ServerHandle {
            addr,
            shutdown,
            registry,
            acceptor: Some(acceptor),
        })
    }

    /// Accept connections until shutdown. Blocks the calling thread;
    /// this is the CLI entry point.
    pub fn run(self) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let conn = Connection {
                        cfg: self.cfg.clone(),
                        registry: Arc::clone(&self.registry),
                        shutdown: Arc::clone(&self.shutdown),
                    };
                    // sync: deliberately detached — a connection thread
                    // exits when its peer hangs up or the shutdown flag
                    // flips (FrameReader checks it between reads), and
                    // it joins its own writer before returning.
                    let _ = std::thread::Builder::new()
                        .name("tn-serve-conn".to_string())
                        .spawn(move || conn.serve(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        // Close every session so driver threads exit promptly.
        for handle in self.registry.drain() {
            let (tx, rx) = mpsc::channel();
            if handle.send(Cmd::Close { reply: tx }).is_ok() {
                let _ = rx.recv_timeout(Duration::from_secs(1));
            }
        }
    }
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown and wait for the acceptor (and thus session
    /// teardown) to finish.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Live session count (for tests and the CLI status line).
    pub fn session_count(&self) -> usize {
        let mut map = self.registry.sessions.lock().unwrap();
        map.retain(|_, h| !h.is_closed());
        map.len()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// How one read attempt ended.
enum ReadOutcome {
    Frame(u8, Vec<u8>),
    /// A malformed header whose frame boundary is still known: the
    /// payload was skipped, answer and carry on.
    Recoverable(ProtocolError),
    /// Peer hung up or the stream broke or shutdown was signalled.
    Hangup,
    /// Malformed beyond resynchronization: answer and close.
    Fatal(ProtocolError),
}

struct Connection {
    cfg: ServerConfig,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
}

impl Connection {
    fn serve(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let (out_tx, out_rx) = mpsc::channel::<Outbound>();
        let writer = std::thread::Builder::new()
            .name("tn-serve-writer".to_string())
            .spawn(move || writer_loop(write_half, out_rx))
            .expect("spawn writer");

        let mut reader = FrameReader::new(stream, Arc::clone(&self.shutdown));
        loop {
            match reader.next_frame() {
                ReadOutcome::Frame(opcode, payload) => {
                    let resp = match Request::decode(opcode, &payload) {
                        Ok(req) => self.dispatch(req, &out_tx),
                        Err(e) => Response::Error {
                            code: ErrorCode::Protocol,
                            message: e.message,
                        },
                    };
                    if out_tx.send(Outbound::Frame(resp.encode())).is_err() {
                        break;
                    }
                }
                ReadOutcome::Recoverable(e) => {
                    let resp = Response::Error {
                        code: ErrorCode::Protocol,
                        message: e.message,
                    };
                    if out_tx.send(Outbound::Frame(resp.encode())).is_err() {
                        break;
                    }
                }
                ReadOutcome::Fatal(e) => {
                    let resp = Response::Error {
                        code: ErrorCode::Protocol,
                        message: e.message,
                    };
                    let _ = out_tx.send(Outbound::Frame(resp.encode()));
                    break;
                }
                ReadOutcome::Hangup => break,
            }
        }
        let _ = out_tx.send(Outbound::Close);
        let _ = writer.join();
    }

    fn dispatch(&self, req: Request, out_tx: &Sender<Outbound>) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::CreateSession {
                name,
                engine,
                pace,
                source,
                fault_plan,
            } => self.create_session(name, engine, pace, source, fault_plan),
            Request::CreateShardedSession {
                name,
                pace,
                source,
                fault_plan,
                shards,
            } => self.create_sharded_session(name, pace, source, fault_plan, shards),
            Request::InjectSpikes { session, events } => {
                let handle = match self.lookup(&session) {
                    Ok(h) => h,
                    Err(resp) => return resp,
                };
                match handle.injector().offer(&events) {
                    Ok(outcome) if outcome.dropped > 0 => Response::Overloaded {
                        accepted: outcome.accepted,
                        dropped: outcome.dropped,
                        total_dropped: handle.injector().dropped(),
                    },
                    Ok(outcome) => Response::InjectAck {
                        accepted: outcome.accepted,
                    },
                    Err(e) => Response::Error {
                        code: ErrorCode::InvalidInjection,
                        message: e.to_string(),
                    },
                }
            }
            Request::Subscribe { session } => self.session_cmd(&session, |reply| Cmd::Subscribe {
                sink: out_tx.clone(),
                reply,
            }),
            Request::RunFor { session, ticks } => {
                self.session_cmd(&session, |reply| Cmd::RunFor { ticks, reply })
            }
            Request::Snapshot { session } => {
                self.session_cmd(&session, |reply| Cmd::Snapshot { reply })
            }
            Request::Restore { session, bytes } => {
                self.session_cmd(&session, |reply| Cmd::Restore { bytes, reply })
            }
            Request::Stats { session } => self.session_cmd(&session, |reply| Cmd::Stats { reply }),
            Request::GetMetrics { session } => {
                self.session_cmd(&session, |reply| Cmd::GetMetrics { reply })
            }
            Request::CloseSession { session } => {
                let resp = self.session_cmd(&session, |reply| Cmd::Close { reply });
                self.registry.remove(&session);
                resp
            }
        }
    }

    fn lookup(&self, session: &str) -> Result<SessionHandle, Response> {
        self.registry.get(session).ok_or_else(|| Response::Error {
            code: ErrorCode::UnknownSession,
            message: format!("no session named '{session}'"),
        })
    }

    /// Round-trip a command to a session driver and relay its reply.
    fn session_cmd(&self, session: &str, mk: impl FnOnce(Sender<Response>) -> Cmd) -> Response {
        let handle = match self.lookup(session) {
            Ok(h) => h,
            Err(resp) => return resp,
        };
        let (tx, rx) = mpsc::channel();
        if handle.send(mk(tx)).is_err() {
            return Response::Error {
                code: ErrorCode::UnknownSession,
                message: format!("session '{session}' closed"),
            };
        }
        match rx.recv() {
            Ok(resp) => resp,
            Err(_) => Response::Error {
                code: ErrorCode::Shutdown,
                message: format!("session '{session}' went away mid-request"),
            },
        }
    }

    fn create_session(
        &self,
        name: String,
        engine: crate::protocol::Engine,
        pace: Pace,
        source: ModelSource,
        fault_plan: String,
    ) -> Response {
        let net = match self.build_network(source) {
            Ok(net) => net,
            Err(message) => {
                return Response::Error {
                    code: ErrorCode::ModelRejected,
                    message,
                }
            }
        };
        let plan = match Self::parse_fault_plan(&fault_plan, &net) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let mut sim: Box<dyn KernelSession> = match engine {
            crate::protocol::Engine::Chip => Box::new(tn_chip::TrueNorthSim::new(net)),
            crate::protocol::Engine::Reference => Box::new(ReferenceSim::new(net)),
            crate::protocol::Engine::Parallel => {
                Box::new(ParallelSim::new(net, self.cfg.parallel_threads))
            }
        };
        if let Some(plan) = &plan {
            sim.attach_faults(plan);
        }
        self.register_session(name, pace, sim)
    }

    /// Create a session partitioned across `tn-shard` workers — the
    /// gateway half of the distributed sharding layer: it places the
    /// worker processes and then serves the session like any other.
    fn create_sharded_session(
        &self,
        name: String,
        pace: Pace,
        source: ModelSource,
        fault_plan: String,
        shards: u16,
    ) -> Response {
        let net = match self.build_network(source) {
            Ok(net) => net,
            Err(message) => {
                return Response::Error {
                    code: ErrorCode::ModelRejected,
                    message,
                }
            }
        };
        let plan = match Self::parse_fault_plan(&fault_plan, &net) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let shards = if shards == 0 {
            self.cfg.shards
        } else {
            shards as usize
        };
        let spec = tn_shard::ShardSpec {
            shards,
            spawn: match &self.cfg.shard_worker_bin {
                Some(bin) => tn_shard::SpawnMode::Process {
                    worker_bin: bin.clone(),
                },
                None => tn_shard::SpawnMode::InProcess,
            },
            ..tn_shard::ShardSpec::default()
        };
        let mut sim: Box<dyn KernelSession> = match tn_shard::ShardedSession::launch(net, &spec) {
            Ok(s) => Box::new(s),
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("failed to place shard workers: {e}"),
                }
            }
        };
        if let Some(plan) = &plan {
            sim.attach_faults(plan);
        }
        self.register_session(name, pace, sim)
    }

    /// Parse and lint a fault plan against this network's grid before
    /// the session exists — a bad plan is rejected, never run.
    fn parse_fault_plan(
        fault_plan: &str,
        net: &Network,
    ) -> Result<Option<tn_core::FaultPlan>, Response> {
        if fault_plan.is_empty() {
            return Ok(None);
        }
        let plan = match tn_core::FaultPlan::parse(fault_plan) {
            Ok(p) => p,
            Err(e) => {
                return Err(Response::Error {
                    code: ErrorCode::ModelRejected,
                    message: format!("fault plan rejected: {e}"),
                })
            }
        };
        if let Err(msg) = tn_core::fault::check_plan(&plan, net.width(), net.height()) {
            return Err(Response::Error {
                code: ErrorCode::ModelRejected,
                message: format!("fault plan rejected: {msg}"),
            });
        }
        Ok(Some(plan))
    }

    /// Wrap a configured expression in a session driver and register it.
    fn register_session(&self, name: String, pace: Pace, sim: Box<dyn KernelSession>) -> Response {
        let session_cfg = SessionConfig {
            pace: if self.cfg.max_speed {
                Pace::MaxSpeed
            } else {
                pace
            },
            tick_period: self.cfg.tick_period,
            idle_timeout: self.cfg.idle_timeout,
            input_capacity: self.cfg.input_capacity,
            output_capacity: self.cfg.output_capacity,
            ..SessionConfig::default()
        };
        let handle = spawn_session(name.clone(), sim, session_cfg);
        match self.registry.insert(handle.clone()) {
            Ok(()) => Response::Created { session: name },
            Err(resp) => {
                // Lost the race (or over budget): tear the driver down.
                let (tx, _rx) = mpsc::channel();
                let _ = handle.send(Cmd::Close { reply: tx });
                resp
            }
        }
    }

    /// Build (and statically verify) the session's network.
    fn build_network(&self, source: ModelSource) -> Result<Network, String> {
        match source {
            ModelSource::Blank {
                width,
                height,
                seed,
            } => NetworkBuilder::new(width, height, seed)
                .build_verified(&LintConfig::default())
                .map(|(net, _)| net)
                .map_err(|e| e.to_string()),
            ModelSource::Model(text) => modelfile::load_verified(&text, &LintConfig::default())
                .map(|(net, _)| net)
                .map_err(|e| e.to_string()),
        }
    }
}

/// Incremental frame reader over a blocking socket with a short read
/// timeout, so shutdown is noticed between partial reads.
struct FrameReader {
    stream: TcpStream,
    shutdown: Arc<AtomicBool>,
}

impl FrameReader {
    fn new(stream: TcpStream, shutdown: Arc<AtomicBool>) -> Self {
        FrameReader { stream, shutdown }
    }

    /// Read exactly `buf.len()` bytes, tolerating read timeouts.
    /// Returns `false` on EOF/error/shutdown.
    fn read_full(&mut self, buf: &mut [u8]) -> bool {
        let mut at = 0;
        while at < buf.len() {
            if self.shutdown.load(Ordering::Acquire) {
                return false;
            }
            match self.stream.read(&mut buf[at..]) {
                Ok(0) => return false,
                Ok(n) => at += n,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    continue;
                }
                Err(_) => return false,
            }
        }
        true
    }

    fn next_frame(&mut self) -> ReadOutcome {
        let mut hdr = [0u8; FRAME_HEADER_BYTES];
        if !self.read_full(&mut hdr) {
            return ReadOutcome::Hangup;
        }
        // Decode the length first: as long as it is sane, the frame
        // boundary (payload + CRC trailer) is known and any other
        // malformation is recoverable.
        let h = tn_core::wire::framed::read_header(&hdr);
        if h.len > MAX_FRAME_BYTES {
            return ReadOutcome::Fatal(ProtocolError::new(format!(
                "frame length {} exceeds the {MAX_FRAME_BYTES}-byte cap",
                h.len
            )));
        }
        let mut body = vec![0u8; h.len as usize + FRAME_TRAILER_BYTES];
        if !self.read_full(&mut body) {
            return ReadOutcome::Hangup;
        }
        if h.version != PROTOCOL_VERSION {
            return ReadOutcome::Recoverable(ProtocolError::new(format!(
                "unsupported protocol version {} (this build speaks {PROTOCOL_VERSION})",
                h.version
            )));
        }
        match tn_core::wire::framed::verify_body(&h, &body) {
            Ok(payload) => ReadOutcome::Frame(h.opcode, payload.to_vec()),
            Err(e) => ReadOutcome::Recoverable(e.into()),
        }
    }
}

fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Outbound>) {
    while let Ok(out) = rx.recv() {
        match out {
            Outbound::Frame(frame) => {
                if stream.write_all(&frame).is_err() {
                    break;
                }
            }
            Outbound::Close => break,
        }
    }
    let _ = stream.flush();
}

/// Model-checked protocol tests (run with `RUSTFLAGS="--cfg tn_check"`):
/// the session-registry eviction protocol — a driver's exit
/// (`closed.store(true, Release)`) racing registry readers — explored
/// across interleavings, plus a small exhaustive DFS configuration for
/// the handle-close vs. command-send race.
#[cfg(all(test, tn_check))]
mod model_tests {
    use super::*;
    use crate::session::model_handle;

    fn schedules(default: u64) -> u64 {
        std::env::var("TN_CHECK_SCHEDULES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A budget-1 registry holding one session whose "driver" exits
    /// concurrently with a lookup. Whatever the interleaving, once the
    /// close is complete the registry must reap the entry and admit a
    /// same-name replacement — the lazy-eviction contract `Connection::
    /// create_session` depends on.
    fn eviction_race() {
        let reg = Arc::new(Registry::new(1));
        let (h1, closed1, _rx1) = model_handle("a");
        reg.insert(h1).expect("first insert fits the budget");
        let closer = tn_check::thread::spawn(move || {
            // The driver's exit protocol: flip closed, last.
            closed1.store(true, Ordering::Release);
        });
        let reader = {
            let reg = Arc::clone(&reg);
            tn_check::thread::spawn(move || {
                // A racing lookup sees the session either live or
                // already reaped — both fine; it must never deadlock
                // or observe a half-closed handle that panics.
                if let Some(h) = reg.get("a") {
                    let _ = h.is_closed();
                }
            })
        };
        closer.join().unwrap();
        reader.join().unwrap();
        assert!(
            reg.get("a").is_none(),
            "a closed session must be reaped on the next lookup"
        );
        let (h2, _c2, _rx2) = model_handle("a");
        reg.insert(h2)
            .expect("eviction must free the budget for a replacement");
    }

    #[test]
    fn model_registry_eviction_races_close() {
        let n = schedules(400);
        let report =
            tn_check::check_random(&tn_check::Config::default(), n, 0x5E55_10E5, eviction_race);
        report.assert_ok();
        assert_eq!(report.schedules, n);
        println!(
            "model_registry_eviction: {} clean schedules",
            report.schedules
        );
    }

    #[test]
    fn model_handle_close_vs_send_dfs() {
        // Smallest config, explored exhaustively: a command send racing
        // the driver's exit (receiver drop, then closed flip). The send
        // may win or lose, but after the close is complete every send
        // must fail cleanly with SessionGone — never panic or hang.
        let report = tn_check::check_dfs(&tn_check::Config::default(), 150_000, || {
            let (h, closed, rx) = model_handle("s");
            let sender = {
                let h = h.clone();
                tn_check::thread::spawn(move || {
                    let (reply, _keep) = mpsc::channel();
                    let _ = h.send(Cmd::Stats { reply });
                })
            };
            let closer = tn_check::thread::spawn(move || {
                drop(rx); // driver gone
                closed.store(true, Ordering::Release);
            });
            sender.join().unwrap();
            closer.join().unwrap();
            let (reply, _keep) = mpsc::channel();
            assert!(
                h.send(Cmd::Stats { reply }).is_err(),
                "sends after a completed close must report SessionGone"
            );
        });
        report.assert_ok();
        println!(
            "model_close_vs_send_dfs: {} schedules, exhausted={}",
            report.schedules, report.exhausted
        );
    }
}
