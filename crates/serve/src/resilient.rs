//! A self-healing client: reconnect with backoff, resume from snapshot.
//!
//! The paper's platform is meant to run for days streaming spikes; a
//! dropped TCP connection must not cost the session. [`ReconnectingClient`]
//! wraps [`Client`] with:
//!
//! - **reconnection** with exponential backoff and deterministic jitter
//!   (seeded, so tests replay identically — see [`BackoffPolicy`]);
//! - **session resurrection**: the client remembers everything needed to
//!   recreate its session ([`SessionSpec`]) plus the last snapshot it
//!   took, so if the server lost the session (restart, eviction) it is
//!   recreated and restored to the last checkpoint;
//! - **resync**: [`ReconnectingClient::run_to`] drives the session to an
//!   absolute tick, querying the server for where the session actually
//!   is first — after a mid-`run_for` disconnect the client cannot know
//!   how many ticks ran, and an absolute target makes the retry
//!   idempotent.
//!
//! Because every kernel expression is deterministic, a session that is
//! killed, resurrected from its last snapshot, and replayed to tick `T`
//! lands on the *same state digest* as an uninterrupted run — the
//! integration tests assert exactly that, spike for spike.

use crate::client::{Client, ClientError};
use crate::protocol::{Engine, ErrorCode, ModelSource, Pace, Request, Response, SessionStats};
use std::time::{Duration, Instant};

/// Redirect chains longer than this abort the request — two servers
/// pointing at each other would otherwise bounce a client forever.
const MAX_REDIRECT_FOLLOWS: u32 = 8;

/// Resurrection attempts per request before giving up — a server that
/// keeps forgetting the session faster than we can recreate it is not
/// going to converge.
const MAX_RESURRECTIONS: u32 = 3;

/// Everything needed to recreate a session from scratch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionSpec {
    pub name: String,
    pub engine: Engine,
    pub pace: Pace,
    pub source: ModelSource,
    /// `tnfault 1` plan text; empty = no faults.
    pub fault_plan: String,
}

/// Exponential backoff with deterministic jitter.
///
/// Delay for attempt `k` (0-based) is `base × 2^k`, capped at `max`,
/// plus a jitter of 0–25% of the delay derived from (seed, attempt) via
/// a splitmix64 hash — deterministic for tests, decorrelated between
/// clients with different seeds.
#[derive(Clone, Debug)]
pub struct BackoffPolicy {
    /// First retry delay.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub max: Duration,
    /// Give up after this many consecutive failed attempts.
    pub max_retries: u32,
    /// Wall-clock budget for one whole retry sequence: once this much
    /// time has elapsed since the first attempt, no further retry is
    /// scheduled even with attempts left in `max_retries`. `None`
    /// bounds by attempt count alone. Lets callers with a hard deadline
    /// (a draining server, a paced experiment) cap worst-case stall at
    /// a duration instead of a delay sum.
    pub total_deadline: Option<Duration>,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
            max_retries: 8,
            total_deadline: None,
            seed: 0,
        }
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BackoffPolicy {
    /// The delay before retry attempt `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.max);
        // 0–25% deterministic jitter.
        let jitter_num = mix(self.seed ^ (attempt as u64)) % 256;
        capped + capped.mul_f64(jitter_num as f64 / 1024.0)
    }

    /// Whether waiting `next_delay` more would overrun the total
    /// deadline for a sequence that started at `start`.
    pub fn out_of_time(&self, start: Instant, next_delay: Duration) -> bool {
        self.total_deadline
            .is_some_and(|budget| start.elapsed() + next_delay >= budget)
    }

    /// Wall-clock budget left at `now` for a sequence started at
    /// `start`: `None` = unbounded, `Some(ZERO)` = exhausted. Saturates
    /// at zero — the remaining budget is never negative, so no caller
    /// can turn an overrun into an extra full-length delay.
    pub fn remaining(&self, start: Instant, now: Instant) -> Option<Duration> {
        self.total_deadline
            .map(|budget| budget.saturating_sub(now.saturating_duration_since(start)))
    }
}

/// The budget arithmetic of one retry sequence, factored out of the
/// socket loop so it is driven by explicit `Instant`s — tests pin it
/// with [`crate::scheduler::VirtualClock`] instead of racing real time.
///
/// This is where the retry-budget underflow was fixed. The old loop
/// tracked the deadline per *connect burst* while the request tracked
/// it per *request*, so a reconnect inside a half-spent request started
/// from a fresh budget: the request's true remaining time could be
/// negative while the dial loop happily slept another full backoff
/// delay. A sequence now begins at the request's own start instant,
/// every sleep is clamped to the (saturating, never negative) remaining
/// budget, and an exhausted budget refuses even the free first dial.
#[derive(Debug)]
pub struct RetrySequence<'p> {
    policy: &'p BackoffPolicy,
    start: Instant,
    attempts: u32,
}

impl<'p> RetrySequence<'p> {
    /// Begin a sequence whose budget runs from `start` — which may
    /// predate this call: a reconnect inside a half-spent request
    /// threads the request's start so only the leftover budget is
    /// spendable here.
    pub fn begin_at(policy: &'p BackoffPolicy, start: Instant) -> Self {
        RetrySequence {
            policy,
            start,
            attempts: 0,
        }
    }

    /// The sleep to take before the next dial, or `None` when the
    /// sequence is out of attempts or out of wall-clock budget. The
    /// first attempt dials immediately (zero sleep) but is still
    /// refused on a spent budget; later sleeps are the policy's backoff
    /// delay clamped to the remaining budget.
    pub fn next_sleep(&mut self, now: Instant) -> Option<Duration> {
        if self.attempts > self.policy.max_retries {
            return None;
        }
        let nominal = if self.attempts == 0 {
            Duration::ZERO
        } else {
            self.policy.delay(self.attempts - 1)
        };
        self.attempts += 1;
        match self.policy.remaining(self.start, now) {
            None => Some(nominal),
            Some(rem) if rem.is_zero() => None,
            Some(rem) => Some(nominal.min(rem)),
        }
    }
}

/// Transport failed `max_retries + 1` times in a row.
#[derive(Debug)]
pub struct GaveUp {
    pub attempts: u32,
    pub last: ClientError,
}

impl std::fmt::Display for GaveUp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gave up after {} attempts; last error: {}",
            self.attempts, self.last
        )
    }
}

impl std::error::Error for GaveUp {}

/// A client that owns one session and survives connection loss.
pub struct ReconnectingClient {
    addr: String,
    spec: SessionSpec,
    policy: BackoffPolicy,
    conn: Option<Client>,
    /// Last snapshot taken through [`Self::snapshot`] — the resurrection
    /// point if the server loses the session entirely.
    last_snapshot: Option<Vec<u8>>,
    /// Total reconnect attempts that succeeded (telemetry for tests).
    reconnects: u64,
    /// Whether any connection has ever been established — everything
    /// after the first counts as a reconnect.
    ever_connected: bool,
}

impl ReconnectingClient {
    /// Connect and create the session. Fails fast on a rejected spec
    /// (bad model, bad fault plan) — those never succeed on retry.
    pub fn create(
        addr: impl Into<String>,
        spec: SessionSpec,
        policy: BackoffPolicy,
    ) -> Result<Self, ClientError> {
        let mut me = ReconnectingClient {
            addr: addr.into(),
            spec,
            policy,
            conn: None,
            last_snapshot: None,
            reconnects: 0,
            ever_connected: false,
        };
        let resp = me.with_retry(|c, spec| {
            c.request(&Request::CreateSession {
                name: spec.name.clone(),
                engine: spec.engine,
                pace: spec.pace,
                source: spec.source.clone(),
                fault_plan: spec.fault_plan.clone(),
            })
        })?;
        match resp {
            Response::Created { .. } => Ok(me),
            Response::Error { code, message } => {
                Err(ClientError::Protocol(crate::protocol::ProtocolError::new(
                    format!("create rejected ({code:?}): {message}"),
                )))
            }
            other => Err(ClientError::Protocol(crate::protocol::ProtocolError::new(
                format!("unexpected create reply: {other:?}"),
            ))),
        }
    }

    /// Point subsequent reconnects at a different server address — the
    /// failover path when the original server is gone for good. The
    /// current connection (if any) is dropped so the next request
    /// reconnects, recreates the session there, and restores the last
    /// snapshot.
    pub fn set_addr(&mut self, addr: impl Into<String>) {
        self.addr = addr.into();
        self.conn = None;
    }

    /// Successful reconnect count so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The last snapshot taken through this client, if any.
    pub fn last_snapshot(&self) -> Option<&[u8]> {
        self.last_snapshot.as_deref()
    }

    /// Dial with backoff. `seq_start` anchors the total-deadline budget
    /// and is the *request's* start, not this call's: a reconnect inside
    /// a half-spent request may spend only what the request has left.
    fn connect(&mut self, seq_start: Instant) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let policy = self.policy.clone();
            let mut seq = RetrySequence::begin_at(&policy, seq_start);
            let mut last: Option<ClientError> = None;
            while let Some(sleep) = seq.next_sleep(Instant::now()) {
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
                match Client::connect(&self.addr) {
                    Ok(c) => {
                        if self.ever_connected {
                            self.reconnects += 1;
                        }
                        self.ever_connected = true;
                        self.conn = Some(c);
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            if self.conn.is_none() {
                return Err(last.unwrap_or_else(|| {
                    ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "retry budget exhausted before any connect attempt",
                    ))
                }));
            }
        }
        Ok(self.conn.as_mut().unwrap())
    }

    /// Run `op` against a live connection, transparently reconnecting on
    /// transport errors (protocol-level errors are returned, not
    /// retried). If the server answers `UnknownSession`, the session is
    /// recreated and restored from the last snapshot, then `op` retries
    /// (at most [`MAX_RESURRECTIONS`] times per request). If it answers
    /// [`Response::Redirect`] — the session was live-migrated — the
    /// client follows: it repoints at the new address and retries there,
    /// no resurrection and no state loss, bounded by
    /// [`MAX_REDIRECT_FOLLOWS`].
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client, &SessionSpec) -> Result<T, ClientError>,
    ) -> Result<T, ClientError>
    where
        T: ReplyLike,
    {
        let start = Instant::now();
        let mut transport_failures = 0u32;
        let mut resurrections = 0u32;
        let mut redirects = 0u32;
        loop {
            let spec = self.spec.clone();
            let c = self.connect(start)?;
            match op(c, &spec) {
                Ok(reply) => {
                    if let Some(addr) = reply.redirect_addr() {
                        redirects += 1;
                        if redirects > MAX_REDIRECT_FOLLOWS {
                            return Err(ClientError::Protocol(
                                crate::protocol::ProtocolError::new(format!(
                                    "redirect chain exceeded {MAX_REDIRECT_FOLLOWS} hops"
                                )),
                            ));
                        }
                        self.set_addr(addr);
                        continue;
                    }
                    if reply.is_unknown_session() {
                        resurrections += 1;
                        if resurrections > MAX_RESURRECTIONS {
                            return Err(ClientError::Protocol(
                                crate::protocol::ProtocolError::new(format!(
                                    "session vanished {MAX_RESURRECTIONS} times in one request"
                                )),
                            ));
                        }
                        self.resurrect(start)?;
                        continue;
                    }
                    return Ok(reply);
                }
                Err(ClientError::Io(e)) => {
                    self.conn = None; // stale socket; reconnect
                    transport_failures += 1;
                    if transport_failures > self.policy.max_retries
                        || self.policy.out_of_time(start, Duration::ZERO)
                    {
                        return Err(ClientError::Io(e));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Recreate the session from its spec and restore the last snapshot
    /// (if one was ever taken). Called when the server reports
    /// `UnknownSession` — the server restarted or evicted us.
    fn resurrect(&mut self, seq_start: Instant) -> Result<(), ClientError> {
        let spec = self.spec.clone();
        let snap = self.last_snapshot.clone();
        let c = self.connect(seq_start)?;
        let resp = c.request(&Request::CreateSession {
            name: spec.name.clone(),
            engine: spec.engine,
            pace: spec.pace,
            source: spec.source.clone(),
            fault_plan: spec.fault_plan.clone(),
        })?;
        match resp {
            Response::Created { .. }
            | Response::Error {
                code: ErrorCode::SessionExists,
                ..
            } => {}
            Response::Error { code, message } => {
                return Err(ClientError::Protocol(crate::protocol::ProtocolError::new(
                    format!("resurrect rejected ({code:?}): {message}"),
                )))
            }
            other => {
                return Err(ClientError::Protocol(crate::protocol::ProtocolError::new(
                    format!("unexpected resurrect reply: {other:?}"),
                )))
            }
        }
        if let Some(bytes) = snap {
            let resp = c.request(&Request::Restore {
                session: spec.name.clone(),
                bytes,
            })?;
            if let Response::Error { code, message } = resp {
                return Err(ClientError::Protocol(crate::protocol::ProtocolError::new(
                    format!("restore after resurrect failed ({code:?}): {message}"),
                )));
            }
        }
        Ok(())
    }

    /// Current session stats (reconnecting as needed).
    pub fn stats(&mut self) -> Result<SessionStats, ClientError> {
        let resp = self.with_retry(|c, spec| c.stats(&spec.name))?;
        match resp {
            Response::StatsData(s) => Ok(s),
            other => Err(ClientError::Protocol(crate::protocol::ProtocolError::new(
                format!("unexpected stats reply: {other:?}"),
            ))),
        }
    }

    /// Inject events (reconnecting as needed). NOT idempotent across a
    /// mid-request disconnect — callers streaming through faults should
    /// snapshot at known-good points and treat the segment since the
    /// last snapshot as lost, exactly like the tick-for-tick hardware.
    pub fn inject(
        &mut self,
        events: &[tn_core::wire::InputEvent],
    ) -> Result<Response, ClientError> {
        self.with_retry(|c, spec| c.inject(&spec.name, events))
    }

    /// Drive the session to absolute tick `target` (idempotent: safe to
    /// retry after any disconnect). Returns the stats at arrival.
    pub fn run_to(&mut self, target: u64) -> Result<SessionStats, ClientError> {
        loop {
            let now = self.stats()?;
            if now.tick >= target {
                return Ok(now);
            }
            let remaining = target - now.tick;
            let resp = self.with_retry(|c, spec| c.run_for(&spec.name, remaining));
            match resp {
                Ok(Response::Ok) => {}
                Ok(Response::Error { code, message }) => {
                    return Err(ClientError::Protocol(crate::protocol::ProtocolError::new(
                        format!("run_for failed ({code:?}): {message}"),
                    )))
                }
                Ok(_) | Err(_) => {
                    // Transport died mid-run or odd reply: loop re-reads
                    // the authoritative tick and runs only the remainder.
                }
            }
        }
    }

    /// Take and remember a snapshot — the resurrection point.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, ClientError> {
        let resp = self.with_retry(|c, spec| c.snapshot(&spec.name))?;
        match resp {
            Response::SnapshotData { bytes } => {
                self.last_snapshot = Some(bytes.clone());
                Ok(bytes)
            }
            other => Err(ClientError::Protocol(crate::protocol::ProtocolError::new(
                format!("unexpected snapshot reply: {other:?}"),
            ))),
        }
    }

    /// Close the session and drop the connection.
    pub fn close(mut self) -> Result<(), ClientError> {
        let spec = self.spec.clone();
        if let Some(c) = self.conn.as_mut() {
            let _ = c.close_session(&spec.name);
        }
        Ok(())
    }
}

/// Lets [`ReconnectingClient::with_retry`] spot "the server forgot my
/// session" and "the session moved" replies generically.
trait ReplyLike {
    fn is_unknown_session(&self) -> bool;
    /// `Some(addr)` when the reply says the session now lives at `addr`.
    fn redirect_addr(&self) -> Option<String>;
}

impl ReplyLike for Response {
    fn is_unknown_session(&self) -> bool {
        matches!(
            self,
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        )
    }

    fn redirect_addr(&self) -> Option<String> {
        match self {
            Response::Redirect { addr, .. } => Some(addr.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Clock, VirtualClock};

    #[test]
    fn retry_budget_clamps_to_the_deadline_and_never_goes_negative() {
        // VirtualClock drives the whole sequence: every assertion below
        // is exact, no real sleeping, no racing the host scheduler.
        let clock = VirtualClock::new();
        let p = BackoffPolicy {
            base: Duration::from_millis(100),
            max: Duration::from_secs(2),
            max_retries: 10,
            total_deadline: Some(Duration::from_millis(250)),
            seed: 7,
        };
        let start = clock.now();
        let mut seq = RetrySequence::begin_at(&p, start);

        // Attempt 0 dials immediately.
        assert_eq!(seq.next_sleep(clock.now()), Some(Duration::ZERO));
        clock.advance(Duration::from_millis(20)); // the dial itself

        // Attempt 1's nominal delay fits the budget: taken in full.
        let s1 = seq.next_sleep(clock.now()).expect("budget left");
        assert_eq!(s1, p.delay(0));
        clock.sleep(s1);

        // Attempt 2's nominal delay (~200 ms + jitter) overruns what is
        // left. The old loop would have slept it whole — the remaining
        // budget went negative and the overrun surfaced as one extra
        // full-length delay. Now the sleep clamps to exactly the
        // remainder.
        let rem = p.remaining(start, clock.now()).expect("bounded policy");
        assert!(!rem.is_zero() && rem < p.delay(1), "mid-budget: {rem:?}");
        let s2 = seq.next_sleep(clock.now()).expect("clamped attempt");
        assert_eq!(s2, rem, "sleep is the leftover budget, not the delay");
        clock.sleep(s2);

        // The budget is now exactly zero — saturated, not negative —
        // and the sequence refuses further attempts.
        assert_eq!(p.remaining(start, clock.now()), Some(Duration::ZERO));
        assert_eq!(seq.next_sleep(clock.now()), None);
    }

    #[test]
    fn reconnect_mid_request_sees_only_the_leftover_budget() {
        let clock = VirtualClock::new();
        let p = BackoffPolicy {
            total_deadline: Some(Duration::from_millis(100)),
            ..BackoffPolicy::default()
        };
        // The request has already burnt its whole budget by the time
        // the transport dies; the reconnect sequence threads the
        // request's start, so even the free first dial is refused.
        let start = clock.now();
        clock.advance(Duration::from_millis(100));
        let mut seq = RetrySequence::begin_at(&p, start);
        assert_eq!(seq.next_sleep(clock.now()), None, "attempt 0 pre-check");

        // Unbounded policies never clamp and never refuse on time.
        let unbounded = BackoffPolicy::default();
        let mut seq = RetrySequence::begin_at(&unbounded, start);
        assert_eq!(seq.next_sleep(clock.now()), Some(Duration::ZERO));
        assert_eq!(seq.next_sleep(clock.now()), Some(unbounded.delay(0)));
    }

    #[test]
    fn retry_sequence_honors_the_attempt_cap() {
        let clock = VirtualClock::new();
        let p = BackoffPolicy {
            max_retries: 2,
            ..BackoffPolicy::default()
        };
        let mut seq = RetrySequence::begin_at(&p, clock.now());
        // max_retries = 2 → one initial dial + two retries, then done.
        for _ in 0..3 {
            assert!(seq.next_sleep(clock.now()).is_some());
        }
        assert_eq!(seq.next_sleep(clock.now()), None);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = BackoffPolicy::default();
        // Exponential growth from the base...
        assert!(p.delay(0) >= Duration::from_millis(50));
        assert!(p.delay(0) < Duration::from_millis(63)); // base + 25%
        assert!(p.delay(3) >= Duration::from_millis(400));
        // ...capped (plus ≤25% jitter) no matter how many attempts.
        assert!(p.delay(30) <= Duration::from_millis(2500));
        // Deterministic: same seed, same delays.
        let q = BackoffPolicy::default();
        for k in 0..10 {
            assert_eq!(p.delay(k), q.delay(k));
        }
        // Different seeds decorrelate.
        let r = BackoffPolicy {
            seed: 99,
            ..BackoffPolicy::default()
        };
        assert!((0..10).any(|k| r.delay(k) != p.delay(k)));
    }

    #[test]
    fn create_fails_fast_when_no_server_listens() {
        // Reserve a port, then close it so nothing is listening.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let spec = SessionSpec {
            name: "ghost".into(),
            engine: Engine::Reference,
            pace: Pace::MaxSpeed,
            source: ModelSource::Blank {
                width: 2,
                height: 2,
                seed: 1,
            },
            fault_plan: String::new(),
        };
        let policy = BackoffPolicy {
            base: Duration::from_millis(1),
            max: Duration::from_millis(2),
            max_retries: 2,
            seed: 0,
            ..BackoffPolicy::default()
        };
        assert!(ReconnectingClient::create(addr, spec, policy).is_err());
    }

    #[test]
    fn total_deadline_cuts_retry_sequences_short() {
        let p = BackoffPolicy {
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
            max_retries: 100,
            total_deadline: Some(Duration::from_millis(10)),
            seed: 0,
        };
        // The budget is already smaller than the first delay: any sleep
        // would overrun it.
        let start = Instant::now();
        assert!(p.out_of_time(start, p.delay(0)));
        // No deadline → never out of time.
        let unbounded = BackoffPolicy::default();
        assert!(!unbounded.out_of_time(start, Duration::from_secs(3600)));

        // End to end: a dead address with a generous retry count but a
        // tiny wall-clock budget fails in far fewer than 100 delays.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let spec = SessionSpec {
            name: "late".into(),
            engine: Engine::Reference,
            pace: Pace::MaxSpeed,
            source: ModelSource::Blank {
                width: 2,
                height: 2,
                seed: 1,
            },
            fault_plan: String::new(),
        };
        let started = Instant::now();
        assert!(ReconnectingClient::create(addr, spec, p).is_err());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline must beat the 100-retry delay sum"
        );
    }
}
