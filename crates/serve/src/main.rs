//! `tn-serve` — run the spike-streaming session server.
//!
//! Exit codes: 0 clean shutdown, 2 usage or bind error.

use std::process::ExitCode;
use std::time::Duration;

use tn_serve::{Server, ServerConfig};

const USAGE: &str = "\
usage: tn-serve [options]

Hosts live neurosynaptic simulator sessions over TCP: clients create
sessions from model files (or blank boards), stream spikes in, and
subscribe to output spikes and per-tick statistics. Real-time sessions
honor the paper's 1 ms tick.

options:
  --listen <addr>        listen address (default 127.0.0.1:4160)
  --max-speed            free-run every session at host speed instead of
                         pacing real-time sessions to the tick period
  --tick-us <N>          real-time tick period in microseconds
                         (default 1000 = the paper's 1 ms tick)
  --idle-timeout-s <N>   evict sessions idle this many seconds
                         (default 120)
  --input-capacity <N>   per-session bound on queued injected events
                         (default 65536)
  --output-capacity <N>  per-session high-water mark on undrained output
                         spikes; oldest are evicted and counted beyond it
                         (default 1048576)
  --max-sessions <N>     cap on concurrently live sessions (default 32)
  --parallel-threads <N> worker threads for parallel-engine sessions
                         (default 2)
  --exec-shards <N>      driver shards in the session executor; each
                         shard multiplexes many sessions on one thread
                         (default 0 = min(cores, 8))
  --shards <N>           default shard count for sharded sessions whose
                         create request asks for the server default
                         (default 2)
  --shard-worker-bin <P> path to the tn-shard-worker binary; when set,
                         each shard of a sharded session runs in its own
                         OS process (default: in-process shard workers)
  --migration-timeout-ms <N>
                         per-phase budget when live-migrating a session
                         to another server (default 10000)
  -h, --help             print this help
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => {
                cfg.addr = it.next().ok_or("--listen needs an address")?.clone();
            }
            "--max-speed" => cfg.max_speed = true,
            "--tick-us" => {
                let v = it.next().ok_or("--tick-us needs a value")?;
                let us: u64 = v.parse().map_err(|_| format!("bad --tick-us value: {v}"))?;
                cfg.tick_period = Duration::from_micros(us.max(1));
            }
            "--idle-timeout-s" => {
                let v = it.next().ok_or("--idle-timeout-s needs a value")?;
                let s: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --idle-timeout-s value: {v}"))?;
                cfg.idle_timeout = Duration::from_secs(s.max(1));
            }
            "--input-capacity" => {
                let v = it.next().ok_or("--input-capacity needs a value")?;
                cfg.input_capacity = v
                    .parse()
                    .map_err(|_| format!("bad --input-capacity value: {v}"))?;
            }
            "--output-capacity" => {
                let v = it.next().ok_or("--output-capacity needs a value")?;
                cfg.output_capacity = v
                    .parse()
                    .map_err(|_| format!("bad --output-capacity value: {v}"))?;
            }
            "--max-sessions" => {
                let v = it.next().ok_or("--max-sessions needs a value")?;
                cfg.max_sessions = v
                    .parse()
                    .map_err(|_| format!("bad --max-sessions value: {v}"))?;
            }
            "--parallel-threads" => {
                let v = it.next().ok_or("--parallel-threads needs a value")?;
                cfg.parallel_threads = v
                    .parse()
                    .map_err(|_| format!("bad --parallel-threads value: {v}"))?;
            }
            "--exec-shards" => {
                let v = it.next().ok_or("--exec-shards needs a value")?;
                cfg.exec_shards = v
                    .parse()
                    .map_err(|_| format!("bad --exec-shards value: {v}"))?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --shards value: {v}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                cfg.shards = n;
            }
            "--shard-worker-bin" => {
                let v = it.next().ok_or("--shard-worker-bin needs a path")?;
                cfg.shard_worker_bin = Some(v.into());
            }
            "--migration-timeout-ms" => {
                let v = it.next().ok_or("--migration-timeout-ms needs a value")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --migration-timeout-ms value: {v}"))?;
                cfg.migration_timeout = Duration::from_millis(ms.max(1));
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("tn-serve: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let server = match Server::bind(cfg.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("tn-serve: cannot bind {}: {e}", cfg.addr);
            return ExitCode::from(2);
        }
    };
    let addr = server
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or(cfg.addr.clone());
    eprintln!(
        "tn-serve: listening on {addr} (tick {:?}{}, idle timeout {:?}, \
         input capacity {}, max sessions {})",
        cfg.tick_period,
        if cfg.max_speed { ", max speed" } else { "" },
        cfg.idle_timeout,
        cfg.input_capacity,
        cfg.max_sessions,
    );
    server.run();
    ExitCode::SUCCESS
}
