//! The tn-serve wire protocol: length-prefixed binary frames.
//!
//! Every message — request, reply, or streamed update — is one frame in
//! the shared [`tn_core::wire::framed`] codec (the same framing the
//! `tn-shard` boundary-spike exchange uses — one codec, two callers):
//!
//! ```text
//! offset  size  field
//! 0       4     payload length N (u32 LE), ≤ MAX_FRAME_BYTES
//! 4       1     protocol version (PROTOCOL_VERSION)
//! 5       1     opcode
//! 6       N     payload (opcode-specific, see `tn_core::wire`)
//! 6+N     4     CRC-32 over version ++ opcode ++ payload (u32 LE)
//! ```
//!
//! Requests and replies are strictly paired per connection (the server
//! answers in order), but subscribed sessions interleave
//! [`Response::TickUpdate`] frames into the stream at any point; clients
//! dispatch on the opcode. Malformed input of any kind decodes to a
//! [`ProtocolError`] and is answered with an [`ErrorCode::Protocol`]
//! reply — the connection survives every malformation whose frame
//! boundary is still known.

use tn_core::wire::{self, framed, ByteReader, InputEvent, WireError};

/// Protocol version carried in every frame header. Version 2 added the
/// CRC-32 frame trailer and the sharded-session request; version 3 added
/// the control plane (list/migrate/drain/status/adopt and the
/// `Redirect` stream frame); version 4 added the real-time grid phase to
/// `AdoptSession` so a migrated session resumes its deadline grid
/// instead of re-anchoring (and double-booking the in-flight slot).
pub const PROTOCOL_VERSION: u8 = 4;
/// Frame header size: length + version + opcode.
pub const FRAME_HEADER_BYTES: usize = framed::HEADER_BYTES;
/// CRC trailer size after the payload.
pub const FRAME_TRAILER_BYTES: usize = framed::TRAILER_BYTES;
/// Hard cap on payload size (model files and whole-board snapshots are
/// megabytes; anything beyond this is a corrupt or hostile length).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

// Request opcodes.
pub const OP_PING: u8 = 0x01;
pub const OP_CREATE_SESSION: u8 = 0x02;
pub const OP_INJECT_SPIKES: u8 = 0x03;
pub const OP_SUBSCRIBE: u8 = 0x04;
pub const OP_STEP: u8 = 0x05;
pub const OP_RUN_FOR: u8 = 0x06;
pub const OP_SNAPSHOT: u8 = 0x07;
pub const OP_RESTORE: u8 = 0x08;
pub const OP_STATS: u8 = 0x09;
pub const OP_CLOSE_SESSION: u8 = 0x0A;
pub const OP_GET_METRICS: u8 = 0x0B;
pub const OP_CREATE_SHARDED_SESSION: u8 = 0x0C;
// Control-plane requests (version 3).
pub const OP_LIST_SESSIONS: u8 = 0x0D;
pub const OP_MIGRATE_SESSION: u8 = 0x0E;
pub const OP_DRAIN: u8 = 0x0F;
pub const OP_SERVER_STATUS: u8 = 0x10;
pub const OP_ADOPT_SESSION: u8 = 0x11;

// Response opcodes.
pub const OP_PONG: u8 = 0x80;
pub const OP_OK: u8 = 0x81;
pub const OP_ERROR: u8 = 0x82;
pub const OP_CREATED: u8 = 0x83;
pub const OP_INJECT_ACK: u8 = 0x84;
pub const OP_OVERLOADED: u8 = 0x85;
pub const OP_SNAPSHOT_DATA: u8 = 0x86;
pub const OP_STATS_DATA: u8 = 0x87;
pub const OP_TICK_UPDATE: u8 = 0x88;
pub const OP_METRICS_DATA: u8 = 0x89;
// Control-plane responses (version 3).
pub const OP_SESSION_LIST: u8 = 0x8A;
pub const OP_REDIRECT: u8 = 0x8B;
pub const OP_SERVER_STATUS_DATA: u8 = 0x8C;

/// A malformed frame or payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    pub message: String,
}

impl ProtocolError {
    pub fn new(message: impl Into<String>) -> Self {
        ProtocolError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::new(e.to_string())
    }
}

/// Which kernel expression hosts a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// `tn_chip::TrueNorthSim` — NoC routing + energy/timing models.
    Chip,
    /// `tn_compass::ReferenceSim` — single-threaded ground truth.
    Reference,
    /// `tn_compass::ParallelSim` — multithreaded Compass.
    Parallel,
}

impl Engine {
    pub fn as_u8(self) -> u8 {
        match self {
            Engine::Chip => 0,
            Engine::Reference => 1,
            Engine::Parallel => 2,
        }
    }

    pub fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        match v {
            0 => Ok(Engine::Chip),
            1 => Ok(Engine::Reference),
            2 => Ok(Engine::Parallel),
            v => Err(ProtocolError::new(format!("unknown engine {v}"))),
        }
    }
}

/// Session pacing: honor the paper's 1 ms tick, or free-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pace {
    /// One tick per configured period (1 ms by default), wall-clock
    /// paced — the chip's real-time operating regime.
    RealTime,
    /// As fast as the host simulates — the "max speed" regime.
    MaxSpeed,
}

impl Pace {
    pub fn as_u8(self) -> u8 {
        match self {
            Pace::RealTime => 0,
            Pace::MaxSpeed => 1,
        }
    }

    pub fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        match v {
            0 => Ok(Pace::RealTime),
            1 => Ok(Pace::MaxSpeed),
            v => Err(ProtocolError::new(format!("unknown pace mode {v}"))),
        }
    }
}

/// Session health under an attached fault plan (always `Healthy` when no
/// plan is attached and no defects were injected).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Health {
    /// All cores alive, no fault-induced drops.
    #[default]
    Healthy,
    /// Some cores disabled or some spikes dropped by faults — the
    /// session keeps ticking with reduced function (paper Section III-C:
    /// performance degrades proportionally, not catastrophically).
    Degraded,
    /// Every core is disabled; the session still answers the protocol
    /// but cannot compute.
    Failed,
}

impl Health {
    pub fn as_u8(self) -> u8 {
        match self {
            Health::Healthy => 0,
            Health::Degraded => 1,
            Health::Failed => 2,
        }
    }

    pub fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        match v {
            0 => Ok(Health::Healthy),
            1 => Ok(Health::Degraded),
            2 => Ok(Health::Failed),
            v => Err(ProtocolError::new(format!("unknown health state {v}"))),
        }
    }
}

/// Where a session's network comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelSource {
    /// An unconfigured `width × height` grid (all cores silent).
    Blank { width: u16, height: u16, seed: u64 },
    /// Model-file text, lint-verified on load.
    Model(String),
}

/// Client → server messages.
///
/// `Eq` is deliberately absent: [`Request::AdoptSession`] carries a
/// [`SessionStats`] baseline, whose `energy_j` is an `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Ping,
    CreateSession {
        name: String,
        engine: Engine,
        pace: Pace,
        source: ModelSource,
        /// Fault-plan text (`tnfault 1` format), linted server-side
        /// before the session starts; empty means no faults.
        fault_plan: String,
    },
    InjectSpikes {
        session: String,
        events: Vec<InputEvent>,
    },
    /// Create a session partitioned across shard worker processes by the
    /// `tn-shard` layer. The gateway spawns and places the workers; the
    /// session then speaks the ordinary session protocol.
    CreateShardedSession {
        name: String,
        pace: Pace,
        source: ModelSource,
        /// Fault-plan text, as in [`Request::CreateSession`].
        fault_plan: String,
        /// Worker count; 0 means the server's configured default.
        shards: u16,
    },
    Subscribe {
        session: String,
    },
    /// Advance exactly `ticks` ticks at the session's pace; the `Ok`
    /// reply arrives when they have run.
    RunFor {
        session: String,
        ticks: u64,
    },
    Snapshot {
        session: String,
    },
    Restore {
        session: String,
        bytes: Vec<u8>,
    },
    Stats {
        session: String,
    },
    /// Scrape the session's metrics registry as Prometheus-style text
    /// exposition (plus the flight-recorder dump as `#` comment lines).
    GetMetrics {
        session: String,
    },
    CloseSession {
        session: String,
    },
    /// Control plane: enumerate live sessions with their current stats.
    ListSessions,
    /// Control plane: live-migrate `session` to the server at `target`
    /// (a `host:port` address). Replies [`Response::Redirect`] on
    /// success; on any phase failure the session keeps running here and
    /// the reply is an [`ErrorCode::MigrationFailed`] error.
    MigrateSession {
        session: String,
        target: String,
    },
    /// Control plane: stop accepting new sessions, migrate every live
    /// session to `target`, and (when started from the CLI) exit 0 once
    /// empty. Replies `Ok` when the last session has moved.
    Drain {
        target: String,
    },
    /// Control plane: server-wide status (drain state, occupancy).
    ServerStatus,
    /// Server → server: adopt a migrating session in one frame. Carries
    /// the *original* create request (so the target rebuilds the same
    /// engine/pace/fault plan), the quiesced snapshot, the source's
    /// cumulative stat baselines (counters that do not live in the
    /// snapshot), input events still queued for future ticks, and the
    /// source's real-time grid phase — the offset to its next *unbooked*
    /// deadline edge (`None` for max-speed sessions), so exactly one
    /// side books the slot that was in flight at quiesce time.
    AdoptSession {
        create: Box<Request>,
        snapshot: Vec<u8>,
        baseline: SessionStats,
        pending: Vec<InputEvent>,
        grid_phase: Option<std::time::Duration>,
    },
}

/// Machine-readable failure classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame or payload.
    Protocol = 1,
    /// No live session by that name (never created, closed, or evicted).
    UnknownSession = 2,
    /// A live session by that name already exists.
    SessionExists = 3,
    /// The model file failed to parse or failed static verification.
    ModelRejected = 4,
    /// An injected event named an axon or core outside the grid.
    InvalidInjection = 5,
    /// Snapshot bytes failed to decode or mismatch the session's shape.
    SnapshotRejected = 6,
    /// The server's session budget is exhausted.
    TooManySessions = 7,
    /// The server is shutting down.
    Shutdown = 8,
    /// The server failed internally while provisioning the session
    /// (e.g. shard worker processes could not be spawned).
    Internal = 9,
    /// The server is draining: it refuses new sessions but keeps
    /// serving (and migrating out) the ones it has.
    Draining = 10,
    /// A live migration failed; the session is untouched and still
    /// running on the server that reported this.
    MigrationFailed = 11,
}

impl ErrorCode {
    pub fn from_u16(v: u16) -> Result<Self, ProtocolError> {
        Ok(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::UnknownSession,
            3 => ErrorCode::SessionExists,
            4 => ErrorCode::ModelRejected,
            5 => ErrorCode::InvalidInjection,
            6 => ErrorCode::SnapshotRejected,
            7 => ErrorCode::TooManySessions,
            8 => ErrorCode::Shutdown,
            9 => ErrorCode::Internal,
            10 => ErrorCode::Draining,
            11 => ErrorCode::MigrationFailed,
            v => return Err(ProtocolError::new(format!("unknown error code {v}"))),
        })
    }
}

/// Per-session counters returned by [`Request::Stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionStats {
    pub tick: u64,
    pub spikes_out: u64,
    pub sops: u64,
    pub neuron_updates: u64,
    /// Total injected events shed anywhere on the path (queue overflow,
    /// stale timestamps, out-of-grid targets).
    pub dropped_inputs: u64,
    /// Events queued awaiting their tick.
    pub pending_inputs: u64,
    /// Real-time deadlines missed by the tick scheduler.
    pub missed_deadlines: u64,
    /// `Network::state_digest` — lets a client assert bit-exact
    /// equivalence against a local run.
    pub state_digest: u64,
    /// Modelled real-time energy so far (J); 0 for non-chip engines.
    pub energy_j: f64,
    /// Degradation state under the session's fault plan.
    pub health: Health,
    /// Total spikes/inputs dropped by the fault layer so far.
    pub fault_dropped: u64,
    /// Output spikes evicted by the transcript's high-water mark because
    /// no subscriber drained them in time.
    pub spikes_evicted: u64,
    pub engine: String,
}

/// One row of a [`Response::SessionList`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionEntry {
    pub name: String,
    pub stats: SessionStats,
}

fn put_stats(p: &mut Vec<u8>, s: &SessionStats) {
    wire::put_u64(p, s.tick);
    wire::put_u64(p, s.spikes_out);
    wire::put_u64(p, s.sops);
    wire::put_u64(p, s.neuron_updates);
    wire::put_u64(p, s.dropped_inputs);
    wire::put_u64(p, s.pending_inputs);
    wire::put_u64(p, s.missed_deadlines);
    wire::put_u64(p, s.state_digest);
    wire::put_f64(p, s.energy_j);
    wire::put_u8(p, s.health.as_u8());
    wire::put_u64(p, s.fault_dropped);
    wire::put_u64(p, s.spikes_evicted);
    wire::put_str(p, &s.engine);
}

fn read_stats(r: &mut ByteReader<'_>) -> Result<SessionStats, ProtocolError> {
    Ok(SessionStats {
        tick: r.u64("tick")?,
        spikes_out: r.u64("spikes")?,
        sops: r.u64("sops")?,
        neuron_updates: r.u64("neuron updates")?,
        dropped_inputs: r.u64("dropped inputs")?,
        pending_inputs: r.u64("pending inputs")?,
        missed_deadlines: r.u64("missed deadlines")?,
        state_digest: r.u64("state digest")?,
        energy_j: r.f64("energy")?,
        health: Health::from_u8(r.u8("health")?)?,
        fault_dropped: r.u64("fault dropped")?,
        spikes_evicted: r.u64("spikes evicted")?,
        engine: r.str("engine")?.to_string(),
    })
}

/// One tick of a subscribed session.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TickUpdate {
    pub session: String,
    /// The tick that just ran.
    pub tick: u64,
    pub spikes_out: u64,
    pub sops: u64,
    /// Modelled real-time energy for this tick (J); 0 for non-chip.
    pub energy_j: f64,
    /// Output ports that fired this tick.
    pub ports: Vec<u32>,
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Pong,
    Ok,
    Error {
        code: ErrorCode,
        message: String,
    },
    Created {
        session: String,
    },
    /// All offered events were queued.
    InjectAck {
        accepted: u32,
    },
    /// Backpressure: some events were shed instead of stalling the tick
    /// loop. The session keeps ticking.
    Overloaded {
        accepted: u32,
        dropped: u32,
        total_dropped: u64,
    },
    SnapshotData {
        bytes: Vec<u8>,
    },
    StatsData(SessionStats),
    /// Streamed to subscribers; not a reply to any request.
    TickUpdate(TickUpdate),
    /// Metrics text exposition (reply to [`Request::GetMetrics`]).
    MetricsData {
        text: String,
    },
    /// Control plane: the live sessions with their stats (reply to
    /// [`Request::ListSessions`]).
    SessionList {
        entries: Vec<SessionEntry>,
    },
    /// The session now lives at `addr`. Sent as the success reply to
    /// [`Request::MigrateSession`], streamed to subscribers when their
    /// session moves (interleaved like [`Response::TickUpdate`]), and
    /// returned to any later request naming a session this server has
    /// migrated away.
    Redirect {
        session: String,
        addr: String,
    },
    /// Control plane: server-wide status (reply to
    /// [`Request::ServerStatus`]).
    ServerStatusData {
        addr: String,
        draining: bool,
        sessions: u32,
        max_sessions: u32,
    },
}

/// Assemble a full frame (CRC trailer included) around a payload.
pub fn frame(opcode: u8, payload: &[u8]) -> Vec<u8> {
    framed::encode_frame(PROTOCOL_VERSION, opcode, payload)
}

/// Parse a frame header: returns `(opcode, payload_len)`.
pub fn parse_header(hdr: &[u8; FRAME_HEADER_BYTES]) -> Result<(u8, u32), ProtocolError> {
    let h = framed::read_header(hdr);
    if h.len > MAX_FRAME_BYTES {
        return Err(ProtocolError::new(format!(
            "frame length {} exceeds the {MAX_FRAME_BYTES}-byte cap",
            h.len
        )));
    }
    if h.version != PROTOCOL_VERSION {
        return Err(ProtocolError::new(format!(
            "unsupported protocol version {} (this build speaks {PROTOCOL_VERSION})",
            h.version
        )));
    }
    Ok((h.opcode, h.len))
}

fn read_model_source(r: &mut ByteReader<'_>) -> Result<ModelSource, ProtocolError> {
    match r.u8("model source tag")? {
        0 => {
            let width = r.u16("grid width")?;
            let height = r.u16("grid height")?;
            let seed = r.u64("seed")?;
            if width == 0 || height == 0 {
                return Err(ProtocolError::new(format!(
                    "degenerate grid {width}×{height}"
                )));
            }
            Ok(ModelSource::Blank {
                width,
                height,
                seed,
            })
        }
        1 => {
            let raw = r.bytes("model text")?;
            let text = std::str::from_utf8(raw)
                .map_err(|_| ProtocolError::new("model text is not UTF-8"))?;
            Ok(ModelSource::Model(text.to_string()))
        }
        t => Err(ProtocolError::new(format!("unknown model source tag {t}"))),
    }
}

impl Request {
    /// Encode as a full frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let opcode = match self {
            Request::Ping => OP_PING,
            Request::CreateSession {
                name,
                engine,
                pace,
                source,
                fault_plan,
            } => {
                wire::put_str(&mut p, name);
                wire::put_u8(&mut p, engine.as_u8());
                wire::put_u8(&mut p, pace.as_u8());
                wire::put_bytes(&mut p, fault_plan.as_bytes());
                match source {
                    ModelSource::Blank {
                        width,
                        height,
                        seed,
                    } => {
                        wire::put_u8(&mut p, 0);
                        wire::put_u16(&mut p, *width);
                        wire::put_u16(&mut p, *height);
                        wire::put_u64(&mut p, *seed);
                    }
                    ModelSource::Model(text) => {
                        wire::put_u8(&mut p, 1);
                        wire::put_bytes(&mut p, text.as_bytes());
                    }
                }
                OP_CREATE_SESSION
            }
            Request::CreateShardedSession {
                name,
                pace,
                source,
                fault_plan,
                shards,
            } => {
                wire::put_str(&mut p, name);
                wire::put_u8(&mut p, pace.as_u8());
                wire::put_u16(&mut p, *shards);
                wire::put_bytes(&mut p, fault_plan.as_bytes());
                match source {
                    ModelSource::Blank {
                        width,
                        height,
                        seed,
                    } => {
                        wire::put_u8(&mut p, 0);
                        wire::put_u16(&mut p, *width);
                        wire::put_u16(&mut p, *height);
                        wire::put_u64(&mut p, *seed);
                    }
                    ModelSource::Model(text) => {
                        wire::put_u8(&mut p, 1);
                        wire::put_bytes(&mut p, text.as_bytes());
                    }
                }
                OP_CREATE_SHARDED_SESSION
            }
            Request::InjectSpikes { session, events } => {
                wire::put_str(&mut p, session);
                wire::put_input_events(&mut p, events);
                OP_INJECT_SPIKES
            }
            Request::Subscribe { session } => {
                wire::put_str(&mut p, session);
                OP_SUBSCRIBE
            }
            Request::RunFor { session, ticks } => {
                wire::put_str(&mut p, session);
                if *ticks == 1 {
                    OP_STEP
                } else {
                    wire::put_u64(&mut p, *ticks);
                    OP_RUN_FOR
                }
            }
            Request::Snapshot { session } => {
                wire::put_str(&mut p, session);
                OP_SNAPSHOT
            }
            Request::Restore { session, bytes } => {
                wire::put_str(&mut p, session);
                wire::put_bytes(&mut p, bytes);
                OP_RESTORE
            }
            Request::Stats { session } => {
                wire::put_str(&mut p, session);
                OP_STATS
            }
            Request::GetMetrics { session } => {
                wire::put_str(&mut p, session);
                OP_GET_METRICS
            }
            Request::CloseSession { session } => {
                wire::put_str(&mut p, session);
                OP_CLOSE_SESSION
            }
            Request::ListSessions => OP_LIST_SESSIONS,
            Request::MigrateSession { session, target } => {
                wire::put_str(&mut p, session);
                wire::put_str(&mut p, target);
                OP_MIGRATE_SESSION
            }
            Request::Drain { target } => {
                wire::put_str(&mut p, target);
                OP_DRAIN
            }
            Request::ServerStatus => OP_SERVER_STATUS,
            Request::AdoptSession {
                create,
                snapshot,
                baseline,
                pending,
                grid_phase,
            } => {
                wire::put_bytes(&mut p, &create.encode());
                wire::put_bytes(&mut p, snapshot);
                put_stats(&mut p, baseline);
                wire::put_input_events(&mut p, pending);
                match grid_phase {
                    Some(phase) => {
                        wire::put_u8(&mut p, 1);
                        wire::put_u64(&mut p, phase.as_nanos() as u64);
                    }
                    None => wire::put_u8(&mut p, 0),
                }
                OP_ADOPT_SESSION
            }
        };
        frame(opcode, &p)
    }

    /// Decode a request payload for `opcode`.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = ByteReader::new(payload);
        let req = match opcode {
            OP_PING => Request::Ping,
            OP_CREATE_SESSION => {
                let name = r.str("session name")?.to_string();
                if name.is_empty() {
                    return Err(ProtocolError::new("empty session name"));
                }
                let engine = Engine::from_u8(r.u8("engine")?)?;
                let pace = Pace::from_u8(r.u8("pace")?)?;
                let fault_plan = std::str::from_utf8(r.bytes("fault plan")?)
                    .map_err(|_| ProtocolError::new("fault plan is not UTF-8"))?
                    .to_string();
                let source = read_model_source(&mut r)?;
                Request::CreateSession {
                    name,
                    engine,
                    pace,
                    source,
                    fault_plan,
                }
            }
            OP_CREATE_SHARDED_SESSION => {
                let name = r.str("session name")?.to_string();
                if name.is_empty() {
                    return Err(ProtocolError::new("empty session name"));
                }
                let pace = Pace::from_u8(r.u8("pace")?)?;
                let shards = r.u16("shard count")?;
                let fault_plan = std::str::from_utf8(r.bytes("fault plan")?)
                    .map_err(|_| ProtocolError::new("fault plan is not UTF-8"))?
                    .to_string();
                let source = read_model_source(&mut r)?;
                Request::CreateShardedSession {
                    name,
                    pace,
                    source,
                    fault_plan,
                    shards,
                }
            }
            OP_INJECT_SPIKES => {
                let session = r.str("session name")?.to_string();
                let events = wire::read_input_events(&mut r)?;
                Request::InjectSpikes { session, events }
            }
            OP_SUBSCRIBE => Request::Subscribe {
                session: r.str("session name")?.to_string(),
            },
            OP_STEP => Request::RunFor {
                session: r.str("session name")?.to_string(),
                ticks: 1,
            },
            OP_RUN_FOR => {
                let session = r.str("session name")?.to_string();
                let ticks = r.u64("tick count")?;
                Request::RunFor { session, ticks }
            }
            OP_SNAPSHOT => Request::Snapshot {
                session: r.str("session name")?.to_string(),
            },
            OP_RESTORE => {
                let session = r.str("session name")?.to_string();
                let bytes = r.bytes("snapshot bytes")?.to_vec();
                Request::Restore { session, bytes }
            }
            OP_STATS => Request::Stats {
                session: r.str("session name")?.to_string(),
            },
            OP_GET_METRICS => Request::GetMetrics {
                session: r.str("session name")?.to_string(),
            },
            OP_CLOSE_SESSION => Request::CloseSession {
                session: r.str("session name")?.to_string(),
            },
            OP_LIST_SESSIONS => Request::ListSessions,
            OP_MIGRATE_SESSION => {
                let session = r.str("session name")?.to_string();
                let target = r.str("target address")?.to_string();
                if session.is_empty() || target.is_empty() {
                    return Err(ProtocolError::new("empty migrate session or target"));
                }
                Request::MigrateSession { session, target }
            }
            OP_DRAIN => {
                let target = r.str("target address")?.to_string();
                if target.is_empty() {
                    return Err(ProtocolError::new("empty drain target"));
                }
                Request::Drain { target }
            }
            OP_SERVER_STATUS => Request::ServerStatus,
            OP_ADOPT_SESSION => {
                let inner = r.bytes("nested create frame")?.to_vec();
                let (op, payload) = split_frame(&inner)?;
                let create = Request::decode(op, payload)?;
                // Only the two create shapes may ride inside an adopt —
                // this also bounds the nesting to one level.
                match create {
                    Request::CreateSession { .. } | Request::CreateShardedSession { .. } => {}
                    _ => {
                        return Err(ProtocolError::new(
                            "adopt payload must nest a create request",
                        ))
                    }
                }
                let snapshot = r.bytes("snapshot bytes")?.to_vec();
                let baseline = read_stats(&mut r)?;
                let pending = wire::read_input_events(&mut r)?;
                let grid_phase = match r.u8("grid phase flag")? {
                    0 => None,
                    1 => Some(std::time::Duration::from_nanos(r.u64("grid phase ns")?)),
                    other => {
                        return Err(ProtocolError::new(format!("bad grid phase flag {other}")))
                    }
                };
                Request::AdoptSession {
                    create: Box::new(create),
                    snapshot,
                    baseline,
                    pending,
                    grid_phase,
                }
            }
            op => {
                return Err(ProtocolError::new(format!(
                    "unknown request opcode {op:#x}"
                )))
            }
        };
        r.finish("trailing bytes after request")?;
        Ok(req)
    }
}

impl Response {
    /// Encode as a full frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let opcode = match self {
            Response::Pong => OP_PONG,
            Response::Ok => OP_OK,
            Response::Error { code, message } => {
                wire::put_u16(&mut p, *code as u16);
                wire::put_str(&mut p, message);
                OP_ERROR
            }
            Response::Created { session } => {
                wire::put_str(&mut p, session);
                OP_CREATED
            }
            Response::InjectAck { accepted } => {
                wire::put_u32(&mut p, *accepted);
                OP_INJECT_ACK
            }
            Response::Overloaded {
                accepted,
                dropped,
                total_dropped,
            } => {
                wire::put_u32(&mut p, *accepted);
                wire::put_u32(&mut p, *dropped);
                wire::put_u64(&mut p, *total_dropped);
                OP_OVERLOADED
            }
            Response::SnapshotData { bytes } => {
                wire::put_bytes(&mut p, bytes);
                OP_SNAPSHOT_DATA
            }
            Response::StatsData(s) => {
                put_stats(&mut p, s);
                OP_STATS_DATA
            }
            Response::TickUpdate(u) => {
                wire::put_str(&mut p, &u.session);
                wire::put_u64(&mut p, u.tick);
                wire::put_u64(&mut p, u.spikes_out);
                wire::put_u64(&mut p, u.sops);
                wire::put_f64(&mut p, u.energy_j);
                wire::put_u32(&mut p, u.ports.len() as u32);
                for &port in &u.ports {
                    wire::put_u32(&mut p, port);
                }
                OP_TICK_UPDATE
            }
            Response::MetricsData { text } => {
                wire::put_bytes(&mut p, text.as_bytes());
                OP_METRICS_DATA
            }
            Response::SessionList { entries } => {
                wire::put_u32(&mut p, entries.len() as u32);
                for e in entries {
                    wire::put_str(&mut p, &e.name);
                    put_stats(&mut p, &e.stats);
                }
                OP_SESSION_LIST
            }
            Response::Redirect { session, addr } => {
                wire::put_str(&mut p, session);
                wire::put_str(&mut p, addr);
                OP_REDIRECT
            }
            Response::ServerStatusData {
                addr,
                draining,
                sessions,
                max_sessions,
            } => {
                wire::put_str(&mut p, addr);
                wire::put_u8(&mut p, u8::from(*draining));
                wire::put_u32(&mut p, *sessions);
                wire::put_u32(&mut p, *max_sessions);
                OP_SERVER_STATUS_DATA
            }
        };
        frame(opcode, &p)
    }

    /// Decode a response payload for `opcode`.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = ByteReader::new(payload);
        let resp = match opcode {
            OP_PONG => Response::Pong,
            OP_OK => Response::Ok,
            OP_ERROR => {
                let code = ErrorCode::from_u16(r.u16("error code")?)?;
                let message = r.str("error message")?.to_string();
                Response::Error { code, message }
            }
            OP_CREATED => Response::Created {
                session: r.str("session name")?.to_string(),
            },
            OP_INJECT_ACK => Response::InjectAck {
                accepted: r.u32("accepted count")?,
            },
            OP_OVERLOADED => Response::Overloaded {
                accepted: r.u32("accepted count")?,
                dropped: r.u32("dropped count")?,
                total_dropped: r.u64("total dropped")?,
            },
            OP_SNAPSHOT_DATA => Response::SnapshotData {
                bytes: r.bytes("snapshot bytes")?.to_vec(),
            },
            OP_STATS_DATA => Response::StatsData(read_stats(&mut r)?),
            OP_TICK_UPDATE => {
                let session = r.str("session name")?.to_string();
                let tick = r.u64("tick")?;
                let spikes_out = r.u64("spikes")?;
                let sops = r.u64("sops")?;
                let energy_j = r.f64("energy")?;
                let n = r.u32("port count")? as usize;
                if r.remaining() < n * 4 {
                    return Err(ProtocolError::new("port count exceeds payload"));
                }
                let mut ports = Vec::with_capacity(n);
                for _ in 0..n {
                    ports.push(r.u32("port")?);
                }
                Response::TickUpdate(TickUpdate {
                    session,
                    tick,
                    spikes_out,
                    sops,
                    energy_j,
                    ports,
                })
            }
            OP_METRICS_DATA => {
                let raw = r.bytes("metrics text")?;
                let text = std::str::from_utf8(raw)
                    .map_err(|_| ProtocolError::new("metrics text is not UTF-8"))?
                    .to_string();
                Response::MetricsData { text }
            }
            OP_SESSION_LIST => {
                let n = r.u32("session count")? as usize;
                // Each entry is at least a name length + the fixed-width
                // stats block; a lying count cannot force allocation.
                if r.remaining() < n * 4 {
                    return Err(ProtocolError::new("session count exceeds payload"));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str("session name")?.to_string();
                    let stats = read_stats(&mut r)?;
                    entries.push(SessionEntry { name, stats });
                }
                Response::SessionList { entries }
            }
            OP_REDIRECT => Response::Redirect {
                session: r.str("session name")?.to_string(),
                addr: r.str("redirect address")?.to_string(),
            },
            OP_SERVER_STATUS_DATA => Response::ServerStatusData {
                addr: r.str("server address")?.to_string(),
                draining: r.u8("draining flag")? != 0,
                sessions: r.u32("session count")?,
                max_sessions: r.u32("session budget")?,
            },
            op => {
                return Err(ProtocolError::new(format!(
                    "unknown response opcode {op:#x}"
                )))
            }
        };
        r.finish("trailing bytes after response")?;
        Ok(resp)
    }
}

/// Split a full frame back into `(opcode, payload)`, verifying the CRC
/// trailer — test/client helper for decoding frames already read off the
/// wire.
pub fn split_frame(buf: &[u8]) -> Result<(u8, &[u8]), ProtocolError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Err(ProtocolError::new("frame shorter than its header"));
    }
    let hdr: &[u8; FRAME_HEADER_BYTES] = buf[..FRAME_HEADER_BYTES].try_into().unwrap();
    let (opcode, _) = parse_header(hdr)?;
    let (_, payload) = framed::split_frame(buf)?;
    Ok((opcode, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_core::CoreId;

    fn roundtrip_req(req: Request) {
        let f = req.encode();
        let (op, payload) = split_frame(&f).unwrap();
        assert_eq!(Request::decode(op, payload).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let f = resp.encode();
        let (op, payload) = split_frame(&f).unwrap();
        assert_eq!(Response::decode(op, payload).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::CreateSession {
            name: "vision-0".into(),
            engine: Engine::Chip,
            pace: Pace::RealTime,
            source: ModelSource::Blank {
                width: 8,
                height: 4,
                seed: 99,
            },
            fault_plan: String::new(),
        });
        roundtrip_req(Request::CreateSession {
            name: "m".into(),
            engine: Engine::Parallel,
            pace: Pace::MaxSpeed,
            source: ModelSource::Model("tnmodel 1\nnet 2 2 9\n".into()),
            fault_plan: "tnfault 1\nseed 7\nat 3 core 0 0 dead\n".into(),
        });
        roundtrip_req(Request::CreateShardedSession {
            name: "board-0".into(),
            pace: Pace::MaxSpeed,
            source: ModelSource::Model("tnmodel 1\nnet 4 4 3\n".into()),
            fault_plan: "tnfault 1\nseed 7\nat 3 core 0 0 dead\n".into(),
            shards: 4,
        });
        roundtrip_req(Request::CreateShardedSession {
            name: "board-1".into(),
            pace: Pace::RealTime,
            source: ModelSource::Blank {
                width: 8,
                height: 8,
                seed: 1,
            },
            fault_plan: String::new(),
            shards: 0, // server default
        });
        roundtrip_req(Request::InjectSpikes {
            session: "s".into(),
            events: vec![(0, CoreId(1), 255), (7, CoreId(0), 0)],
        });
        roundtrip_req(Request::Subscribe {
            session: "s".into(),
        });
        roundtrip_req(Request::RunFor {
            session: "s".into(),
            ticks: 1, // encodes as OP_STEP
        });
        roundtrip_req(Request::RunFor {
            session: "s".into(),
            ticks: 1000,
        });
        roundtrip_req(Request::Snapshot {
            session: "s".into(),
        });
        roundtrip_req(Request::Restore {
            session: "s".into(),
            bytes: vec![1, 2, 3],
        });
        roundtrip_req(Request::Stats {
            session: "s".into(),
        });
        roundtrip_req(Request::GetMetrics {
            session: "s".into(),
        });
        roundtrip_req(Request::CloseSession {
            session: "s".into(),
        });
        roundtrip_req(Request::ListSessions);
        roundtrip_req(Request::MigrateSession {
            session: "hot".into(),
            target: "10.0.0.2:4160".into(),
        });
        roundtrip_req(Request::Drain {
            target: "10.0.0.2:4160".into(),
        });
        roundtrip_req(Request::ServerStatus);
        roundtrip_req(Request::AdoptSession {
            create: Box::new(Request::CreateSession {
                name: "hot".into(),
                engine: Engine::Chip,
                pace: Pace::RealTime,
                source: ModelSource::Model("tnmodel 1\nnet 2 2 9\n".into()),
                fault_plan: "tnfault 1\nseed 7\nat 3 core 0 0 dead\n".into(),
            }),
            snapshot: vec![4, 5, 6, 7],
            baseline: SessionStats {
                tick: 17,
                missed_deadlines: 3,
                fault_dropped: 2,
                engine: "chip".into(),
                ..Default::default()
            },
            pending: vec![(18, CoreId(0), 7), (19, CoreId(1), 250)],
            grid_phase: Some(std::time::Duration::from_micros(412)),
        });
        roundtrip_req(Request::AdoptSession {
            create: Box::new(Request::CreateShardedSession {
                name: "board".into(),
                pace: Pace::MaxSpeed,
                source: ModelSource::Model("tnmodel 1\nnet 4 4 3\n".into()),
                fault_plan: String::new(),
                shards: 4,
            }),
            snapshot: vec![0; 64],
            baseline: SessionStats::default(),
            pending: vec![],
            grid_phase: None,
        });
    }

    #[test]
    fn adopt_rejects_non_create_nesting() {
        // Hand-encode an adopt whose nested frame is a Ping.
        let mut p = Vec::new();
        wire::put_bytes(&mut p, &Request::Ping.encode());
        wire::put_bytes(&mut p, b"");
        put_stats(&mut p, &SessionStats::default());
        wire::put_input_events(&mut p, &[]);
        assert!(Request::decode(OP_ADOPT_SESSION, &p)
            .unwrap_err()
            .message
            .contains("nest a create"));
        // A nested adopt (depth 2) is rejected the same way.
        let inner = Request::AdoptSession {
            create: Box::new(Request::CreateSession {
                name: "x".into(),
                engine: Engine::Reference,
                pace: Pace::MaxSpeed,
                source: ModelSource::Blank {
                    width: 1,
                    height: 1,
                    seed: 0,
                },
                fault_plan: String::new(),
            }),
            snapshot: vec![],
            baseline: SessionStats::default(),
            pending: vec![],
            grid_phase: None,
        };
        let mut p = Vec::new();
        wire::put_bytes(&mut p, &inner.encode());
        wire::put_bytes(&mut p, b"");
        put_stats(&mut p, &SessionStats::default());
        wire::put_input_events(&mut p, &[]);
        assert!(Request::decode(OP_ADOPT_SESSION, &p)
            .unwrap_err()
            .message
            .contains("nest a create"));
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Error {
            code: ErrorCode::UnknownSession,
            message: "no such session".into(),
        });
        roundtrip_resp(Response::Created {
            session: "s".into(),
        });
        roundtrip_resp(Response::InjectAck { accepted: 42 });
        roundtrip_resp(Response::Overloaded {
            accepted: 10,
            dropped: 90,
            total_dropped: 1234,
        });
        roundtrip_resp(Response::SnapshotData {
            bytes: vec![9; 300],
        });
        roundtrip_resp(Response::StatsData(SessionStats {
            tick: 100,
            spikes_out: 5,
            sops: 50,
            neuron_updates: 512,
            dropped_inputs: 3,
            pending_inputs: 2,
            missed_deadlines: 1,
            state_digest: 0xDEAD_BEEF,
            energy_j: 6.5e-5,
            health: Health::Degraded,
            fault_dropped: 17,
            spikes_evicted: 8,
            engine: "chip".into(),
        }));
        roundtrip_resp(Response::TickUpdate(TickUpdate {
            session: "s".into(),
            tick: 17,
            spikes_out: 3,
            sops: 30,
            energy_j: 1e-7,
            ports: vec![5, 6, 7],
        }));
        roundtrip_resp(Response::MetricsData {
            text: "# TYPE tn_kernel_ticks_total counter\ntn_kernel_ticks_total 5\n".into(),
        });
        roundtrip_resp(Response::SessionList {
            entries: vec![
                SessionEntry {
                    name: "a".into(),
                    stats: SessionStats {
                        tick: 4,
                        missed_deadlines: 1,
                        engine: "reference".into(),
                        ..Default::default()
                    },
                },
                SessionEntry {
                    name: "b".into(),
                    stats: SessionStats::default(),
                },
            ],
        });
        roundtrip_resp(Response::SessionList { entries: vec![] });
        roundtrip_resp(Response::Redirect {
            session: "hot".into(),
            addr: "10.0.0.2:4160".into(),
        });
        roundtrip_resp(Response::ServerStatusData {
            addr: "127.0.0.1:4160".into(),
            draining: true,
            sessions: 3,
            max_sessions: 32,
        });
    }

    #[test]
    fn session_list_count_lie_is_rejected() {
        let mut p = Vec::new();
        wire::put_u32(&mut p, u32::MAX);
        assert!(Response::decode(OP_SESSION_LIST, &p)
            .unwrap_err()
            .message
            .contains("exceeds payload"));
    }

    #[test]
    fn metrics_text_must_be_utf8() {
        let mut p = Vec::new();
        wire::put_bytes(&mut p, &[0xFF, 0xFE, 0x00]);
        assert!(Response::decode(OP_METRICS_DATA, &p)
            .unwrap_err()
            .message
            .contains("UTF-8"));
    }

    #[test]
    fn step_opcode_is_runfor_one() {
        let f = Request::RunFor {
            session: "s".into(),
            ticks: 1,
        }
        .encode();
        let (op, _) = split_frame(&f).unwrap();
        assert_eq!(op, OP_STEP);
    }

    #[test]
    fn header_rejects_bad_version_and_hostile_length() {
        let mut f = Request::Ping.encode();
        f[4] = 9;
        let hdr: [u8; FRAME_HEADER_BYTES] = f[..FRAME_HEADER_BYTES].try_into().unwrap();
        assert!(parse_header(&hdr).unwrap_err().message.contains("version"));

        let mut f = Request::Ping.encode();
        f[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let hdr: [u8; FRAME_HEADER_BYTES] = f[..FRAME_HEADER_BYTES].try_into().unwrap();
        assert!(parse_header(&hdr).unwrap_err().message.contains("cap"));
    }

    #[test]
    fn corrupted_frames_fail_the_crc_check() {
        let mut f = Request::Stats {
            session: "s".into(),
        }
        .encode();
        // Flip one payload bit: the header still parses, the CRC fails.
        f[FRAME_HEADER_BYTES] ^= 0x01;
        let hdr: [u8; FRAME_HEADER_BYTES] = f[..FRAME_HEADER_BYTES].try_into().unwrap();
        assert!(parse_header(&hdr).is_ok());
        assert!(split_frame(&f).unwrap_err().message.contains("CRC"));
    }

    #[test]
    fn malformed_payloads_decode_to_errors() {
        // Truncated create-session payload.
        assert!(Request::decode(OP_CREATE_SESSION, &[0, 0]).is_err());
        // Unknown opcode.
        assert!(Request::decode(0x7F, &[]).is_err());
        // Trailing garbage after a valid request.
        let f = Request::Ping.encode();
        let (_, _) = split_frame(&f).unwrap();
        assert!(Request::decode(OP_PING, &[1, 2, 3]).is_err());
        // Empty session name.
        let mut p = Vec::new();
        wire::put_str(&mut p, "");
        wire::put_u8(&mut p, 0);
        wire::put_u8(&mut p, 0);
        wire::put_bytes(&mut p, b"");
        wire::put_u8(&mut p, 0);
        wire::put_u16(&mut p, 2);
        wire::put_u16(&mut p, 2);
        wire::put_u64(&mut p, 0);
        assert!(Request::decode(OP_CREATE_SESSION, &p)
            .unwrap_err()
            .message
            .contains("empty session name"));
    }
}
