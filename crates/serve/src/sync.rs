//! Alias module for the serve runtime's concurrency primitives.
//!
//! Production builds alias straight to `std`; under `--cfg tn_check`
//! they route through the `tn-check` shims so the session-registry
//! eviction protocol can be model-checked. `tn-check lint` (TN025)
//! flags any bypass back to `std::sync`.

#[cfg(not(tn_check))]
pub(crate) use std::sync::{Arc, Condvar, Mutex};
#[cfg(tn_check)]
pub(crate) use tn_check::sync::{Arc, Condvar, Mutex};

pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::Ordering;

    #[cfg(not(tn_check))]
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64};
    #[cfg(tn_check)]
    pub(crate) use tn_check::sync::atomic::{AtomicBool, AtomicU64};
}
