//! A blocking client for the tn-serve protocol.
//!
//! [`Client`] speaks one connection. Requests and replies are strictly
//! paired; [`Response::TickUpdate`] frames from subscribed sessions may
//! arrive between a request and its reply, so the client buffers them —
//! [`Client::request`] returns the first *non-update* frame, and buffered
//! updates are consumed with [`Client::poll_update`] /
//! [`Client::wait_update`].

use crate::protocol::{
    parse_header, ProtocolError, Request, Response, TickUpdate, FRAME_HEADER_BYTES,
    FRAME_TRAILER_BYTES,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use tn_core::wire::InputEvent;

/// Client-side failures: transport errors or malformed server frames.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Protocol(ProtocolError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// An unsolicited frame from a subscribed session: either the next tick
/// of output, or notice that the session has moved to another server and
/// this stream is over.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// One tick of subscribed output.
    Tick(TickUpdate),
    /// The session was migrated: reconnect to `addr` and resubscribe.
    /// No further frames for this session follow on this connection.
    Redirect { session: String, addr: String },
}

/// One connection to a tn-serve server.
pub struct Client {
    stream: TcpStream,
    /// Tick updates that arrived while waiting for a reply.
    updates: VecDeque<TickUpdate>,
    /// Redirect notices captured from the subscription stream. Kept in
    /// a separate queue from ticks: a redirect is terminal for its
    /// session, so every buffered tick precedes every buffered redirect.
    redirects: VecDeque<(String, String)>,
    /// Steady-state read timeout restored after timed read sections.
    io_timeout: Option<Duration>,
}

/// Restores the configured socket read timeout when dropped, so every
/// exit path out of a timed read section — including early `?` returns —
/// reinstates the client's steady-state behaviour. Holds a dup'd handle
/// (the two handles share one socket, so options set through either
/// apply to both), which sidesteps borrowing the stream across
/// `&mut self` calls.
struct ReadTimeoutGuard(TcpStream, Option<Duration>);

impl Drop for ReadTimeoutGuard {
    fn drop(&mut self) {
        // Best effort: if the socket died, the timeout died with it.
        let _ = self.0.set_read_timeout(self.1);
    }
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Like [`Self::connect`] but bound by `timeout` per resolved
    /// address, so a black-holed target cannot hang the caller for the
    /// OS connect default (minutes). Used by the server's own migration
    /// path, where every phase has an explicit budget.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let mut last: Option<std::io::Error> = None;
        for sock in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock, timeout) {
                Ok(stream) => return Self::from_stream(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })))
    }

    fn from_stream(stream: TcpStream) -> Result<Client, ClientError> {
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            updates: VecDeque::new(),
            redirects: VecDeque::new(),
            io_timeout: None,
        })
    }

    /// Bound every socket read and write by `timeout` (`None` restores
    /// fully blocking I/O). With a timeout set, a hung peer surfaces as
    /// [`ClientError::Io`] instead of wedging the caller forever.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        self.io_timeout = timeout;
        Ok(())
    }

    /// Send a request and return its reply (never a tick update; updates
    /// received in the meantime are buffered).
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.stream.write_all(&req.encode())?;
        loop {
            match self.read_response()? {
                Response::TickUpdate(u) => self.updates.push_back(u),
                resp => return Ok(resp),
            }
        }
    }

    /// The next buffered tick update, if any (no I/O).
    pub fn poll_update(&mut self) -> Option<TickUpdate> {
        self.updates.pop_front()
    }

    /// Block until the next tick update arrives or `timeout` elapses.
    /// Redirect frames encountered on the stream are buffered for
    /// [`Self::wait_event`] / [`Self::poll_redirect`], not errors — a
    /// migrating session ends its stream with one.
    pub fn wait_update(&mut self, timeout: Duration) -> Result<Option<TickUpdate>, ClientError> {
        match self.wait_event(timeout)? {
            Some(SessionEvent::Tick(u)) => Ok(Some(u)),
            Some(SessionEvent::Redirect { session, addr }) => {
                // Terminal for the session: requeue for the caller who
                // asks, and report "no more ticks".
                self.redirects.push_back((session, addr));
                Ok(None)
            }
            None => Ok(None),
        }
    }

    /// The next buffered redirect notice, if any (no I/O).
    pub fn poll_redirect(&mut self) -> Option<(String, String)> {
        self.redirects.pop_front()
    }

    /// Block until the next subscription event — a tick or a redirect —
    /// arrives, or `timeout` elapses. Buffered ticks drain before
    /// buffered redirects: a redirect is terminal for its session, so
    /// every tick received logically precedes it.
    pub fn wait_event(&mut self, timeout: Duration) -> Result<Option<SessionEvent>, ClientError> {
        if let Some(u) = self.updates.pop_front() {
            return Ok(Some(SessionEvent::Tick(u)));
        }
        if let Some((session, addr)) = self.redirects.pop_front() {
            return Ok(Some(SessionEvent::Redirect { session, addr }));
        }
        let deadline = Instant::now() + timeout;
        let _guard = ReadTimeoutGuard(self.stream.try_clone()?, self.io_timeout);
        self.stream
            .set_read_timeout(Some(Duration::from_millis(20)))?;
        loop {
            match self.try_read_response() {
                Ok(Some(Response::TickUpdate(u))) => return Ok(Some(SessionEvent::Tick(u))),
                Ok(Some(Response::Redirect { session, addr })) => {
                    return Ok(Some(SessionEvent::Redirect { session, addr }))
                }
                Ok(Some(_)) => {
                    return Err(ClientError::Protocol(ProtocolError::new(
                        "unexpected non-stream frame while waiting for updates",
                    )))
                }
                Ok(None) => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut hdr = [0u8; FRAME_HEADER_BYTES];
        self.stream.read_exact(&mut hdr)?;
        let (opcode, len) = parse_header(&hdr)?;
        let mut body = vec![0u8; len as usize + FRAME_TRAILER_BYTES];
        self.stream.read_exact(&mut body)?;
        let h = tn_core::wire::framed::read_header(&hdr);
        let payload = tn_core::wire::framed::verify_body(&h, &body).map_err(ProtocolError::from)?;
        Ok(Response::decode(opcode, payload)?)
    }

    /// Like [`Self::read_response`] but `Ok(None)` on a read timeout
    /// before any byte arrived. A timeout mid-frame is an error.
    fn try_read_response(&mut self) -> Result<Option<Response>, ClientError> {
        let mut hdr = [0u8; FRAME_HEADER_BYTES];
        let mut at = 0;
        while at < hdr.len() {
            match self.stream.read(&mut hdr[at..]) {
                Ok(0) => return Err(ClientError::Io(std::io::ErrorKind::UnexpectedEof.into())),
                Ok(n) => at += n,
                Err(e)
                    if at == 0
                        && (e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut) =>
                {
                    return Ok(None)
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        let (opcode, len) = parse_header(&hdr)?;
        let mut body = vec![0u8; len as usize + FRAME_TRAILER_BYTES];
        let mut at = 0;
        while at < body.len() {
            match self.stream.read(&mut body[at..]) {
                Ok(0) => return Err(ClientError::Io(std::io::ErrorKind::UnexpectedEof.into())),
                Ok(n) => at += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        let h = tn_core::wire::framed::read_header(&hdr);
        let payload = tn_core::wire::framed::verify_body(&h, &body).map_err(ProtocolError::from)?;
        Ok(Some(Response::decode(opcode, payload)?))
    }

    // Convenience wrappers — thin sugar over `request`.

    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Ping)
    }

    pub fn create_session(
        &mut self,
        name: &str,
        engine: crate::protocol::Engine,
        pace: crate::protocol::Pace,
        source: crate::protocol::ModelSource,
    ) -> Result<Response, ClientError> {
        self.create_session_with_faults(name, engine, pace, source, "")
    }

    /// Create a session with a `tnfault 1` plan attached; the server
    /// lints the plan against the session's grid and rejects bad plans
    /// with [`crate::protocol::ErrorCode::ModelRejected`].
    pub fn create_session_with_faults(
        &mut self,
        name: &str,
        engine: crate::protocol::Engine,
        pace: crate::protocol::Pace,
        source: crate::protocol::ModelSource,
        fault_plan: &str,
    ) -> Result<Response, ClientError> {
        self.request(&Request::CreateSession {
            name: name.to_string(),
            engine,
            pace,
            source,
            fault_plan: fault_plan.to_string(),
        })
    }

    /// Create a session partitioned across `shards` worker processes by
    /// the server's `tn-shard` gateway; `shards == 0` means the server's
    /// configured default.
    pub fn create_sharded_session(
        &mut self,
        name: &str,
        pace: crate::protocol::Pace,
        source: crate::protocol::ModelSource,
        fault_plan: &str,
        shards: u16,
    ) -> Result<Response, ClientError> {
        self.request(&Request::CreateShardedSession {
            name: name.to_string(),
            pace,
            source,
            fault_plan: fault_plan.to_string(),
            shards,
        })
    }

    pub fn inject(
        &mut self,
        session: &str,
        events: &[InputEvent],
    ) -> Result<Response, ClientError> {
        self.request(&Request::InjectSpikes {
            session: session.to_string(),
            events: events.to_vec(),
        })
    }

    pub fn subscribe(&mut self, session: &str) -> Result<Response, ClientError> {
        self.request(&Request::Subscribe {
            session: session.to_string(),
        })
    }

    pub fn run_for(&mut self, session: &str, ticks: u64) -> Result<Response, ClientError> {
        self.request(&Request::RunFor {
            session: session.to_string(),
            ticks,
        })
    }

    pub fn step(&mut self, session: &str) -> Result<Response, ClientError> {
        self.run_for(session, 1)
    }

    pub fn snapshot(&mut self, session: &str) -> Result<Response, ClientError> {
        self.request(&Request::Snapshot {
            session: session.to_string(),
        })
    }

    pub fn restore(&mut self, session: &str, bytes: Vec<u8>) -> Result<Response, ClientError> {
        self.request(&Request::Restore {
            session: session.to_string(),
            bytes,
        })
    }

    pub fn stats(&mut self, session: &str) -> Result<Response, ClientError> {
        self.request(&Request::Stats {
            session: session.to_string(),
        })
    }

    /// Scrape the session's metrics registry; the reply is
    /// [`Response::MetricsData`] with Prometheus-style text exposition.
    pub fn metrics(&mut self, session: &str) -> Result<Response, ClientError> {
        self.request(&Request::GetMetrics {
            session: session.to_string(),
        })
    }

    pub fn close_session(&mut self, session: &str) -> Result<Response, ClientError> {
        self.request(&Request::CloseSession {
            session: session.to_string(),
        })
    }

    // Control-plane wrappers.

    /// Enumerate the server's live sessions ([`Response::SessionList`]).
    pub fn list_sessions(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::ListSessions)
    }

    /// Move `session` to the server at `target`; the reply is
    /// [`Response::Redirect`] on success.
    pub fn migrate(&mut self, session: &str, target: &str) -> Result<Response, ClientError> {
        self.request(&Request::MigrateSession {
            session: session.to_string(),
            target: target.to_string(),
        })
    }

    /// Drain the server: stop admitting sessions, migrate every live
    /// session to `target`, then shut down.
    pub fn drain(&mut self, target: &str) -> Result<Response, ClientError> {
        self.request(&Request::Drain {
            target: target.to_string(),
        })
    }

    /// Server-level status ([`Response::ServerStatusData`]).
    pub fn server_status(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::ServerStatus)
    }

    /// Write raw bytes on the wire — test hook for malformed-frame
    /// integration tests.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Read the next frame whatever it is — test hook paired with
    /// [`Self::send_raw`].
    pub fn read_any(&mut self) -> Result<Response, ClientError> {
        self.read_response()
    }
}
