//! The flight recorder: a bounded ring buffer of recent tick state.
//!
//! When a real-time session misses deadlines or sheds input, the
//! interesting evidence is what the *last few milliseconds* looked like
//! — after the fact. The recorder keeps the most recent N
//! [`TickFrame`]s at O(1) per tick and renders them as `# flight ...`
//! comment lines that ride along with the metrics exposition (comments
//! are ignored by the schema checker), so one `GetMetrics` scrape is a
//! complete post-mortem dump.

use crate::sync::Mutex;
use std::collections::VecDeque;

/// One tick's worth of spike/queue/deadline state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TickFrame {
    /// Tick index.
    pub tick: u64,
    /// Spikes emitted this tick.
    pub spikes_out: u64,
    /// Synaptic operations this tick.
    pub sops: u64,
    /// Axon events consumed this tick.
    pub axon_events: u64,
    /// Events still queued for future ticks after this tick ran.
    pub pending_inputs: u64,
    /// Cumulative dropped inputs (injection shed + out-of-grid) so far.
    pub dropped_inputs: u64,
    /// How late the tick started relative to its deadline (0 = on time).
    pub lateness_ns: u64,
    /// Deadlines newly missed at this tick (0 = on time).
    pub missed: u64,
}

struct Inner {
    frames: VecDeque<TickFrame>,
    cap: usize,
    recorded: u64,
}

/// A bounded ring buffer of [`TickFrame`]s.
pub struct FlightRecorder {
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// Default ring depth: a quarter second of the paper's 1 ms ticks.
    pub const DEFAULT_CAPACITY: usize = 256;

    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                frames: VecDeque::with_capacity(cap.max(1)),
                cap: cap.max(1),
                recorded: 0,
            }),
        }
    }

    /// Record one tick, evicting the oldest frame when full.
    pub fn record(&self, frame: TickFrame) {
        let mut inner = self.inner.lock().unwrap();
        if inner.frames.len() == inner.cap {
            inner.frames.pop_front();
        }
        inner.frames.push_back(frame);
        inner.recorded += 1;
    }

    /// Snapshot of the retained frames, oldest first.
    pub fn frames(&self) -> Vec<TickFrame> {
        self.inner.lock().unwrap().frames.iter().copied().collect()
    }

    /// Frames currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().cap
    }

    /// Total frames ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().recorded
    }

    /// Render the retained frames as `# flight ...` comment lines,
    /// oldest first, safe to append to a metrics exposition.
    pub fn render_text(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        out.push_str(&format!(
            "# flight-recorder frames={} recorded={} capacity={}\n",
            inner.frames.len(),
            inner.recorded,
            inner.cap
        ));
        for f in &inner.frames {
            out.push_str(&format!(
                "# flight tick={} spikes={} sops={} axons={} pending={} \
                 dropped={} lateness_ns={} missed={}\n",
                f.tick,
                f.spikes_out,
                f.sops,
                f.axon_events,
                f.pending_inputs,
                f.dropped_inputs,
                f.lateness_ns,
                f.missed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tick: u64) -> TickFrame {
        TickFrame {
            tick,
            spikes_out: tick * 2,
            ..Default::default()
        }
    }

    #[test]
    fn retains_last_n_frames() {
        let fr = FlightRecorder::new(4);
        for t in 0..10 {
            fr.record(frame(t));
        }
        let frames = fr.frames();
        assert_eq!(frames.len(), 4);
        assert_eq!(
            frames.iter().map(|f| f.tick).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(fr.recorded(), 10);
        assert_eq!(fr.capacity(), 4);
    }

    #[test]
    fn partial_fill_keeps_everything() {
        let fr = FlightRecorder::new(8);
        fr.record(frame(0));
        fr.record(frame(1));
        assert_eq!(fr.len(), 2);
        assert!(!fr.is_empty());
        assert_eq!(fr.frames()[0].tick, 0);
    }

    #[test]
    fn render_is_all_comments() {
        let fr = FlightRecorder::new(2);
        fr.record(TickFrame {
            tick: 5,
            spikes_out: 3,
            lateness_ns: 1200,
            missed: 1,
            ..Default::default()
        });
        let text = fr.render_text();
        assert!(text.lines().all(|l| l.starts_with('#')));
        assert!(text.contains("tick=5"));
        assert!(text.contains("lateness_ns=1200"));
        assert!(text.contains("missed=1"));
        // Riding along with an exposition must not break the validator.
        let combined = format!("# TYPE tn_a counter\ntn_a 1\n{text}");
        crate::registry::validate_exposition(&combined).expect("comments ignored");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let fr = FlightRecorder::new(0);
        fr.record(frame(1));
        fr.record(frame(2));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.frames()[0].tick, 2);
    }
}
