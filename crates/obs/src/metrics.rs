//! Metric primitives: counter, gauge, fixed-bucket histogram.
//!
//! All three are plain-atomic and lock-free on the update path; handles
//! are shared as `Arc`s so a hot loop caches its handle once and never
//! touches the registry map again. Ordering is `Relaxed` throughout:
//! metrics are statistical reads, not synchronization edges — the tick
//! loops already carry their own barriers.

use crate::sync::atomic::{AtomicU64, Ordering};

/// A monotonic counter.
///
/// `inc`/`add` are the normal update path. [`Counter::set`] exists to
/// *synchronise* the counter to an externally maintained monotonic total
/// (the legacy `TickStats`/`ChipReport` accumulators): it stores the
/// maximum of the current and given value so a stale publisher can never
/// move a counter backwards.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        // sync: a counter is a statistical total, never a
        // synchronization edge — every access below is Relaxed.
        Self(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        // sync: Relaxed — per-atomic modification order still totals
        // concurrent adds exactly; no other memory is published.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Synchronise to an external monotonic total (never moves backwards).
    pub fn set(&self, total: u64) {
        // sync: Relaxed fetch_max — monotonicity comes from the RMW
        // itself, not from ordering: a stale publisher's max can only
        // lose (model-checked in model_tests below).
        self.0.fetch_max(total, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        // sync: Relaxed — a scrape may lag concurrent updates, but the
        // single-atomic modification order keeps repeated reads from
        // one thread monotonic.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a last-write-wins `f64` stored as bits in an `AtomicU64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        // sync: last-write-wins telemetry value; all access Relaxed.
        Self(AtomicU64::new(0f64.to_bits()))
    }

    pub fn set(&self, v: f64) {
        // sync: Relaxed store — last writer wins; racing setters are a
        // data-quality question, not a memory-safety one.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        // sync: Relaxed — see set(); reads never order other memory.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket bounds are inclusive upper edges (`le` in the exposition);
/// an implicit `+Inf` bucket catches the tail. Buckets, count, and sum
/// are independent relaxed atomics: a scrape racing an `observe` may see
/// a sum without its bucket for one reading — acceptable for telemetry,
/// and each individual value is still exact once the loop quiesces.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // len = bounds.len() + 1 (+Inf tail)
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// `bounds` must be strictly increasing (checked).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Self {
            bounds: bounds.to_vec(),
            // sync: independent Relaxed atomics; a scrape racing
            // observe() may see a sum without its bucket for one
            // reading (documented above), never a torn value.
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Exponential bounds: `start, start*factor, ...` (`count` edges).
    pub fn exponential(start: u64, factor: u64, count: usize) -> Self {
        assert!(start > 0 && factor > 1, "need start > 0 and factor > 1");
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b = b.saturating_mul(factor);
        }
        bounds.dedup(); // saturation can repeat u64::MAX
        Self::new(&bounds)
    }

    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        // sync: three Relaxed RMWs with no cross-field ordering — each
        // total is exact once writers quiesce; mid-flight scrapes may
        // catch one field ahead of another.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        // sync: Relaxed telemetry read; see observe().
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        // sync: Relaxed telemetry read; see observe().
        self.sum.load(Ordering::Relaxed)
    }

    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts, `+Inf` tail last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        // sync: Relaxed telemetry reads; see observe().
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_monotonic_sync() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.set(3); // stale publisher must not regress
        assert_eq!(c.get(), 5);
        c.set(12);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-1.25e-3);
        assert_eq!(g.get(), -1.25e-3);
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_edge() {
        let h = Histogram::new(&[1, 10, 100]);
        for v in [0, 1, 2, 10, 11, 1000] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]); // le=1, le=10, le=100, +Inf
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1024);
    }

    #[test]
    fn exponential_bounds() {
        let h = Histogram::exponential(1_000, 4, 6);
        assert_eq!(
            h.bounds(),
            &[1_000, 4_000, 16_000, 64_000, 256_000, 1_024_000]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[10, 5]);
    }

    #[test]
    fn concurrent_updates_sum() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}

/// Model-checked protocol tests (run with `RUSTFLAGS="--cfg tn_check"`):
/// the counter monotonic-set protocol — `set` (fetch_max sync from an
/// external total) racing `add` and readers — explored across
/// interleavings, including an exhaustive DFS of the small config.
#[cfg(all(test, tn_check))]
mod model_tests {
    use super::*;
    use crate::sync::Arc;

    fn schedules(default: u64) -> u64 {
        std::env::var("TN_CHECK_SCHEDULES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// One publisher syncing to total 10, one publisher syncing to a
    /// stale total 7 then adding 5 of its own, and a reader checking
    /// monotonicity. The max-based set admits exactly two final values:
    /// 15 (both maxes land before the add) or 12 (the add lands between
    /// the stale max and the fresh one, so max(12, 10) keeps 12).
    fn monotonic_set_race() {
        let c = Arc::new(Counter::new());
        let fresh = {
            let c = Arc::clone(&c);
            tn_check::thread::spawn(move || c.set(10))
        };
        let stale = {
            let c = Arc::clone(&c);
            tn_check::thread::spawn(move || {
                c.set(7);
                c.add(5);
            })
        };
        let reader = {
            let c = Arc::clone(&c);
            tn_check::thread::spawn(move || {
                let r1 = c.get();
                let r2 = c.get();
                assert!(r2 >= r1, "counter regressed between reads: {r1} -> {r2}");
            })
        };
        fresh.join().unwrap();
        stale.join().unwrap();
        reader.join().unwrap();
        let v = c.get();
        assert!(v == 12 || v == 15, "unexpected final counter value {v}");
    }

    #[test]
    fn model_counter_monotonic_set() {
        let n = schedules(400);
        let report = tn_check::check_random(
            &tn_check::Config::default(),
            n,
            0x00B5_C0DE,
            monotonic_set_race,
        );
        report.assert_ok();
        assert_eq!(report.schedules, n);
        println!(
            "model_counter_monotonic_set: {} clean schedules",
            report.schedules
        );
    }

    #[test]
    fn model_counter_monotonic_set_dfs() {
        // Publishers only (no reader thread): small enough to sweep
        // the whole schedule space exhaustively.
        let report = tn_check::check_dfs(&tn_check::Config::default(), 150_000, || {
            let c = Arc::new(Counter::new());
            let c2 = Arc::clone(&c);
            let fresh = tn_check::thread::spawn(move || c2.set(10));
            c.set(7);
            c.add(5);
            fresh.join().unwrap();
            let v = c.get();
            assert!(v == 12 || v == 15, "unexpected final counter value {v}");
        });
        report.assert_ok();
        println!(
            "model_counter_dfs: {} schedules, exhausted={}",
            report.schedules, report.exhausted
        );
    }
}
