//! Structured tracing facade: per-tick span hooks.
//!
//! Every engine expression (reference, parallel, chip) drives the same
//! blueprint tick loop; [`TickObserver`] lets a host watch that loop
//! without perturbing it. Hooks are called synchronously from the tick
//! thread, so implementations must be cheap and non-blocking — counter
//! bumps, ring-buffer writes, channel try-sends. The engines hold the
//! observer behind an `Option<Arc<..>>`: when unset, the hooks cost one
//! branch per tick.

use std::fmt;

/// The phases of one blueprint tick, in execution order.
///
/// Not every engine visits every phase (the abstract reference engine
/// has no routing mesh; the parallel engine's interior worker phases are
/// merged into [`TickPhase::Merge`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TickPhase {
    /// Fault-plan advance and structural mutation.
    Faults,
    /// External input delivery from the host/injection queue.
    Input,
    /// Neuron integrate/leak/threshold evaluation across cores.
    Neurons,
    /// Spike routing (crossbar fanout, mesh hops, merge/split I/O).
    Routing,
    /// Cross-worker merge/barrier (parallel engine only).
    Merge,
}

impl fmt::Display for TickPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TickPhase::Faults => "faults",
            TickPhase::Input => "input",
            TickPhase::Neurons => "neurons",
            TickPhase::Routing => "routing",
            TickPhase::Merge => "merge",
        };
        f.write_str(s)
    }
}

/// What one tick did, reported at `on_tick_end`.
///
/// The event fields are *deltas for this tick* (they sum to the legacy
/// `RunStats::totals` accumulators), so observers can maintain their own
/// monotonic counters without reaching into engine internals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TickSummary {
    /// The tick that just completed.
    pub tick: u64,
    /// Axon events consumed this tick.
    pub axon_events: u64,
    /// Synaptic operations this tick.
    pub sops: u64,
    /// Neurons evaluated this tick.
    pub neuron_updates: u64,
    /// Spikes emitted this tick.
    pub spikes_out: u64,
    /// PRNG draws consumed this tick.
    pub prng_draws: u64,
}

/// Per-tick span hooks. All methods have empty defaults so observers
/// implement only what they need.
pub trait TickObserver: Send + Sync {
    /// The engine is about to simulate `tick`.
    fn on_tick_start(&self, _tick: u64) {}
    /// The engine entered `phase` of `tick`.
    fn on_phase(&self, _tick: u64, _phase: TickPhase) {}
    /// The engine finished a tick; `summary` holds this tick's deltas.
    fn on_tick_end(&self, _summary: &TickSummary) {}
}

/// An observer that ignores everything (useful as a default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl TickObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::Arc;

    // sync: test-only call tallies; Relaxed suffices for counting.
    #[derive(Default)]
    struct CountingObserver {
        starts: AtomicU64,
        phases: AtomicU64,
        ends: AtomicU64,
        spikes: AtomicU64,
    }

    impl TickObserver for CountingObserver {
        fn on_tick_start(&self, _tick: u64) {
            // sync: Relaxed test tally.
            self.starts.fetch_add(1, Ordering::Relaxed);
        }
        fn on_phase(&self, _tick: u64, _phase: TickPhase) {
            // sync: Relaxed test tally.
            self.phases.fetch_add(1, Ordering::Relaxed);
        }
        fn on_tick_end(&self, summary: &TickSummary) {
            // sync: Relaxed test tallies.
            self.ends.fetch_add(1, Ordering::Relaxed);
            self.spikes.fetch_add(summary.spikes_out, Ordering::Relaxed);
        }
    }

    #[test]
    fn observer_is_object_safe_and_accumulates() {
        let obs = Arc::new(CountingObserver::default());
        let dyn_obs: Arc<dyn TickObserver> = obs.clone();
        dyn_obs.on_tick_start(0);
        dyn_obs.on_phase(0, TickPhase::Input);
        dyn_obs.on_phase(0, TickPhase::Neurons);
        dyn_obs.on_tick_end(&TickSummary {
            tick: 0,
            spikes_out: 3,
            ..Default::default()
        });
        // sync: Relaxed test-tally reads; no concurrency in this test.
        assert_eq!(obs.starts.load(Ordering::Relaxed), 1);
        assert_eq!(obs.phases.load(Ordering::Relaxed), 2);
        assert_eq!(obs.ends.load(Ordering::Relaxed), 1);
        assert_eq!(obs.spikes.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn null_observer_is_a_no_op() {
        let obs: Arc<dyn TickObserver> = Arc::new(NullObserver);
        obs.on_tick_start(7);
        obs.on_phase(7, TickPhase::Merge);
        obs.on_tick_end(&TickSummary::default());
    }

    #[test]
    fn phase_display_names() {
        assert_eq!(TickPhase::Faults.to_string(), "faults");
        assert_eq!(TickPhase::Routing.to_string(), "routing");
    }
}
