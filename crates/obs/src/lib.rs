//! tn-obs: observability for the neurosynaptic stack.
//!
//! The paper's entire evaluation (Figs. 5–9) depends on *measuring* the
//! running kernel — active power vs. firing rate × synapses/neuron,
//! deadline behaviour at the real-time 1 ms tick, Compass-vs-TrueNorth
//! speedup — yet counters alone don't make a live system debuggable.
//! Following the telemetry discipline of real-time neuromorphic serving
//! work (SpiNNaker's cortical runs instrument deadline misses and queue
//! occupancy first), this crate supplies three small, dependency-free
//! primitives:
//!
//! - [`Registry`] — a named registry of monotonic [`Counter`]s, [`Gauge`]s
//!   and fixed-bucket [`Histogram`]s, all plain `std::sync::atomic`
//!   (lock-cheap: the registry map locks only on get-or-create, never on
//!   the update path), rendered as Prometheus-style text exposition by
//!   [`Registry::render_text`] and checked by [`validate_exposition`];
//! - [`TickObserver`] — a structured tracing facade with per-tick span
//!   hooks (`on_tick_start` / `on_phase` / `on_tick_end`) implemented by
//!   the reference, parallel, and chip engines;
//! - [`FlightRecorder`] — a bounded ring buffer capturing the last N
//!   ticks of spike/queue/deadline state for post-mortem dumps.
//!
//! Consistent with the PR-1 zero-dependency rule, this crate uses only
//! `std` (plus the in-workspace `tn-check` shims under `--cfg
//! tn_check`, where the counter synchronisation protocol is
//! model-checked).

pub mod flight;
pub mod metrics;
pub mod registry;
pub mod span;
pub(crate) mod sync;

pub use flight::{FlightRecorder, TickFrame};
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{validate_exposition, ExpositionSummary, Registry};
pub use span::{NullObserver, TickObserver, TickPhase, TickSummary};
