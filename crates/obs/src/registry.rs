//! The metrics registry and its text exposition format.
//!
//! A [`Registry`] maps metric names (plus optional labels) to shared
//! [`Counter`]/[`Gauge`]/[`Histogram`] handles. The map itself is behind
//! a `Mutex`, but the mutex is touched only on get-or-create and on
//! scrape — the update path goes through the returned `Arc` handles and
//! is lock-free. Exposition is Prometheus-style text
//! ([`Registry::render_text`]); [`validate_exposition`] is the matching
//! schema checker used by CI's `obs-smoke` job and the integration
//! tests.

use crate::sync::{Arc, Mutex};
use std::collections::BTreeMap;

use crate::metrics::{Counter, Gauge, Histogram};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    kind: Kind,
    /// Keyed by the rendered label set (`""` for an unlabelled series).
    series: BTreeMap<String, Series>,
}

/// A named registry of metrics.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Family>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a label set to its canonical key (sorted by label name).
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        assert!(
            valid_name(k) && !k.contains(':'),
            "invalid label name: {k:?}"
        );
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> Series,
    ) -> Series {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        let key = label_key(labels);
        let mut map = self.inner.lock().unwrap();
        let fam = map.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric {name:?} already registered as {} (wanted {})",
            fam.kind.as_str(),
            kind.as_str()
        );
        fam.series.entry(key).or_insert_with(make).clone()
    }

    /// Get or create an unlabelled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or create a counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, labels, Kind::Counter, || {
            Series::Counter(Arc::new(Counter::new()))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get or create an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get or create a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, Kind::Gauge, || {
            Series::Gauge(Arc::new(Gauge::new()))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get or create an unlabelled histogram with the given bucket bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.histogram_with(name, &[], bounds)
    }

    /// Get or create a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        let h = match self.get_or_insert(name, labels, Kind::Histogram, || {
            Series::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        };
        assert!(
            h.bounds() == bounds,
            "histogram {name:?} already registered with different bounds"
        );
        h
    }

    /// Register an externally owned histogram (e.g. one embedded in a
    /// worker pool) under `name`. Re-registering the same name replaces
    /// the handle, so republishing on every scrape is idempotent.
    pub fn register_histogram(&self, name: &str, labels: &[(&str, &str)], h: Arc<Histogram>) {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        let key = label_key(labels);
        let mut map = self.inner.lock().unwrap();
        let fam = map.entry(name.to_string()).or_insert_with(|| Family {
            kind: Kind::Histogram,
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == Kind::Histogram,
            "metric {name:?} already registered as {}",
            fam.kind.as_str()
        );
        fam.series.insert(key, Series::Histogram(h));
    }

    /// Read a counter's value (`None` if absent). Test/audit helper.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let map = self.inner.lock().unwrap();
        match map.get(name)?.series.get(&label_key(labels))? {
            Series::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Read a gauge's value (`None` if absent). Test/audit helper.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let map = self.inner.lock().unwrap();
        match map.get(name)?.series.get(&label_key(labels))? {
            Series::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }

    /// Render the whole registry as Prometheus-style text exposition.
    ///
    /// Histogram `_count` is derived from the bucket totals so one
    /// rendering is always internally consistent even if an `observe`
    /// races the scrape.
    pub fn render_text(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, fam) in map.iter() {
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.as_str()));
            for (labels, series) in fam.series.iter() {
                let suffixed = |suffix: &str, extra: Option<(&str, String)>| -> String {
                    let mut l = labels.clone();
                    if let Some((k, v)) = extra {
                        if !l.is_empty() {
                            l.push(',');
                        }
                        l.push_str(&format!("{k}=\"{v}\""));
                    }
                    if l.is_empty() {
                        format!("{name}{suffix}")
                    } else {
                        format!("{name}{suffix}{{{l}}}")
                    }
                };
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{} {}\n", suffixed("", None), c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{} {}\n", suffixed("", None), g.get()));
                    }
                    Series::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cum = 0u64;
                        for (i, bound) in h.bounds().iter().enumerate() {
                            cum += counts[i];
                            out.push_str(&format!(
                                "{} {cum}\n",
                                suffixed("_bucket", Some(("le", bound.to_string())))
                            ));
                        }
                        cum += counts[h.bounds().len()];
                        out.push_str(&format!(
                            "{} {cum}\n",
                            suffixed("_bucket", Some(("le", "+Inf".into())))
                        ));
                        out.push_str(&format!("{} {}\n", suffixed("_sum", None), h.sum()));
                        out.push_str(&format!("{} {cum}\n", suffixed("_count", None)));
                    }
                }
            }
        }
        out
    }
}

/// Summary returned by a successful [`validate_exposition`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// Number of `# TYPE` families declared.
    pub families: usize,
    /// Number of sample lines.
    pub samples: usize,
}

/// A parsed sample line: `(name, label_pairs, value)`.
type Sample = (String, Vec<(String, String)>, f64);

/// Parse one sample line into `(name, label_pairs, value)`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let err = |m: &str| format!("{m}: {line:?}");
    let (name_end, has_labels) = match line.find(['{', ' ']) {
        Some(i) => (i, line.as_bytes()[i] == b'{'),
        None => return Err(err("sample missing value")),
    };
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    let rest = if has_labels {
        let body_start = name_end + 1;
        // Scan for the closing brace, honoring quoted/escaped values.
        let bytes = line.as_bytes();
        let mut i = body_start;
        let mut in_quotes = false;
        let mut escaped = false;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if escaped {
                escaped = false;
            } else if in_quotes && c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_quotes = !in_quotes;
            } else if c == '}' && !in_quotes {
                break;
            }
            i += 1;
        }
        if i >= bytes.len() {
            return Err(err("unterminated label set"));
        }
        let body = &line[body_start..i];
        if !body.is_empty() {
            for pair in split_label_pairs(body).map_err(|m| err(&m))? {
                let (k, v) = pair;
                if !valid_name(&k) || k.contains(':') {
                    return Err(err("invalid label name"));
                }
                labels.push((k, v));
            }
        }
        &line[i + 1..]
    } else {
        &line[name_end..]
    };
    let value_str = rest.trim();
    if value_str.is_empty() {
        return Err(err("sample missing value"));
    }
    let value: f64 = value_str
        .parse()
        .map_err(|_| err("sample value is not a number"))?;
    Ok((name.to_string(), labels, value))
}

/// Split `k1="v1",k2="v2"` into pairs, honoring escapes inside values.
fn split_label_pairs(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = body;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label pair missing '='".to_string())?;
        let key = rest[..eq].to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err("label value must be quoted".into());
        }
        let bytes = after.as_bytes();
        let mut i = 1;
        let mut val = String::new();
        let mut closed = false;
        while i < bytes.len() {
            match bytes[i] as char {
                '\\' => {
                    if i + 1 >= bytes.len() {
                        return Err("dangling escape in label value".into());
                    }
                    let c = bytes[i + 1] as char;
                    val.push(match c {
                        'n' => '\n',
                        c => c,
                    });
                    i += 2;
                }
                '"' => {
                    closed = true;
                    i += 1;
                    break;
                }
                c => {
                    val.push(c);
                    i += 1;
                }
            }
        }
        if !closed {
            return Err("unterminated label value".into());
        }
        pairs.push((key, val));
        rest = &after[i..];
        if rest.is_empty() {
            return Ok(pairs);
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| "expected ',' between label pairs".to_string())?;
    }
}

/// Schema-check a text exposition produced by [`Registry::render_text`].
///
/// Rules enforced:
/// - every sample belongs to a family declared by a preceding
///   `# TYPE <name> <counter|gauge|histogram>` line (histogram samples
///   match `<base>_bucket` / `<base>_sum` / `<base>_count`);
/// - no family is declared twice;
/// - counter samples are finite and non-negative;
/// - each histogram series has strictly increasing `le` edges ending in
///   `+Inf`, cumulative bucket counts are non-decreasing, the `+Inf`
///   bucket equals `_count`, and `_sum`/`_count` are present.
///
/// Other `#` lines are comments (the flight-recorder dump rides along as
/// `# flight ...` lines) and are ignored.
pub fn validate_exposition(text: &str) -> Result<ExpositionSummary, String> {
    let mut kinds: BTreeMap<String, Kind> = BTreeMap::new();
    // (base name, non-le labels) -> (le edges seen, cumulative counts,
    // sum present, count value).
    struct HistSeries {
        buckets: Vec<(f64, f64)>, // (le, cumulative count)
        sum: Option<f64>,
        count: Option<f64>,
    }
    let mut hists: BTreeMap<(String, String), HistSeries> = BTreeMap::new();
    let mut samples = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let at = |m: String| format!("line {}: {m}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| at("TYPE missing name".into()))?;
            let kind = match it.next() {
                Some("counter") => Kind::Counter,
                Some("gauge") => Kind::Gauge,
                Some("histogram") => Kind::Histogram,
                other => return Err(at(format!("bad TYPE kind {other:?}"))),
            };
            if !valid_name(name) {
                return Err(at(format!("invalid family name {name:?}")));
            }
            if kinds.insert(name.to_string(), kind).is_some() {
                return Err(at(format!("duplicate TYPE for {name:?}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // comment (flight-recorder dump etc.)
        }
        let (name, labels, value) = parse_sample(line).map_err(&at)?;
        samples += 1;
        // Resolve the owning family.
        if let Some(kind) = kinds.get(&name) {
            match kind {
                Kind::Counter => {
                    if !value.is_finite() || value < 0.0 {
                        return Err(at(format!("counter {name} has bad value {value}")));
                    }
                }
                Kind::Gauge => {}
                Kind::Histogram => {
                    return Err(at(format!(
                        "histogram family {name} sampled without _bucket/_sum/_count"
                    )));
                }
            }
            continue;
        }
        let (base, part) = if let Some(b) = name.strip_suffix("_bucket") {
            (b, "bucket")
        } else if let Some(b) = name.strip_suffix("_sum") {
            (b, "sum")
        } else if let Some(b) = name.strip_suffix("_count") {
            (b, "count")
        } else {
            return Err(at(format!("sample {name} has no preceding TYPE")));
        };
        if kinds.get(base) != Some(&Kind::Histogram) {
            return Err(at(format!("sample {name} has no preceding TYPE")));
        }
        let mut le: Option<f64> = None;
        let mut rest_labels: Vec<String> = Vec::new();
        for (k, v) in &labels {
            if k == "le" {
                le = Some(if v == "+Inf" {
                    f64::INFINITY
                } else {
                    v.parse()
                        .map_err(|_| at(format!("bad le value {v:?} on {name}")))?
                });
            } else {
                rest_labels.push(format!("{k}={v}"));
            }
        }
        let series_key = (base.to_string(), rest_labels.join(","));
        let entry = hists.entry(series_key).or_insert(HistSeries {
            buckets: Vec::new(),
            sum: None,
            count: None,
        });
        match part {
            "bucket" => {
                let le = le.ok_or_else(|| at(format!("{name} bucket missing le label")))?;
                entry.buckets.push((le, value));
            }
            "sum" => entry.sum = Some(value),
            "count" => entry.count = Some(value),
            _ => unreachable!(),
        }
    }

    for ((base, labels), h) in &hists {
        let ctx = if labels.is_empty() {
            base.clone()
        } else {
            format!("{base}{{{labels}}}")
        };
        if h.buckets.is_empty() {
            return Err(format!("histogram {ctx} has no buckets"));
        }
        for w in h.buckets.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("histogram {ctx} le edges not increasing"));
            }
            if w[1].1 < w[0].1 {
                return Err(format!("histogram {ctx} cumulative counts decrease"));
            }
        }
        let (last_le, last_cum) = *h.buckets.last().unwrap();
        if last_le != f64::INFINITY {
            return Err(format!("histogram {ctx} missing le=\"+Inf\" bucket"));
        }
        let count = h
            .count
            .ok_or_else(|| format!("histogram {ctx} missing _count"))?;
        if h.sum.is_none() {
            return Err(format!("histogram {ctx} missing _sum"));
        }
        if last_cum != count {
            return Err(format!(
                "histogram {ctx}: +Inf bucket {last_cum} != _count {count}"
            ));
        }
    }

    Ok(ExpositionSummary {
        families: kinds.len(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("tn_ticks_total");
        let b = reg.counter("tn_ticks_total");
        a.add(3);
        assert_eq!(b.get(), 3);
        assert_eq!(reg.counter_value("tn_ticks_total", &[]), Some(3));
    }

    #[test]
    fn labelled_series_are_distinct() {
        let reg = Registry::new();
        reg.counter_with("tn_tier_total", &[("tier", "split")])
            .add(5);
        reg.counter_with("tn_tier_total", &[("tier", "scalar")])
            .inc();
        assert_eq!(
            reg.counter_value("tn_tier_total", &[("tier", "split")]),
            Some(5)
        );
        assert_eq!(
            reg.counter_value("tn_tier_total", &[("tier", "scalar")]),
            Some(1)
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("tn_x");
        reg.gauge("tn_x");
    }

    #[test]
    fn render_and_validate_round_trip() {
        let reg = Registry::new();
        reg.counter("tn_ticks_total").add(7);
        reg.counter_with("tn_tier_total", &[("tier", "split")])
            .add(4);
        reg.gauge("tn_wall_seconds").set(1.5);
        let h = reg.histogram("tn_jitter_ns", &[1_000, 1_000_000]);
        h.observe(10);
        h.observe(2_000_000);
        let text = reg.render_text();
        let summary = validate_exposition(&text).expect("valid exposition");
        assert_eq!(summary.families, 4);
        assert!(text.contains("tn_ticks_total 7"));
        assert!(text.contains("tn_tier_total{tier=\"split\"} 4"));
        assert!(text.contains("tn_jitter_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("tn_jitter_ns_count 2"));
    }

    #[test]
    fn comments_are_ignored_by_validator() {
        let text = "# TYPE tn_a counter\n# flight tick=3 missed=0\ntn_a 1\n";
        assert!(validate_exposition(text).is_ok());
    }

    #[test]
    fn validator_rejects_untyped_samples() {
        let err = validate_exposition("tn_a 1\n").unwrap_err();
        assert!(err.contains("no preceding TYPE"), "{err}");
    }

    #[test]
    fn validator_rejects_negative_counter() {
        let err = validate_exposition("# TYPE tn_a counter\ntn_a -1\n").unwrap_err();
        assert!(err.contains("bad value"), "{err}");
    }

    #[test]
    fn validator_rejects_histogram_without_inf() {
        let text = "# TYPE tn_h histogram\n\
                    tn_h_bucket{le=\"10\"} 1\ntn_h_sum 5\ntn_h_count 1\n";
        let err = validate_exposition(text).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }

    #[test]
    fn validator_rejects_count_mismatch() {
        let text = "# TYPE tn_h histogram\n\
                    tn_h_bucket{le=\"10\"} 1\ntn_h_bucket{le=\"+Inf\"} 1\n\
                    tn_h_sum 5\ntn_h_count 2\n";
        let err = validate_exposition(text).unwrap_err();
        assert!(err.contains("!= _count"), "{err}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "# TYPE tn_a widget\ntn_a 1\n",
            "# TYPE tn_a counter\ntn_a\n",
            "# TYPE tn_a counter\ntn_a{x=\"1\" 1\n",
            "# TYPE tn_a counter\ntn_a{=\"1\"} 1\n",
            "# TYPE tn_a counter\n# TYPE tn_a counter\n",
            "# TYPE tn_a counter\ntn_a one\n",
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escaped_label_values_survive_round_trip() {
        let reg = Registry::new();
        reg.counter_with("tn_a", &[("path", "a\"b\\c\nd")]).inc();
        let text = reg.render_text();
        validate_exposition(&text).expect("valid");
    }
}
