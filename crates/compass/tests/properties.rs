//! Property-style tests of the Compass simulator layer, run over many
//! SplitMix64-seeded random cases (seeds fixed for reproducibility).

use tn_compass::partition::{owner_of, weighted_split_points};
use tn_compass::{ParallelSim, ReferenceSim, SpikeRecord};
use tn_core::network::NullSource;
use tn_core::{
    CoreConfig, CoreId, Crossbar, Dest, NetworkBuilder, NeuronConfig, SpikeTarget, SplitMix64,
};

/// The weighted partitioner always produces a valid cover: ascending
/// non-overlapping non-empty ranges whose union is the whole array, and
/// owner lookup agrees with range membership.
#[test]
fn partitioner_produces_valid_cover() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x9A51 + case);
        let len = 1 + rng.below_usize(299);
        let weights: Vec<u64> = (0..len).map(|_| rng.below(1000)).collect();
        let n = 1 + rng.below_usize(39);
        let starts = weighted_split_points(&weights, n);
        assert!(!starts.is_empty(), "case {case}");
        assert_eq!(starts[0], 0, "case {case}");
        assert!(starts.len() <= n.min(weights.len()), "case {case}");
        assert!(
            starts.windows(2).all(|w| w[0] < w[1]),
            "case {case}: {starts:?}"
        );
        assert!(*starts.last().unwrap() < weights.len(), "case {case}");
        for idx in 0..weights.len() {
            let k = owner_of(&starts, idx);
            assert!(idx >= starts[k], "case {case}");
            if k + 1 < starts.len() {
                assert!(idx < starts[k + 1], "case {case}");
            }
        }
    }
}

/// Partition balance: with uniform weights no range is more than 2× the
/// ideal size.
#[test]
fn partitioner_balances_uniform_loads() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xBA7A + case);
        let len = 10 + rng.below_usize(390);
        let n = 1 + rng.below_usize(15);
        let weights = vec![7u64; len];
        let starts = weighted_split_points(&weights, n);
        let k = starts.len();
        let ideal = len as f64 / k as f64;
        for i in 0..k {
            let end = starts.get(i + 1).copied().unwrap_or(len);
            let size = (end - starts[i]) as f64;
            assert!(
                size <= 2.0 * ideal + 1.0,
                "case {case} range {i}: {size} vs ideal {ideal}"
            );
        }
    }
}

/// SpikeRecord digests are permutation-invariant, content-sensitive.
#[test]
fn spike_record_digest_properties() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0xD167 + case);
        let n = 1 + rng.below_usize(99);
        let events: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.below(1000), rng.below(100) as u32))
            .collect();
        let mut a = SpikeRecord::new();
        for &(t, p) in &events {
            a.push(t, p);
        }
        // A permuted insertion order gives the same digest.
        let mut shuffled = events.clone();
        let (x, y) = (rng.below_usize(n), rng.below_usize(n));
        shuffled.swap(x, y);
        let mut b = SpikeRecord::new();
        for &(t, p) in &shuffled {
            b.push(t, p);
        }
        assert_eq!(a.digest(), b.digest(), "case {case}");
        // Adding one more event changes it.
        b.push(5000, 7);
        assert_ne!(a.digest(), b.digest(), "case {case}");
    }
}

/// Parallel simulation with an arbitrary thread count matches the
/// reference for arbitrary ring-ish topologies.
#[test]
fn parallel_matches_reference_for_random_topologies() {
    let mut rng = SplitMix64::new(0x7093);
    for case in 0..10 {
        let threads = 1 + rng.below_usize(8);
        let rate = 5 + rng.below(55) as u8;
        let fan_seed = rng.next_u32();
        let ticks = 10 + rng.below(50);
        let mk = || {
            let mut b = NetworkBuilder::new(3, 2, fan_seed as u64);
            for c in 0..6u32 {
                let mut cfg = CoreConfig::new();
                *cfg.crossbar = Crossbar::from_fn(|i, j| {
                    (i as u32)
                        .wrapping_mul(7)
                        .wrapping_add(j as u32)
                        .wrapping_add(fan_seed)
                        .is_multiple_of(9)
                });
                for j in 0..256 {
                    cfg.neurons[j] = NeuronConfig::stochastic_source(rate);
                    cfg.neurons[j].weights = [0; 4];
                    cfg.neurons[j].dest = Dest::Axon(SpikeTarget::new(
                        CoreId((c + 1 + (j as u32 % 3)) % 6),
                        (j as u32).wrapping_mul(31) as u8,
                        1 + (j % 15) as u8,
                    ));
                }
                b.add_core(cfg);
            }
            b.build()
        };
        let mut reference = ReferenceSim::new(mk());
        reference.run(ticks, &mut NullSource);
        let mut par = ParallelSim::new(mk(), threads);
        par.run(ticks, &mut NullSource);
        assert_eq!(
            reference.network().state_digest(),
            par.network().state_digest(),
            "case {case} threads {threads}"
        );
        assert_eq!(
            reference.stats().totals.spikes_out,
            par.stats().totals.spikes_out,
            "case {case} threads {threads}"
        );
    }
}
