//! Property-based tests of the Compass simulator layer.

use proptest::prelude::*;
use tn_compass::partition::{owner_of, weighted_split_points};
use tn_compass::{ParallelSim, ReferenceSim, SpikeRecord};
use tn_core::network::NullSource;
use tn_core::{
    CoreConfig, CoreId, Crossbar, Dest, NetworkBuilder, NeuronConfig, SpikeTarget,
};

proptest! {
    /// The weighted partitioner always produces a valid cover: ascending
    /// non-overlapping non-empty ranges whose union is the whole array,
    /// and owner lookup agrees with range membership.
    #[test]
    fn partitioner_produces_valid_cover(
        weights in prop::collection::vec(0u64..1000, 1..300),
        n in 1usize..40,
    ) {
        let starts = weighted_split_points(&weights, n);
        prop_assert!(!starts.is_empty());
        prop_assert_eq!(starts[0], 0);
        prop_assert!(starts.len() <= n.min(weights.len()));
        prop_assert!(starts.windows(2).all(|w| w[0] < w[1]), "{:?}", starts);
        prop_assert!(*starts.last().unwrap() < weights.len());
        for idx in 0..weights.len() {
            let k = owner_of(&starts, idx);
            prop_assert!(idx >= starts[k]);
            if k + 1 < starts.len() {
                prop_assert!(idx < starts[k + 1]);
            }
        }
    }

    /// Partition balance: with uniform weights no range is more than 2×
    /// the ideal size.
    #[test]
    fn partitioner_balances_uniform_loads(len in 10usize..400, n in 1usize..16) {
        let weights = vec![7u64; len];
        let starts = weighted_split_points(&weights, n);
        let k = starts.len();
        let ideal = len as f64 / k as f64;
        for i in 0..k {
            let end = starts.get(i + 1).copied().unwrap_or(len);
            let size = (end - starts[i]) as f64;
            prop_assert!(size <= 2.0 * ideal + 1.0, "range {i}: {size} vs ideal {ideal}");
        }
    }

    /// SpikeRecord digests are permutation-invariant, content-sensitive.
    #[test]
    fn spike_record_digest_properties(
        events in prop::collection::vec((0u64..1000, 0u32..100), 1..100),
        swap_a in 0usize..100,
        swap_b in 0usize..100,
    ) {
        let mut a = SpikeRecord::new();
        for &(t, p) in &events {
            a.push(t, p);
        }
        // A permuted insertion order gives the same digest.
        let mut shuffled = events.clone();
        let (x, y) = (swap_a % events.len(), swap_b % events.len());
        shuffled.swap(x, y);
        let mut b = SpikeRecord::new();
        for &(t, p) in &shuffled {
            b.push(t, p);
        }
        prop_assert_eq!(a.digest(), b.digest());
        // Adding one more event changes it.
        b.push(5000, 7);
        prop_assert_ne!(a.digest(), b.digest());
    }

    /// Parallel simulation with an arbitrary thread count matches the
    /// reference for arbitrary ring-ish topologies.
    #[test]
    fn parallel_matches_reference_for_random_topologies(
        threads in 1usize..9,
        rate in 5u8..60,
        fan_seed in any::<u32>(),
        ticks in 10u64..60,
    ) {
        let mk = || {
            let mut b = NetworkBuilder::new(3, 2, fan_seed as u64);
            for c in 0..6u32 {
                let mut cfg = CoreConfig::new();
                *cfg.crossbar = Crossbar::from_fn(|i, j| {
                    (i as u32).wrapping_mul(7).wrapping_add(j as u32)
                        .wrapping_add(fan_seed) % 9 == 0
                });
                for j in 0..256 {
                    cfg.neurons[j] = NeuronConfig::stochastic_source(rate);
                    cfg.neurons[j].weights = [0; 4];
                    cfg.neurons[j].dest = Dest::Axon(SpikeTarget::new(
                        CoreId((c + 1 + (j as u32 % 3)) % 6),
                        (j as u32).wrapping_mul(31) as u8,
                        1 + (j % 15) as u8,
                    ));
                }
                b.add_core(cfg);
            }
            b.build()
        };
        let mut reference = ReferenceSim::new(mk());
        reference.run(ticks, &mut NullSource);
        let mut par = ParallelSim::new(mk(), threads);
        par.run(ticks, &mut NullSource);
        prop_assert_eq!(
            reference.network().state_digest(),
            par.network().state_digest()
        );
        prop_assert_eq!(
            reference.stats().totals.spikes_out,
            par.stats().totals.spikes_out
        );
    }
}
