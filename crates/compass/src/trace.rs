//! Spike tracing: full-resolution event logs of a simulation.
//!
//! The paper's regressions compare *every* spike between expressions, not
//! just exposed outputs ("not a single spike mismatch was found"). The
//! [`SpikeTrace`] records `(tick, core, neuron)` for every fired neuron —
//! bounded by a capacity so multi-million-spike runs can keep a rolling
//! window — and renders an event-log text for offline diffing.

use tn_core::{NeuronId, OutSpike};

/// One traced spike.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    pub tick: u64,
    pub src: NeuronId,
}

/// Bounded spike trace (rolling window once `capacity` is exceeded).
#[derive(Clone, Debug)]
pub struct SpikeTrace {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Total events observed, including those that rolled out.
    observed: u64,
    dropped: u64,
}

impl SpikeTrace {
    /// A trace holding at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        SpikeTrace {
            events: Vec::new(),
            capacity,
            observed: 0,
            dropped: 0,
        }
    }

    /// Record every spike of a tick.
    pub fn record_tick(&mut self, tick: u64, spikes: &[OutSpike]) {
        for s in spikes {
            if self.events.len() == self.capacity {
                // Rolling window: drop the oldest half in one memmove —
                // amortized O(1) per event.
                let keep = self.capacity / 2;
                let cut = self.events.len() - keep;
                self.dropped += cut as u64;
                self.events.drain(..cut);
            }
            self.events.push(TraceEvent { tick, src: s.src });
            self.observed += 1;
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn observed(&self) -> u64 {
        self.observed
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Order-sensitive digest of the retained window.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0x811c_9dc5;
        for e in &self.events {
            h ^= e.tick ^ ((e.src.core.0 as u64) << 40) ^ ((e.src.neuron as u64) << 32);
            h = h.wrapping_mul(0x0100_0000_01b3).rotate_left(7);
        }
        h ^ self.observed
    }

    /// Render as an event-log text: one `tick core neuron` line each.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 16);
        for e in &self.events {
            out.push_str(&format!("{} {} {}\n", e.tick, e.src.core.0, e.src.neuron));
        }
        out
    }

    /// Spikes per tick histogram over the retained window.
    pub fn per_tick_counts(&self) -> Vec<(u64, u32)> {
        let mut out: Vec<(u64, u32)> = Vec::new();
        for e in &self.events {
            match out.last_mut() {
                Some((t, n)) if *t == e.tick => *n += 1,
                _ => out.push((e.tick, 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_core::{CoreId, Dest};

    fn spike(core: u32, neuron: u8) -> OutSpike {
        OutSpike {
            src: NeuronId {
                core: CoreId(core),
                neuron,
            },
            dest: Dest::None,
        }
    }

    #[test]
    fn records_in_order() {
        let mut t = SpikeTrace::new(100);
        t.record_tick(0, &[spike(0, 1), spike(1, 2)]);
        t.record_tick(3, &[spike(0, 9)]);
        assert_eq!(t.observed(), 3);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.events()[2].tick, 3);
        assert_eq!(t.per_tick_counts(), vec![(0, 2), (3, 1)]);
    }

    #[test]
    fn rolling_window_drops_oldest() {
        let mut t = SpikeTrace::new(10);
        for tick in 0..20u64 {
            t.record_tick(tick, &[spike(0, tick as u8)]);
        }
        assert_eq!(t.observed(), 20);
        assert!(t.dropped() > 0);
        assert!(t.events().len() <= 10);
        // The newest event is retained.
        assert_eq!(t.events().last().unwrap().tick, 19);
    }

    #[test]
    fn digest_detects_single_spike_differences() {
        let mut a = SpikeTrace::new(100);
        let mut b = SpikeTrace::new(100);
        a.record_tick(1, &[spike(0, 1), spike(0, 2)]);
        b.record_tick(1, &[spike(0, 1), spike(0, 3)]); // one neuron differs
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn render_format() {
        let mut t = SpikeTrace::new(10);
        t.record_tick(7, &[spike(3, 200)]);
        assert_eq!(t.render(), "7 3 200\n");
    }
}
