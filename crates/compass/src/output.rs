//! Recording of network output spikes.
//!
//! Neurons whose destination is [`tn_core::Dest::Output`] feed application
//! readout (on the physical system these leave the chip through the
//! periphery). Simulators record them as `(tick, port)` events; the record
//! is canonically ordered so that different execution schedules (reference,
//! parallel with any thread count, chip) produce comparable transcripts.

/// One output spike.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct OutputEvent {
    pub tick: u64,
    pub port: u32,
}

/// Accumulated, canonically ordered output transcript.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct SpikeRecord {
    events: Vec<OutputEvent>,
    sorted: bool,
}

impl SpikeRecord {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, tick: u64, port: u32) {
        self.events.push(OutputEvent { tick, port });
        self.sorted = false;
    }

    pub fn extend(&mut self, it: impl IntoIterator<Item = OutputEvent>) {
        self.events.extend(it);
        self.sorted = false;
    }

    /// Canonically ordered events (by tick, then port).
    pub fn events(&mut self) -> &[OutputEvent] {
        if !self.sorted {
            self.events.sort_unstable();
            self.sorted = true;
        }
        &self.events
    }

    /// Drain every recorded event, leaving the record empty — the
    /// streaming-consumption primitive: a long-running server forwards
    /// each tick's outputs to subscribers instead of accumulating an
    /// unbounded transcript. Events come out in insertion order.
    pub fn take(&mut self) -> Vec<OutputEvent> {
        self.sorted = false;
        std::mem::take(&mut self.events)
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events emitted on `port`, in tick order.
    pub fn port_ticks(&mut self, port: u32) -> Vec<u64> {
        self.events();
        self.events
            .iter()
            .filter(|e| e.port == port)
            .map(|e| e.tick)
            .collect()
    }

    /// Spike count per port over a tick window, as a dense histogram of
    /// size `ports` — the rate-decoding primitive used by the vision
    /// applications.
    pub fn window_counts(&mut self, ports: u32, t0: u64, t1: u64) -> Vec<u32> {
        let mut counts = vec![0u32; ports as usize];
        for e in self.events() {
            if e.tick >= t0 && e.tick < t1 && e.port < ports {
                counts[e.port as usize] += 1;
            }
        }
        counts
    }

    /// Order-insensitive digest for equivalence regressions.
    pub fn digest(&mut self) -> u64 {
        let mut h: u64 = 0x84222325_cbf29ce4;
        for e in self.events() {
            h ^= (e.tick << 32) ^ e.port as u64;
            h = h.rotate_left(17).wrapping_mul(0x1000_0000_01b3);
        }
        h ^ self.events.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_ordering() {
        let mut r = SpikeRecord::new();
        r.push(5, 1);
        r.push(2, 9);
        r.push(2, 3);
        let ev = r.events();
        assert_eq!(
            ev,
            &[
                OutputEvent { tick: 2, port: 3 },
                OutputEvent { tick: 2, port: 9 },
                OutputEvent { tick: 5, port: 1 },
            ]
        );
    }

    #[test]
    fn digest_is_order_insensitive() {
        let mut a = SpikeRecord::new();
        a.push(1, 1);
        a.push(2, 2);
        let mut b = SpikeRecord::new();
        b.push(2, 2);
        b.push(1, 1);
        assert_eq!(a.digest(), b.digest());
        b.push(3, 3);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn window_counts() {
        let mut r = SpikeRecord::new();
        for t in 0..10 {
            r.push(t, (t % 3) as u32);
        }
        let c = r.window_counts(3, 0, 10);
        assert_eq!(c, vec![4, 3, 3]);
        let c = r.window_counts(3, 5, 6);
        assert_eq!(c.iter().sum::<u32>(), 1);
    }

    #[test]
    fn port_ticks_filters() {
        let mut r = SpikeRecord::new();
        r.push(4, 7);
        r.push(1, 7);
        r.push(2, 8);
        assert_eq!(r.port_ticks(7), vec![1, 4]);
        assert_eq!(r.port_ticks(9), Vec::<u64>::new());
    }
}
