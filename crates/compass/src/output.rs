//! Recording of network output spikes.
//!
//! Neurons whose destination is [`tn_core::Dest::Output`] feed application
//! readout (on the physical system these leave the chip through the
//! periphery). Simulators record them as `(tick, port)` events; the record
//! is canonically ordered so that different execution schedules (reference,
//! parallel with any thread count, chip) produce comparable transcripts.

/// One output spike.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct OutputEvent {
    pub tick: u64,
    pub port: u32,
}

/// Accumulated, canonically ordered output transcript.
///
/// By default the record grows without bound (batch use: the caller
/// reads the whole transcript at the end). A streaming host whose
/// client might stop polling sets a high-water mark with
/// [`SpikeRecord::set_capacity`]; beyond it the *oldest* events are
/// evicted and counted, so a session that is never drained stays at
/// bounded memory instead of growing until OOM.
#[derive(Clone, Debug)]
pub struct SpikeRecord {
    events: Vec<OutputEvent>,
    sorted: bool,
    capacity: usize,
    evicted: u64,
}

impl Default for SpikeRecord {
    fn default() -> Self {
        SpikeRecord {
            events: Vec::new(),
            sorted: false,
            capacity: usize::MAX,
            evicted: 0,
        }
    }
}

/// Transcript equality is about the recorded events; the capacity
/// configuration and eviction tally are host-side bookkeeping.
impl PartialEq for SpikeRecord {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
    }
}

impl Eq for SpikeRecord {}

impl SpikeRecord {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the record at `cap` events (clamped to ≥ 1). When the bound
    /// is crossed, the record evicts down to ¾ of capacity in one batch
    /// (amortized O(1) per push) and counts every evicted event.
    pub fn set_capacity(&mut self, cap: usize) {
        self.capacity = cap.max(1);
        self.enforce_capacity();
    }

    /// The configured high-water mark (`usize::MAX` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted by the capacity bound since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    fn enforce_capacity(&mut self) {
        if self.events.len() <= self.capacity {
            return;
        }
        let target = (self.capacity - self.capacity / 4).max(1);
        let k = self.events.len() - target;
        // Oldest events sit at the front in insertion order (or lowest
        // (tick, port) after a sort — also the oldest ticks).
        self.events.drain(..k);
        self.evicted += k as u64;
    }

    pub fn push(&mut self, tick: u64, port: u32) {
        self.events.push(OutputEvent { tick, port });
        self.sorted = false;
        self.enforce_capacity();
    }

    pub fn extend(&mut self, it: impl IntoIterator<Item = OutputEvent>) {
        self.events.extend(it);
        self.sorted = false;
        self.enforce_capacity();
    }

    /// Canonically ordered events (by tick, then port).
    pub fn events(&mut self) -> &[OutputEvent] {
        if !self.sorted {
            self.events.sort_unstable();
            self.sorted = true;
        }
        &self.events
    }

    /// Drain every recorded event, leaving the record empty — the
    /// streaming-consumption primitive: a long-running server forwards
    /// each tick's outputs to subscribers instead of accumulating an
    /// unbounded transcript. Events come out in insertion order.
    pub fn take(&mut self) -> Vec<OutputEvent> {
        self.sorted = false;
        std::mem::take(&mut self.events)
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events emitted on `port`, in tick order.
    pub fn port_ticks(&mut self, port: u32) -> Vec<u64> {
        self.events();
        self.events
            .iter()
            .filter(|e| e.port == port)
            .map(|e| e.tick)
            .collect()
    }

    /// Spike count per port over a tick window, as a dense histogram of
    /// size `ports` — the rate-decoding primitive used by the vision
    /// applications.
    pub fn window_counts(&mut self, ports: u32, t0: u64, t1: u64) -> Vec<u32> {
        let mut counts = vec![0u32; ports as usize];
        for e in self.events() {
            if e.tick >= t0 && e.tick < t1 && e.port < ports {
                counts[e.port as usize] += 1;
            }
        }
        counts
    }

    /// Order-insensitive digest for equivalence regressions.
    pub fn digest(&mut self) -> u64 {
        let mut h: u64 = 0x84222325_cbf29ce4;
        for e in self.events() {
            h ^= (e.tick << 32) ^ e.port as u64;
            h = h.rotate_left(17).wrapping_mul(0x1000_0000_01b3);
        }
        h ^ self.events.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_ordering() {
        let mut r = SpikeRecord::new();
        r.push(5, 1);
        r.push(2, 9);
        r.push(2, 3);
        let ev = r.events();
        assert_eq!(
            ev,
            &[
                OutputEvent { tick: 2, port: 3 },
                OutputEvent { tick: 2, port: 9 },
                OutputEvent { tick: 5, port: 1 },
            ]
        );
    }

    #[test]
    fn digest_is_order_insensitive() {
        let mut a = SpikeRecord::new();
        a.push(1, 1);
        a.push(2, 2);
        let mut b = SpikeRecord::new();
        b.push(2, 2);
        b.push(1, 1);
        assert_eq!(a.digest(), b.digest());
        b.push(3, 3);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn window_counts() {
        let mut r = SpikeRecord::new();
        for t in 0..10 {
            r.push(t, (t % 3) as u32);
        }
        let c = r.window_counts(3, 0, 10);
        assert_eq!(c, vec![4, 3, 3]);
        let c = r.window_counts(3, 5, 6);
        assert_eq!(c.iter().sum::<u32>(), 1);
    }

    #[test]
    fn port_ticks_filters() {
        let mut r = SpikeRecord::new();
        r.push(4, 7);
        r.push(1, 7);
        r.push(2, 8);
        assert_eq!(r.port_ticks(7), vec![1, 4]);
        assert_eq!(r.port_ticks(9), Vec::<u64>::new());
    }

    #[test]
    fn unbounded_by_default() {
        let mut r = SpikeRecord::new();
        for t in 0..100_000u64 {
            r.push(t, 0);
        }
        assert_eq!(r.len(), 100_000);
        assert_eq!(r.evicted(), 0);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts() {
        let mut r = SpikeRecord::new();
        r.set_capacity(100);
        for t in 0..1000u64 {
            r.push(t, 7);
        }
        assert!(r.len() <= 100, "len {} over high-water mark", r.len());
        assert_eq!(r.evicted() + r.len() as u64, 1000, "every event accounted");
        // The retained tail is the newest events, contiguous to the end.
        let ev = r.events();
        assert_eq!(ev.last().unwrap().tick, 999);
        let first = ev.first().unwrap().tick;
        assert_eq!(ev.len() as u64, 1000 - first);
    }

    #[test]
    fn set_capacity_trims_existing_backlog() {
        let mut r = SpikeRecord::new();
        for t in 0..50u64 {
            r.push(t, 1);
        }
        r.set_capacity(10);
        assert!(r.len() <= 10);
        assert_eq!(r.evicted() + r.len() as u64, 50);
    }

    #[test]
    fn take_resets_nothing_but_events() {
        let mut r = SpikeRecord::new();
        r.set_capacity(4);
        for t in 0..20u64 {
            r.push(t, 0);
        }
        let evicted = r.evicted();
        assert!(evicted > 0);
        let drained = r.take();
        assert!(r.is_empty());
        assert_eq!(r.evicted(), evicted, "eviction tally survives draining");
        assert_eq!(drained.len() as u64 + evicted, 20);
    }

    #[test]
    fn equality_ignores_capacity_bookkeeping() {
        let mut a = SpikeRecord::new();
        let mut b = SpikeRecord::new();
        b.set_capacity(1000);
        a.push(1, 2);
        b.push(1, 2);
        assert_eq!(a, b);
    }
}
