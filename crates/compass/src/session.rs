//! The session abstraction over kernel expressions.
//!
//! The paper's central claim is that Compass (software) and TrueNorth
//! (silicon) are two *expressions of one blueprint*: any model runs
//! unchanged on either. [`KernelSession`] is that claim as an object-safe
//! Rust trait — the uniform surface a host (the `tn-serve` runtime, a
//! test harness, a batch driver) needs to drive *any* expression: step it
//! tick by tick with injected spikes, read its outputs and statistics,
//! and checkpoint/restore its dynamic state. `ReferenceSim` and
//! `ParallelSim` implement it here; the chip simulator implements it in
//! `tn-chip`.

use crate::output::SpikeRecord;
use crate::parallel::ParallelSim;
use crate::reference::ReferenceSim;
use std::sync::Arc;
use tn_core::fault::{FaultCounters, FaultPlan};
use tn_core::{Network, NetworkSnapshot, RunStats, SpikeSource, TickStats};
use tn_obs::{Registry, TickObserver};

/// A running instance of one kernel expression, drivable one tick at a
/// time. All expressions of the blueprint are deterministic, so two
/// sessions created from the same configuration and fed the same inputs
/// stay bit-identical tick for tick — the property the serving layer's
/// equivalence tests assert over the wire.
pub trait KernelSession: Send {
    /// Short identifier of the expression ("chip", "reference", ...).
    fn engine_name(&self) -> &'static str;

    /// Advance one tick, pulling external input from `src`.
    fn step(&mut self, src: &mut (dyn SpikeSource + Send)) -> TickStats;

    /// The tick about to run (= ticks completed so far).
    fn current_tick(&self) -> u64;

    fn network(&self) -> &Network;

    /// Output transcript; a streaming host drains it each tick via
    /// [`SpikeRecord::take`] to keep memory bounded.
    fn outputs(&mut self) -> &mut SpikeRecord;

    fn stats(&self) -> &RunStats;

    /// Injected events dropped by the expression itself (out-of-grid
    /// targets), excluding drops upstream in any injection queue.
    fn dropped_inputs(&self) -> u64;

    /// Settle the expression at the current tick boundary so its state
    /// is fully observable — the live-migration handoff hook. The
    /// default is a no-op (single-process expressions are always
    /// settled between ticks); a distributed expression flushes
    /// in-flight boundary traffic here so the [`KernelSession::
    /// checkpoint`] that follows equals the single-process state.
    fn quiesce(&mut self) {}

    /// Capture dynamic state at the current tick boundary. Takes `&mut
    /// self` because a distributed expression must first flush in-flight
    /// boundary traffic so the snapshot equals the single-process state.
    fn checkpoint(&mut self) -> NetworkSnapshot;

    /// Restore dynamic state; the tick counter resumes from the
    /// snapshot's tick. The snapshot must match the network shape.
    fn restore(&mut self, snap: &NetworkSnapshot);

    /// Cumulative modelled energy in joules at real-time operation, if
    /// this expression carries an energy model.
    fn energy_j(&self) -> Option<f64> {
        None
    }

    /// Digest of all dynamic state at the current tick boundary (see
    /// [`Network::state_digest`]). Takes `&mut self` for the same reason
    /// as [`KernelSession::checkpoint`]: a distributed expression flushes
    /// boundary traffic before observing its state.
    fn state_digest(&mut self) -> u64 {
        self.network().state_digest()
    }

    /// Cores currently disabled (dead-core faults); drives session
    /// health reporting without the host scanning the network itself.
    fn disabled_cores(&self) -> usize {
        self.network()
            .cores()
            .iter()
            .filter(|c| c.is_disabled())
            .count()
    }

    /// Attach a scheduled fault plan. The fault semantics are part of
    /// the blueprint: every expression filters the same spikes on the
    /// same ticks, so a faulted run stays bit-identical across engines.
    fn attach_faults(&mut self, plan: &FaultPlan);

    /// Per-class fault drop counters, `None` if no plan is attached.
    fn fault_counters(&self) -> Option<FaultCounters>;

    /// Attach per-tick span hooks (see [`tn_obs::TickObserver`]); called
    /// synchronously from the tick loop, so keep implementations cheap.
    fn set_observer(&mut self, _observer: Arc<dyn TickObserver>) {}

    /// Synchronise this expression's counters into a metrics registry
    /// (monotonic totals, tier tallies, fault drops, plus any
    /// engine-specific series). Safe to call repeatedly — counters sync
    /// via max, histograms are registered by handle.
    fn publish_metrics(&self, registry: &Registry) {
        publish_common(self, registry);
    }
}

/// The registry series every expression shares: the legacy
/// `RunStats`/`TickStats` totals, the fast-path tier tallies, injection
/// drops, and per-class fault drops. Reconciliation of these series
/// against the legacy counters is pinned by `tests/obs_reconcile.rs`.
pub fn publish_common<S: KernelSession + ?Sized>(sim: &S, reg: &Registry) {
    let stats = sim.stats();
    reg.counter("tn_kernel_ticks_total").set(stats.ticks);
    reg.counter("tn_kernel_axon_events_total")
        .set(stats.totals.axon_events);
    reg.counter("tn_kernel_sops_total").set(stats.totals.sops);
    reg.counter("tn_kernel_neuron_updates_total")
        .set(stats.totals.neuron_updates);
    reg.counter("tn_kernel_spikes_out_total")
        .set(stats.totals.spikes_out);
    reg.counter("tn_kernel_prng_draws_total")
        .set(stats.totals.prng_draws);
    reg.counter("tn_kernel_dropped_inputs_total")
        .set(sim.dropped_inputs());
    reg.gauge("tn_kernel_wall_seconds").set(stats.wall_seconds);

    let tiers = sim.network().tier_totals();
    for (tier, v) in [
        ("disabled", tiers.disabled),
        ("quiescent", tiers.quiescent),
        ("soa", tiers.soa),
        ("split", tiers.split),
        ("fused", tiers.fused),
        ("scalar", tiers.scalar),
    ] {
        reg.counter_with("tn_fastpath_tier_ticks_total", &[("tier", tier)])
            .set(v);
    }

    if let Some(fc) = sim.fault_counters() {
        for (kind, v) in [
            ("dead", fc.dead_dropped),
            ("stuck", fc.stuck_dropped),
            ("sync", fc.sync_dropped),
            ("severed", fc.severed_dropped),
            ("lossy", fc.lossy_dropped),
        ] {
            reg.counter_with("tn_fault_drops_total", &[("kind", kind)])
                .set(v);
        }
        reg.counter("tn_fault_rerouted_total").set(fc.rerouted);
    }

    if let Some(e) = sim.energy_j() {
        reg.gauge("tn_energy_joules").set(e);
    }
}

impl KernelSession for ReferenceSim {
    fn engine_name(&self) -> &'static str {
        "reference"
    }

    fn step(&mut self, src: &mut (dyn SpikeSource + Send)) -> TickStats {
        ReferenceSim::step(self, src)
    }

    fn current_tick(&self) -> u64 {
        ReferenceSim::current_tick(self)
    }

    fn network(&self) -> &Network {
        ReferenceSim::network(self)
    }

    fn outputs(&mut self) -> &mut SpikeRecord {
        ReferenceSim::outputs(self)
    }

    fn stats(&self) -> &RunStats {
        ReferenceSim::stats(self)
    }

    fn dropped_inputs(&self) -> u64 {
        ReferenceSim::dropped_inputs(self)
    }

    fn checkpoint(&mut self) -> NetworkSnapshot {
        ReferenceSim::checkpoint(self)
    }

    fn restore(&mut self, snap: &NetworkSnapshot) {
        ReferenceSim::restore(self, snap)
    }

    fn attach_faults(&mut self, plan: &FaultPlan) {
        ReferenceSim::attach_faults(self, plan)
    }

    fn fault_counters(&self) -> Option<FaultCounters> {
        self.faults().map(|f| *f.counters())
    }

    fn set_observer(&mut self, observer: Arc<dyn TickObserver>) {
        ReferenceSim::set_observer(self, observer)
    }
}

impl KernelSession for ParallelSim {
    fn engine_name(&self) -> &'static str {
        "parallel"
    }

    fn step(&mut self, src: &mut (dyn SpikeSource + Send)) -> TickStats {
        let before = self.stats().totals;
        ParallelSim::run(self, 1, src);
        let after = self.stats().totals;
        TickStats {
            axon_events: after.axon_events - before.axon_events,
            sops: after.sops - before.sops,
            neuron_updates: after.neuron_updates - before.neuron_updates,
            spikes_out: after.spikes_out - before.spikes_out,
            prng_draws: after.prng_draws - before.prng_draws,
        }
    }

    fn current_tick(&self) -> u64 {
        ParallelSim::current_tick(self)
    }

    fn network(&self) -> &Network {
        ParallelSim::network(self)
    }

    fn outputs(&mut self) -> &mut SpikeRecord {
        ParallelSim::outputs(self)
    }

    fn stats(&self) -> &RunStats {
        ParallelSim::stats(self)
    }

    fn dropped_inputs(&self) -> u64 {
        ParallelSim::dropped_inputs(self)
    }

    fn checkpoint(&mut self) -> NetworkSnapshot {
        ParallelSim::checkpoint(self)
    }

    fn restore(&mut self, snap: &NetworkSnapshot) {
        ParallelSim::restore(self, snap)
    }

    fn attach_faults(&mut self, plan: &FaultPlan) {
        ParallelSim::attach_faults(self, plan)
    }

    fn fault_counters(&self) -> Option<FaultCounters> {
        self.faults().map(|f| *f.counters())
    }

    fn set_observer(&mut self, observer: Arc<dyn TickObserver>) {
        ParallelSim::set_observer(self, observer)
    }

    fn publish_metrics(&self, registry: &Registry) {
        publish_common(self, registry);
        registry.register_histogram("tn_pool_barrier_wait_ns", &[], self.pool_barrier_wait_ns());
        registry.register_histogram("tn_pool_mailbox_packets", &[], self.pool_mailbox_packets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_core::{
        CoreConfig, CoreId, Crossbar, Dest, NetworkBuilder, NeuronConfig, ScheduledSource,
        SpikeTarget,
    };

    /// A 2-core ring with output taps (every neuron also echoes to an
    /// output port via core 1).
    fn ring() -> Network {
        let mut b = NetworkBuilder::new(2, 1, 7);
        let mut a = CoreConfig::new();
        *a.crossbar = Crossbar::from_fn(|i, j| i == j);
        let mut c = CoreConfig::new();
        *c.crossbar = Crossbar::from_fn(|i, j| i == j);
        for j in 0..256 {
            a.neurons[j] = NeuronConfig::lif(1, 1);
            a.neurons[j].dest = Dest::Axon(SpikeTarget::new(CoreId(1), j as u8, 1));
            c.neurons[j] = NeuronConfig::lif(1, 1);
            c.neurons[j].dest = Dest::Output(j as u32);
        }
        b.add_core(a);
        b.add_core(c);
        b.build()
    }

    fn drive(sim: &mut dyn KernelSession) -> (u64, u64, Vec<crate::output::OutputEvent>) {
        let mut src = ScheduledSource::new();
        src.push(0, CoreId(0), 9);
        src.push(4, CoreId(0), 100);
        let mut spikes = 0;
        for _ in 0..20 {
            spikes += sim.step(&mut src).spikes_out;
        }
        let mut out = sim.outputs().take();
        out.sort_unstable();
        (sim.network().state_digest(), spikes, out)
    }

    #[test]
    fn expressions_agree_behind_the_trait() {
        let mut a = ReferenceSim::new(ring());
        let mut b = ParallelSim::new(ring(), 2);
        let (da, sa, oa) = drive(&mut a);
        let (db, sb, ob) = drive(&mut b);
        assert_eq!(da, db);
        assert_eq!(sa, sb);
        assert_eq!(oa, ob);
        assert!(sa > 0, "the ring fired");
        assert!(!oa.is_empty(), "outputs were recorded");
        assert_eq!(a.engine_name(), "reference");
        assert_eq!(b.engine_name(), "parallel");
        assert_eq!(a.current_tick(), 20);
        assert_eq!(b.current_tick(), 20);
    }

    #[test]
    fn checkpoint_restore_through_the_trait() {
        let mut src = ScheduledSource::new();
        src.push(0, CoreId(0), 3);
        let mut sim: Box<dyn KernelSession> = Box::new(ReferenceSim::new(ring()));
        for _ in 0..10 {
            sim.step(&mut src);
        }
        let snap = sim.checkpoint();
        let bytes = snap.to_bytes();

        let mut resumed: Box<dyn KernelSession> = Box::new(ParallelSim::new(ring(), 2));
        resumed.restore(&NetworkSnapshot::from_bytes(&bytes).unwrap());
        assert_eq!(resumed.current_tick(), 10);
        for _ in 0..10 {
            sim.step(&mut src);
            resumed.step(&mut src);
        }
        assert_eq!(
            sim.network().state_digest(),
            resumed.network().state_digest(),
            "a parallel session resumed from a reference checkpoint stays bit-exact"
        );
    }
}
