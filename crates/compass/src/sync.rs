//! Alias module for the worker pool's concurrency primitives.
//!
//! Production builds alias straight to `std`; under `--cfg tn_check`
//! everything routes through the `tn-check` shims so the pool's
//! generation/barrier handshake can be model-checked. Funnelling all
//! imports through this module also lets `tn-check lint` (TN025)
//! catch accidental bypasses back to `std::sync`.

#[cfg(not(tn_check))]
pub(crate) use std::sync::{Arc, Barrier, Condvar, Mutex};
#[cfg(not(tn_check))]
pub(crate) use std::thread;
#[cfg(tn_check)]
pub(crate) use tn_check::sync::{Arc, Barrier, Condvar, Mutex};
#[cfg(tn_check)]
pub(crate) use tn_check::thread;

pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::Ordering;

    #[cfg(not(tn_check))]
    pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize};
    #[cfg(tn_check)]
    pub(crate) use tn_check::sync::atomic::{AtomicU64, AtomicUsize};
}
