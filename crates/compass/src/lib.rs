//! # tn-compass — the software expression of the neurosynaptic kernel
//!
//! Compass is "a highly-optimized function-level simulator for large-scale
//! networks of spiking neurons organized as neurosynaptic cores" (paper
//! Section III-B). This crate is its Rust counterpart, executing the exact
//! blueprint semantics of [`tn_core`]:
//!
//! * [`reference::ReferenceSim`] — a single-threaded, obviously-correct
//!   simulator used as the ground truth of the 1:1 equivalence
//!   regressions, and
//! * [`parallel::ParallelSim`] — the multithreaded simulator mirroring the
//!   Compass design: cores partitioned across threads with load balancing,
//!   the semi-synchronous Synapse → Neuron → Network phase loop, pairwise
//!   spike aggregation between thread pairs, and a two-step barrier
//!   synchronization per tick.
//!
//! Both simulators produce bit-identical network state for identical
//! (configuration, seed, input) triples — the property paper Section VI-A
//! verifies between Compass and the TrueNorth silicon with 413,333
//! regressions.

pub mod output;
pub mod parallel;
pub mod partition;
pub mod reference;
pub mod session;
pub(crate) mod sync;
pub mod trace;

pub use output::{OutputEvent, SpikeRecord};
pub use parallel::{AggregationMode, ParallelSim, PoolMode};
pub use partition::{owner_of, weighted_split_points};
pub use reference::ReferenceSim;
pub use session::{publish_common, KernelSession};
pub use trace::SpikeTrace;
