//! Load-balanced partitioning of cores across simulator threads.
//!
//! Compass "uses meticulous load-balancing" (paper Section III-B). The
//! simulation cost of a core scales with its synaptic traffic, so the
//! partitioner splits the core array into contiguous ranges of
//! approximately equal *weight* rather than equal *count*. Contiguity
//! preserves cache locality and lets thread ownership be resolved with a
//! binary search over split offsets.

/// Compute split points for dividing `weights.len()` items into `n`
/// contiguous ranges of near-equal total weight.
///
/// Returns the start index of each range; ranges are
/// `[starts[k], starts[k+1])` with an implicit final end of
/// `weights.len()`. Every range is non-empty when `n <= weights.len()`;
/// otherwise `n` is clamped down.
pub fn weighted_split_points(weights: &[u64], n: usize) -> Vec<usize> {
    let n = n.clamp(1, weights.len().max(1));
    let total: u64 = weights.iter().sum();
    if weights.is_empty() {
        return vec![0];
    }
    let mut starts = Vec::with_capacity(n);
    starts.push(0);
    let mut acc: u64 = 0;
    let mut next_boundary = 1u64;
    for (i, &w) in weights.iter().enumerate() {
        if starts.len() >= n {
            break;
        }
        acc += w;
        // Place the next boundary after enough cumulative weight — but
        // never so late that the remaining ranges can't all be non-empty.
        let target = total * next_boundary / n as u64;
        let items_left = weights.len() - (i + 1);
        let ranges_left = n - starts.len();
        if (acc >= target && i + 1 < weights.len()) || items_left == ranges_left {
            starts.push(i + 1);
            next_boundary += 1;
        }
    }
    while starts.len() < n {
        // Degenerate all-zero-weight tail: split remaining evenly.
        let last = *starts.last().unwrap();
        starts.push((last + 1).min(weights.len() - 1));
    }
    starts
}

/// Find which range an index belongs to (binary search over start
/// offsets).
#[inline]
pub fn owner_of(starts: &[usize], index: usize) -> usize {
    match starts.binary_search(&index) {
        Ok(k) => k,
        Err(k) => k - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range_weights(weights: &[u64], starts: &[usize]) -> Vec<u64> {
        let mut out = Vec::new();
        for (k, &s) in starts.iter().enumerate() {
            let e = starts.get(k + 1).copied().unwrap_or(weights.len());
            out.push(weights[s..e].iter().sum());
        }
        out
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let w = vec![1u64; 100];
        let starts = weighted_split_points(&w, 4);
        assert_eq!(starts, vec![0, 25, 50, 75]);
    }

    #[test]
    fn skewed_weights_balance() {
        // First 10 items carry 10× the weight of the rest.
        let mut w = vec![10u64; 10];
        w.extend(std::iter::repeat_n(1, 90));
        let starts = weighted_split_points(&w, 2);
        let rw = range_weights(&w, &starts);
        let total: u64 = w.iter().sum();
        assert!(rw[0] >= total / 3 && rw[0] <= 2 * total / 3, "{rw:?}");
    }

    #[test]
    fn more_ranges_than_items_clamps() {
        let w = vec![1u64, 2, 3];
        let starts = weighted_split_points(&w, 10);
        assert_eq!(starts.len(), 3);
        assert_eq!(starts, vec![0, 1, 2]);
    }

    #[test]
    fn all_ranges_nonempty() {
        let w = vec![100u64, 0, 0, 0, 0, 0, 0, 1];
        let starts = weighted_split_points(&w, 4);
        assert_eq!(starts.len(), 4);
        for k in 1..starts.len() {
            assert!(starts[k] > starts[k - 1], "{starts:?}");
        }
        assert!(*starts.last().unwrap() < w.len());
    }

    #[test]
    fn owner_lookup() {
        let starts = vec![0usize, 25, 50, 75];
        assert_eq!(owner_of(&starts, 0), 0);
        assert_eq!(owner_of(&starts, 24), 0);
        assert_eq!(owner_of(&starts, 25), 1);
        assert_eq!(owner_of(&starts, 99), 3);
    }

    #[test]
    fn single_range() {
        let w = vec![5u64; 7];
        assert_eq!(weighted_split_points(&w, 1), vec![0]);
    }
}
