//! Single-threaded reference simulator.
//!
//! Executes the kernel of paper Listing 1 one core at a time. This is the
//! ground truth: every other expression (multithreaded Compass, the chip
//! simulator) must match it spike-for-spike and state-digest-for-digest.

use crate::output::SpikeRecord;
use crate::trace::SpikeTrace;
use std::sync::Arc;
use std::time::Instant;
use tn_core::fault::{FaultPlan, FaultState};
use tn_core::{Dest, Network, NetworkSnapshot, OutSpike, RunStats, SpikeSource, TickStats};
use tn_obs::{TickObserver, TickPhase, TickSummary};

/// Single-threaded blueprint simulator.
pub struct ReferenceSim {
    net: Network,
    tick: u64,
    stats: RunStats,
    outputs: SpikeRecord,
    spike_buf: Vec<OutSpike>,
    input_buf: Vec<(tn_core::CoreId, u8)>,
    route_buf: Vec<(u32, u8, u8)>,
    route_sorted: Vec<(u32, u8, u8)>,
    route_counts: Vec<u32>,
    trace: Option<SpikeTrace>,
    dropped_inputs: u64,
    faults: Option<FaultState>,
    observer: Option<Arc<dyn TickObserver>>,
}

impl ReferenceSim {
    pub fn new(net: Network) -> Self {
        ReferenceSim {
            net,
            tick: 0,
            stats: RunStats::default(),
            outputs: SpikeRecord::new(),
            spike_buf: Vec::new(),
            input_buf: Vec::new(),
            route_buf: Vec::new(),
            route_sorted: Vec::new(),
            route_counts: Vec::new(),
            trace: None,
            dropped_inputs: 0,
            faults: None,
            observer: None,
        }
    }

    /// Attach per-tick span hooks (see [`tn_obs::TickObserver`]). The
    /// observer is called synchronously from the tick loop; when unset
    /// the hooks cost one branch per phase.
    pub fn set_observer(&mut self, observer: Arc<dyn TickObserver>) {
        self.observer = Some(observer);
    }

    /// Attach a compiled fault plan. Scheduled faults take effect at the
    /// start of their tick; faults already in the past fire on the next
    /// step. Replaces any previously attached plan.
    pub fn attach_faults(&mut self, plan: &FaultPlan) {
        self.faults = Some(FaultState::compile(
            plan,
            self.net.width(),
            self.net.height(),
        ));
    }

    /// The attached fault state (counters, schedule), if any.
    pub fn faults(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Statically verify the network before running (see [`tn_core::lint`]).
    pub fn verify(&self, cfg: &tn_core::LintConfig) -> Vec<tn_core::Diagnostic> {
        self.net.verify(cfg)
    }

    /// Externally injected events dropped because they targeted a core
    /// outside the grid (diagnosed instead of panicking at tick time).
    pub fn dropped_inputs(&self) -> u64 {
        self.dropped_inputs
    }

    /// Enable full spike tracing with a rolling window of `capacity`
    /// events (see [`crate::trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(SpikeTrace::new(capacity));
    }

    pub fn trace(&self) -> Option<&SpikeTrace> {
        self.trace.as_ref()
    }

    /// Checkpoint the simulation at the current tick boundary.
    pub fn checkpoint(&self) -> NetworkSnapshot {
        NetworkSnapshot::capture(&self.net, self.tick)
    }

    /// Restore a checkpoint taken from an identically-configured
    /// simulation; the tick counter resumes from the snapshot's tick.
    pub fn restore(&mut self, snap: &NetworkSnapshot) {
        snap.restore(&mut self.net);
        self.tick = snap.tick;
        if let Some(f) = &mut self.faults {
            f.reset_for_restore(&mut self.net, snap.tick);
        }
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    pub fn outputs(&mut self) -> &mut SpikeRecord {
        &mut self.outputs
    }

    /// Consume the simulator, returning the network and transcript.
    pub fn into_parts(self) -> (Network, SpikeRecord, RunStats) {
        (self.net, self.outputs, self.stats)
    }

    /// Advance one tick.
    ///
    /// Order of operations per tick `t` (the blueprint's semi-synchronous
    /// loop):
    /// 1. external input injection — events from `src` activate axons at
    ///    `t + 1`;
    /// 2. Synapse + Neuron phases for every core at tick `t`;
    /// 3. Network phase: emitted spikes are delivered into target delay
    ///    buffers at `t + delay`.
    pub fn step(&mut self, src: &mut dyn SpikeSource) -> TickStats {
        let t = self.tick;
        let wall = Instant::now();
        if let Some(obs) = &self.observer {
            obs.on_tick_start(t);
            obs.on_phase(t, TickPhase::Faults);
        }
        // Fault phase: apply scheduled faults due at the start of this
        // tick, then force stuck-at-1 axons into the current slot.
        if let Some(f) = &mut self.faults {
            for i in f.advance(t) {
                let ev = f.events()[i];
                let id = self.net.id_of(ev.coord);
                FaultState::apply_to_core(&ev, self.net.core_mut(id), f.seed());
            }
            for &(core, axon) in f.stuck1() {
                self.net.cores_mut()[core as usize].deliver(t, axon);
            }
        }
        if let Some(obs) = &self.observer {
            obs.on_phase(t, TickPhase::Input);
        }
        self.input_buf.clear();
        src.fill(t, &mut self.input_buf);
        let num_cores = self.net.num_cores();
        for &(core, axon) in &self.input_buf {
            // Bounds-check injection: a source naming a core outside the
            // grid is diagnosed (counted and dropped), not a panic.
            if core.index() >= num_cores {
                self.dropped_inputs += 1;
                continue;
            }
            if let Some(f) = &mut self.faults {
                if !f.allow_external(t, core.0, axon) {
                    continue;
                }
            }
            self.net.core_mut(core).deliver(t + 1, axon);
        }

        if let Some(obs) = &self.observer {
            obs.on_phase(t, TickPhase::Neurons);
        }
        let mut tick_stats = TickStats::default();
        self.spike_buf.clear();
        for idx in 0..self.net.num_cores() {
            self.net.cores_mut()[idx].tick(t, &mut self.spike_buf, &mut tick_stats);
        }
        if let Some(trace) = &mut self.trace {
            trace.record_tick(t, &self.spike_buf);
        }

        if let Some(obs) = &self.observer {
            obs.on_phase(t, TickPhase::Routing);
        }
        if self.faults.is_none() && self.spike_buf.len() >= 64 {
            // Group deliveries by target core before touching the delay
            // buffers (counting sort on the core index): each target
            // core's cache lines are then written once per tick instead
            // of once per arriving spike. Bit-exact: deliveries are
            // commutative ORs into delay slots and consume no entropy,
            // so their order is unobservable. Fault hooks, by contrast,
            // are consulted per spike in emission order, so any attached
            // plan takes the ordered path below.
            self.route_buf.clear();
            for s in self.spike_buf.drain(..) {
                match s.dest {
                    Dest::Axon(tgt) => {
                        self.route_buf
                            .push((tgt.core.index() as u32, tgt.axon, tgt.delay));
                    }
                    Dest::Output(port) => self.outputs.push(t, port),
                    Dest::None => {}
                }
            }
            self.route_counts.clear();
            self.route_counts.resize(num_cores + 1, 0);
            for &(c, _, _) in &self.route_buf {
                self.route_counts[c as usize + 1] += 1;
            }
            for i in 1..=num_cores {
                self.route_counts[i] += self.route_counts[i - 1];
            }
            self.route_sorted.clear();
            self.route_sorted.resize(self.route_buf.len(), (0, 0, 0));
            for &(c, a, d) in &self.route_buf {
                let at = self.route_counts[c as usize] as usize;
                self.route_counts[c as usize] += 1;
                self.route_sorted[at] = (c, a, d);
            }
            let cores = self.net.cores_mut();
            for &(c, a, d) in &self.route_sorted {
                cores[c as usize].deliver(t + d as u64, a);
            }
        } else {
            for s in self.spike_buf.drain(..) {
                match s.dest {
                    Dest::Axon(tgt) => {
                        if let Some(f) = &mut self.faults {
                            if !f.allow_spike(t, s.src.core.0, tgt.core.0, tgt.axon) {
                                continue;
                            }
                        }
                        self.net
                            .core_mut(tgt.core)
                            .deliver(t + tgt.delay as u64, tgt.axon);
                    }
                    Dest::Output(port) => self.outputs.push(t, port),
                    Dest::None => {}
                }
            }
        }

        self.stats.ticks += 1;
        self.stats.totals += tick_stats;
        self.tick += 1;
        // Wall time accrues per step so a host driving `step()` directly
        // (the serving layer) sees live `RunStats::wall_seconds`, not a
        // value that only syncs inside `run()`.
        self.stats.wall_seconds += wall.elapsed().as_secs_f64();
        if let Some(obs) = &self.observer {
            obs.on_tick_end(&TickSummary {
                tick: t,
                axon_events: tick_stats.axon_events,
                sops: tick_stats.sops,
                neuron_updates: tick_stats.neuron_updates,
                spikes_out: tick_stats.spikes_out,
                prng_draws: tick_stats.prng_draws,
            });
        }
        tick_stats
    }

    /// Run `ticks` steps; wall-clock time accrues per step.
    pub fn run(&mut self, ticks: u64, src: &mut dyn SpikeSource) -> RunStats {
        for _ in 0..ticks {
            self.step(src);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_core::{
        CoreConfig, CoreId, Crossbar, NetworkBuilder, NeuronConfig, ScheduledSource, SpikeTarget,
    };

    /// A 2-core ring: core 0 neuron k targets core 1 axon k (delay 1);
    /// core 1 neuron k targets core 0 axon k (delay 2). Inject one spike
    /// and watch it circulate forever.
    fn ring() -> Network {
        let mut b = NetworkBuilder::new(2, 1, 42);
        let mk = |target_core: u32, delay: u8| {
            let mut cfg = CoreConfig::new();
            *cfg.crossbar = Crossbar::from_fn(|i, j| i == j);
            for j in 0..256 {
                cfg.neurons[j] = NeuronConfig::lif(1, 1);
                cfg.neurons[j].dest =
                    Dest::Axon(SpikeTarget::new(CoreId(target_core), j as u8, delay));
            }
            cfg
        };
        b.add_core(mk(1, 1));
        b.add_core(mk(0, 2));
        b.build()
    }

    #[test]
    fn spike_circulates_ring() {
        let mut sim = ReferenceSim::new(ring());
        let mut src = ScheduledSource::new();
        src.push(0, CoreId(0), 9); // activates core 0 axon 9 at tick 1
        let mut spikes_per_tick = Vec::new();
        for _ in 0..12 {
            let st = sim.step(&mut src);
            spikes_per_tick.push(st.spikes_out);
        }
        // t=1: core0 fires. t=2: core1 fires. t=4: core0 again (delay 2).
        // Period is 3 ticks after the first circuit.
        assert_eq!(spikes_per_tick[0], 0);
        assert_eq!(spikes_per_tick[1], 1);
        assert_eq!(spikes_per_tick[2], 1);
        assert_eq!(spikes_per_tick[3], 0);
        assert_eq!(spikes_per_tick[4], 1);
        assert_eq!(spikes_per_tick[5], 1);
        let total: u64 = spikes_per_tick.iter().sum();
        assert_eq!(sim.stats().totals.spikes_out, total);
        assert_eq!(sim.stats().totals.sops, total, "identity crossbars");
    }

    #[test]
    fn outputs_recorded() {
        let mut b = NetworkBuilder::new(1, 1, 0);
        let mut cfg = CoreConfig::new();
        *cfg.crossbar = Crossbar::from_fn(|i, j| i == j);
        for j in 0..256 {
            cfg.neurons[j] = NeuronConfig::lif(1, 1);
            cfg.neurons[j].dest = Dest::Output(j as u32 + 1000);
        }
        b.add_core(cfg);
        let mut sim = ReferenceSim::new(b.build());
        let mut src = ScheduledSource::new();
        src.push(0, CoreId(0), 0);
        src.push(0, CoreId(0), 255);
        sim.run(3, &mut src);
        let ev = sim.outputs().events().to_vec();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].tick, 1);
        assert_eq!(ev[0].port, 1000);
        assert_eq!(ev[1].port, 1255);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = ReferenceSim::new(ring());
            let mut src = ScheduledSource::new();
            src.push(0, CoreId(0), 3);
            sim.run(50, &mut src);
            sim.network().state_digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn checkpoint_and_resume_bit_exact() {
        let mut src_a = ScheduledSource::new();
        src_a.push(0, CoreId(0), 3);
        let mut continuous = ReferenceSim::new(ring());
        continuous.run(80, &mut src_a);

        let mut src_b = ScheduledSource::new();
        src_b.push(0, CoreId(0), 3);
        let mut first = ReferenceSim::new(ring());
        first.run(30, &mut src_b);
        let snap = first.checkpoint();
        assert_eq!(snap.tick, 30);

        // A brand-new simulator with the same configuration resumes from
        // the snapshot and must land on the identical state.
        let mut resumed = ReferenceSim::new(ring());
        resumed.restore(&snap);
        assert_eq!(resumed.current_tick(), 30);
        resumed.run(50, &mut tn_core::network::NullSource);
        assert_eq!(
            resumed.network().state_digest(),
            continuous.network().state_digest()
        );
    }

    #[test]
    fn trace_captures_every_spike() {
        let mut sim = ReferenceSim::new(ring());
        sim.enable_trace(1000);
        let mut src = ScheduledSource::new();
        src.push(0, CoreId(0), 9);
        sim.run(20, &mut src);
        let trace = sim.trace().unwrap();
        assert_eq!(trace.observed(), sim.stats().totals.spikes_out);
        // The ring fires one neuron per active tick; events alternate
        // between core 0 and core 1.
        let cores: Vec<u32> = trace.events().iter().map(|e| e.src.core.0).collect();
        assert!(cores.windows(2).all(|w| w[0] != w[1]), "{cores:?}");
    }

    #[test]
    fn out_of_grid_injection_is_dropped_not_fatal() {
        let mut sim = ReferenceSim::new(ring());
        let mut src = ScheduledSource::new();
        src.push(0, CoreId(999), 3); // outside the 2-core grid
        src.push(0, CoreId(0), 3);
        sim.run(5, &mut src);
        assert_eq!(sim.dropped_inputs(), 1);
        assert!(sim.stats().totals.spikes_out > 0, "valid event survived");
    }

    #[test]
    fn run_accumulates_wall_time_and_ticks() {
        let mut sim = ReferenceSim::new(ring());
        let mut src = tn_core::network::NullSource;
        let st = sim.run(10, &mut src);
        assert_eq!(st.ticks, 10);
        assert!(st.wall_seconds > 0.0);
        assert_eq!(sim.current_tick(), 10);
    }
}
