//! Multithreaded Compass simulator.
//!
//! Mirrors the design of the Compass simulator (paper Section III-B):
//!
//! * **Parallelism across threads** — cores are partitioned into
//!   contiguous, load-balanced ranges ([`crate::partition`]), one per
//!   worker thread; each thread owns its cores' state exclusively.
//! * **Semi-synchronous phase loop** — every tick runs Synapse + Neuron
//!   phases on the owned cores, then a Network phase exchanging spikes,
//!   separated by barriers to keep the simulation deterministic.
//! * **Message aggregation** — outgoing spikes are buffered per
//!   (source-thread, destination-thread) pair and handed over in bulk,
//!   the shared-memory analogue of Compass aggregating spikes between
//!   pairs of MPI processes into a single message. The
//!   [`AggregationMode::GlobalQueue`] mode disables this (one shared
//!   queue, one lock acquisition per spike) and exists purely as the
//!   ablation baseline for the paper's aggregation claim.
//!
//! ## The persistent worker pool
//!
//! Threads are spawned **once**, on the first [`ParallelSim::run`] call,
//! together with the weighted partition and the mailbox matrix; later
//! runs only publish a job descriptor and wake the pool. This matters for
//! served sessions, which step the simulator one tick per `run` call —
//! per-run spawning would pay thread creation and partitioning on every
//! tick. The calling thread participates as worker 0 (it is the only
//! thread that polls the external [`SpikeSource`], so the source needs no
//! locking), and [`PoolMode::PerRun`] restores the old spawn-per-run
//! behaviour as an ablation baseline.
//!
//! The mailbox matrix is double-buffered by tick parity: spikes fired at
//! tick `t` land in buffer `t & 1`, so the writes of tick `t+1` can never
//! collide with a late drain of tick `t`, and the Pairwise tick needs
//! only **two** barriers (input ready / mailboxes written) instead of the
//! four a single-buffered exchange requires. On quiet ticks — no external
//! input pending, broadcast through an atomic length — workers skip the
//! input lock entirely.
//!
//! Determinism: spike delivery is an idempotent, commutative bit-set into
//! per-tick delay-buffer slots, and each core's PRNG/potential updates are
//! confined to its owner thread, so the final network state is identical
//! for any thread count — verified against [`crate::ReferenceSim`] in the
//! equivalence tests.

use crate::output::{OutputEvent, SpikeRecord};
use crate::partition::{owner_of, weighted_split_points};
use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{thread, Arc, Barrier, Condvar, Mutex};
use std::time::Instant;
use tn_core::fault::{FaultCounters, FaultPlan, FaultState};
use tn_core::nscore::NeurosynapticCore;
use tn_core::{Dest, Network, OutSpike, RunStats, SpikeSource, TickStats};
use tn_obs::{Histogram, TickObserver, TickPhase, TickSummary};

/// How threads hand spikes to each other.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AggregationMode {
    /// Pairwise per-thread buffers exchanged in bulk (Compass's scheme).
    #[default]
    Pairwise,
    /// A single global spike queue with per-spike locking — the
    /// no-aggregation ablation baseline.
    GlobalQueue,
}

/// Worker-pool lifetime policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PoolMode {
    /// Spawn the pool once and reuse it across [`ParallelSim::run`]
    /// calls (the fast path).
    #[default]
    Persistent,
    /// Spawn and join a fresh pool on every `run` call — the ablation
    /// baseline measuring what the persistent pool saves.
    PerRun,
}

/// A spike in flight between threads.
#[derive(Clone, Copy, Debug)]
struct Packet {
    core: u32,
    axon: u8,
    delay: u8,
}

/// Raw base pointer to the network's core array, valid only for the
/// duration of one job. Workers slice disjoint `starts[k]..starts[k+1]`
/// ranges out of it, so no two threads alias the same core.
#[derive(Clone, Copy)]
struct CoreBase(*mut NeurosynapticCore);
// SAFETY: the pointee is owned by `ParallelSim`, which blocks in
// `run_job` until every worker has passed the end-of-job barrier; each
// worker touches only its own contiguous range.
unsafe impl Send for CoreBase {}
// SAFETY: shared `CoreBase` references only copy the raw pointer; every
// dereference happens through a worker's disjoint starts[k]..starts[k+1]
// slice, and the end-of-job barrier in `run_ticks` orders all slice
// accesses before `run_job` returns the array to `ParallelSim`. Under
// `cfg(tn_check)` this contract is asserted via `active_slices`.
unsafe impl Sync for CoreBase {}

/// One `run()` call's worth of work, published to the pool.
#[derive(Clone)]
struct JobDesc {
    cores: CoreBase,
    num_cores: usize,
    start_tick: u64,
    ticks: u64,
    grid_w: usize,
    mode: AggregationMode,
    /// Counter-zeroed fault-state prototype; each worker clones its own
    /// fork so the fault path needs no synchronization.
    fault_proto: Option<FaultState>,
}

/// Dispatch slot: monotonically increasing generation + current job.
struct JobSlot {
    generation: u64,
    shutdown: bool,
    job: Option<JobDesc>,
}

/// State shared between the pool's threads for its whole lifetime.
struct PoolShared {
    slot: Mutex<JobSlot>,
    wake: Condvar,
    barrier: Barrier,
    /// Partition start offsets, computed once from per-core synaptic
    /// weight at pool creation.
    starts: Vec<usize>,
    /// `mailboxes[t & 1][src][dst]` — double-buffered by tick parity so
    /// adjacent ticks never touch the same buffer.
    mailboxes: [Vec<Vec<Mutex<Vec<Packet>>>>; 2],
    global_queue: Mutex<Vec<Packet>>,
    input: Mutex<Vec<(tn_core::CoreId, u8)>>,
    /// Length of `input` this tick, broadcast so workers can skip the
    /// lock when no external events are pending.
    input_len: AtomicUsize,
    merged: Mutex<(TickStats, Vec<OutputEvent>)>,
    fault_merged: Mutex<FaultCounters>,
    dropped: AtomicU64,
    /// Nanoseconds each worker spends parked at the per-tick barriers
    /// (observability; shared with [`ParallelSim::pool_metrics`] so the
    /// series survives pool teardown in [`PoolMode::PerRun`]).
    barrier_wait_ns: Arc<Histogram>,
    /// Packets drained from a worker's mailbox column per tick.
    mailbox_packets: Arc<Histogram>,
    /// Model-checking only: how many workers currently hold a
    /// raw-pointer-derived slice of the job's core array. The checker
    /// asserts it returns to zero before `run_job` hands the array
    /// back — the happens-before contract behind `CoreBase`'s
    /// `unsafe impl Sync`.
    // sync: checker-only instrumentation counter; SeqCst in the model.
    #[cfg(tn_check)]
    active_slices: AtomicUsize,
}

/// A spawned worker pool: `starts.len()` participants, of which
/// `handles.len() == starts.len() - 1` are background threads and the
/// remaining one is whichever thread calls [`ParallelSim::run`].
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
}

/// Histogram handles owned by the simulator so the recorded series
/// survives pool teardown/respawn ([`PoolMode::PerRun`]).
#[derive(Clone)]
pub(crate) struct PoolMetrics {
    pub(crate) barrier_wait_ns: Arc<Histogram>,
    pub(crate) mailbox_packets: Arc<Histogram>,
}

impl PoolMetrics {
    fn new() -> Self {
        PoolMetrics {
            // 1 µs .. ~16 ms edges: spans "barely parked" to "a whole
            // paper tick lost waiting".
            barrier_wait_ns: Arc::new(Histogram::exponential(1_000, 4, 8)),
            // 1 .. 16384 packets per worker-tick drain.
            mailbox_packets: Arc::new(Histogram::exponential(1, 4, 8)),
        }
    }
}

impl WorkerPool {
    fn new(net: &Network, threads: usize, metrics: &PoolMetrics) -> WorkerPool {
        // Load-balanced contiguous partition by per-core synaptic weight.
        let weights: Vec<u64> = net
            .cores()
            .iter()
            .map(|c| 64 + c.config().crossbar.active_synapses() as u64)
            .collect();
        let starts = weighted_split_points(&weights, threads);
        let n = starts.len(); // may have been clamped

        let mailbox = || -> Vec<Vec<Mutex<Vec<Packet>>>> {
            (0..n)
                .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
                .collect()
        };
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot {
                generation: 0,
                shutdown: false,
                job: None,
            }),
            wake: Condvar::new(),
            barrier: Barrier::new(n),
            starts,
            mailboxes: [mailbox(), mailbox()],
            global_queue: Mutex::new(Vec::new()),
            input: Mutex::new(Vec::new()),
            // sync: store(Release) by worker 0 pairs with load(Acquire)
            // in every worker after barrier (1); the barrier itself
            // already orders the write, the Release/Acquire pair makes
            // the quiet-tick fast path self-contained.
            input_len: AtomicUsize::new(0),
            merged: Mutex::new((TickStats::default(), Vec::new())),
            fault_merged: Mutex::new(FaultCounters::default()),
            // sync: monotone drop counter; written by worker 0 only,
            // read/reset by the coordinator after the end-of-job
            // barrier, so Relaxed suffices.
            dropped: AtomicU64::new(0),
            barrier_wait_ns: Arc::clone(&metrics.barrier_wait_ns),
            mailbox_packets: Arc::clone(&metrics.mailbox_packets),
            // sync: model-only audit of the CoreBase Sync contract —
            // incremented when a worker forms its slice, decremented
            // before the end-of-job barrier, asserted zero in run_job.
            #[cfg(tn_check)]
            active_slices: AtomicUsize::new(0),
        });

        let handles = (1..n)
            .map(|k| {
                let shared = Arc::clone(&shared);
                // sync: joined in WorkerPool::drop after the shutdown
                // generation is published.
                thread::spawn(move || worker_loop(k, &shared))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Publish a job, execute it as worker 0, and wait for the pool.
    fn run_job(&self, job: JobDesc, src: &mut (dyn SpikeSource + Send)) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.generation += 1;
            slot.job = Some(job.clone());
        }
        self.shared.wake.notify_all();
        // The end-of-job barrier inside run_ticks doubles as the
        // completion wait: when worker 0 returns, every worker has merged
        // its results and stopped touching the job's core array.
        run_ticks(0, &self.shared, &job, Some(src));
        // Model-checked form of the CoreBase Sync contract: by the time
        // run_job returns, no worker may still hold a slice of the core
        // array.
        #[cfg(tn_check)]
        assert_eq!(
            self.shared.active_slices.load(Ordering::SeqCst),
            0,
            "worker still holds a core slice after the end-of-job barrier"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.shutdown = true;
        }
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Background worker: sleep on the dispatch slot, run each published
/// generation exactly once, exit on shutdown.
fn worker_loop(k: usize, shared: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation > seen {
                    // Workers must observe every published generation:
                    // the end-of-job barrier keeps the pool in lockstep,
                    // so a skipped generation means a handshake bug.
                    #[cfg(tn_check)]
                    assert_eq!(
                        slot.generation,
                        seen + 1,
                        "worker {k} skipped a pool generation"
                    );
                    seen = slot.generation;
                    break slot.job.clone().expect("generation bumped without job");
                }
                slot = shared.wake.wait(slot).unwrap();
            }
        };
        run_ticks(k, shared, &job, None);
    }
}

/// The per-worker tick loop. Worker 0 (always the thread inside
/// [`ParallelSim::run`]) additionally polls the spike source.
fn run_ticks(
    k: usize,
    shared: &PoolShared,
    job: &JobDesc,
    mut src: Option<&mut (dyn SpikeSource + Send)>,
) {
    let n = shared.starts.len();
    let starts = &shared.starts[..];
    let my_lo = starts[k];
    let my_hi = if k + 1 < n {
        starts[k + 1]
    } else {
        job.num_cores
    };
    // SAFETY: ranges [starts[k], starts[k+1]) are disjoint across
    // workers and the array outlives the job (see `CoreBase`).
    let my_cores: &mut [NeurosynapticCore] =
        unsafe { std::slice::from_raw_parts_mut(job.cores.0.add(my_lo), my_hi - my_lo) };
    #[cfg(tn_check)]
    shared.active_slices.fetch_add(1, Ordering::SeqCst);
    let my_offset = my_lo as u32;
    let mode = job.mode;

    let mut local_stats = TickStats::default();
    let mut local_out: Vec<OutputEvent> = Vec::new();
    let mut spike_buf: Vec<OutSpike> = Vec::new();
    let mut buckets: Vec<Vec<Packet>> = (0..n).map(|_| Vec::new()).collect();
    let mut fk = job.fault_proto.clone();
    // Time spent parked at a barrier = load imbalance made visible. The
    // observation never influences simulation state, so determinism holds.
    let timed_wait = || {
        let t0 = Instant::now();
        shared.barrier.wait();
        shared
            .barrier_wait_ns
            .observe(t0.elapsed().as_nanos() as u64);
    };

    for t in job.start_tick..job.start_tick + job.ticks {
        // -- fault phase: every fork advances in lockstep; structural
        //    mutations land only on owned cores --
        if let Some(f) = fk.as_mut() {
            for i in f.advance(t) {
                let ev = f.events()[i];
                let idx = ev.coord.y as usize * job.grid_w + ev.coord.x as usize;
                if owner_of(starts, idx) == k {
                    let core = &mut my_cores[idx - my_offset as usize];
                    FaultState::apply_to_core(&ev, core, f.seed());
                }
            }
            for &(core, axon) in f.stuck1() {
                if owner_of(starts, core as usize) == k {
                    my_cores[core as usize - my_offset as usize].deliver(t, axon);
                }
            }
        }

        // -- input phase (worker 0 polls the source) --
        if k == 0 {
            let mut inp = shared.input.lock().unwrap();
            inp.clear();
            if let Some(s) = src.as_deref_mut() {
                s.fill(t, &mut inp);
            }
            // Bounds-check the injection here, once, so a misbehaving
            // source is diagnosed instead of panicking a worker mid-tick.
            let before = inp.len();
            inp.retain(|(core, _)| core.index() < job.num_cores);
            let bad = (before - inp.len()) as u64;
            if bad > 0 {
                // sync: see PoolShared.dropped — single writer, read
                // after the end-of-job barrier.
                shared.dropped.fetch_add(bad, Ordering::Relaxed);
            }
            shared.input_len.store(inp.len(), Ordering::Release);
        }
        timed_wait(); // (1) input ready; prior tick fully drained
        if shared.input_len.load(Ordering::Acquire) > 0 {
            let inp = shared.input.lock().unwrap();
            for &(core, axon) in inp.iter() {
                if owner_of(starts, core.index()) == k {
                    if let Some(f) = fk.as_mut() {
                        if !f.allow_external(t, core.0, axon) {
                            continue;
                        }
                    }
                    my_cores[core.index() - my_offset as usize].deliver(t + 1, axon);
                }
            }
        }

        // -- synapse + neuron phases on owned cores --
        spike_buf.clear();
        for core in my_cores.iter_mut() {
            core.tick(t, &mut spike_buf, &mut local_stats);
        }

        // -- network phase, local half: bucket spikes --
        let parity = (t & 1) as usize;
        for s in spike_buf.drain(..) {
            match s.dest {
                Dest::Axon(tgt) => {
                    // Fire-side filtering: the source owner decides, so
                    // every drop is counted exactly once across forks.
                    if let Some(f) = fk.as_mut() {
                        if !f.allow_spike(t, s.src.core.0, tgt.core.0, tgt.axon) {
                            continue;
                        }
                    }
                    let pkt = Packet {
                        core: tgt.core.0,
                        axon: tgt.axon,
                        delay: tgt.delay,
                    };
                    match mode {
                        AggregationMode::Pairwise => {
                            let dst = owner_of(starts, tgt.core.index());
                            buckets[dst].push(pkt);
                        }
                        AggregationMode::GlobalQueue => {
                            // Ablation: one lock per spike.
                            shared.global_queue.lock().unwrap().push(pkt);
                        }
                    }
                }
                Dest::Output(port) => local_out.push(OutputEvent { tick: t, port }),
                Dest::None => {}
            }
        }
        if mode == AggregationMode::Pairwise {
            for (dst, bucket) in buckets.iter_mut().enumerate() {
                if !bucket.is_empty() {
                    let mut mbox = shared.mailboxes[parity][k][dst].lock().unwrap();
                    std::mem::swap(&mut *mbox, bucket);
                }
            }
        }
        timed_wait(); // (2) all mailboxes written

        // -- network phase, remote half: drain and deliver. Runs
        // unbarriered into the next tick: the next tick's spikes land in
        // the other parity buffer, and barrier (1) orders this drain
        // before the next input read. --
        match mode {
            AggregationMode::Pairwise => {
                let mut drained = 0u64;
                for row in shared.mailboxes[parity].iter() {
                    let mut mbox = row[k].lock().unwrap();
                    drained += mbox.len() as u64;
                    for pkt in mbox.drain(..) {
                        let idx = pkt.core as usize - my_offset as usize;
                        my_cores[idx].deliver(t + pkt.delay as u64, pkt.axon);
                    }
                }
                shared.mailbox_packets.observe(drained);
            }
            AggregationMode::GlobalQueue => {
                {
                    let q = shared.global_queue.lock().unwrap();
                    let mut drained = 0u64;
                    for pkt in q.iter() {
                        if owner_of(starts, pkt.core as usize) == k {
                            let idx = pkt.core as usize - my_offset as usize;
                            my_cores[idx].deliver(t + pkt.delay as u64, pkt.axon);
                            drained += 1;
                        }
                    }
                    shared.mailbox_packets.observe(drained);
                }
                timed_wait(); // (3) all drains done
                if k == 0 {
                    // Cleared before barrier (1) of the next tick, which
                    // orders it ahead of the next tick's pushes.
                    shared.global_queue.lock().unwrap().clear();
                }
            }
        }
    }

    if let Some(f) = fk {
        shared.fault_merged.lock().unwrap().merge(f.counters());
    }
    {
        let mut m = shared.merged.lock().unwrap();
        m.0 += local_stats;
        m.1.append(&mut local_out);
    }
    // The slice is dead from here on; the release must precede the
    // end-of-job barrier so `run_job`'s zero-check observes it.
    #[cfg(tn_check)]
    shared.active_slices.fetch_sub(1, Ordering::SeqCst);
    shared.barrier.wait(); // end-of-job: results merged, core array released
}

/// Multithreaded software expression of the kernel.
pub struct ParallelSim {
    net: Network,
    threads: usize,
    mode: AggregationMode,
    pool_mode: PoolMode,
    pool: Option<WorkerPool>,
    tick: u64,
    stats: RunStats,
    outputs: SpikeRecord,
    dropped_inputs: u64,
    faults: Option<FaultState>,
    pool_metrics: PoolMetrics,
    observer: Option<Arc<dyn TickObserver>>,
}

impl ParallelSim {
    /// Create a simulator using `threads` worker threads (clamped to the
    /// number of cores in the network).
    pub fn new(net: Network, threads: usize) -> Self {
        Self::with_mode(net, threads, AggregationMode::Pairwise)
    }

    pub fn with_mode(net: Network, threads: usize, mode: AggregationMode) -> Self {
        Self::with_options(net, threads, mode, PoolMode::Persistent)
    }

    pub fn with_options(
        net: Network,
        threads: usize,
        mode: AggregationMode,
        pool_mode: PoolMode,
    ) -> Self {
        let threads = threads.clamp(1, net.num_cores());
        ParallelSim {
            net,
            threads,
            mode,
            pool_mode,
            pool: None,
            tick: 0,
            stats: RunStats::default(),
            outputs: SpikeRecord::new(),
            dropped_inputs: 0,
            faults: None,
            pool_metrics: PoolMetrics::new(),
            observer: None,
        }
    }

    /// Attach per-tick span hooks (see [`tn_obs::TickObserver`]). Hooks
    /// fire on the coordinating thread at tick granularity; with an
    /// observer attached, multi-tick `run` calls execute tick by tick so
    /// every tick is observed.
    pub fn set_observer(&mut self, observer: Arc<dyn TickObserver>) {
        self.observer = Some(observer);
    }

    /// Worker-pool telemetry: time parked at barriers and mailbox
    /// occupancy per worker-tick.
    pub fn pool_barrier_wait_ns(&self) -> Arc<Histogram> {
        Arc::clone(&self.pool_metrics.barrier_wait_ns)
    }

    /// See [`ParallelSim::pool_barrier_wait_ns`].
    pub fn pool_mailbox_packets(&self) -> Arc<Histogram> {
        Arc::clone(&self.pool_metrics.mailbox_packets)
    }

    /// Attach a compiled fault plan (identical semantics to
    /// [`crate::ReferenceSim::attach_faults`]): each worker thread runs a
    /// counter-zeroed fork, spikes are filtered on the firing side so
    /// every drop is counted exactly once, and structural faults are
    /// applied by the thread owning the faulted core.
    pub fn attach_faults(&mut self, plan: &FaultPlan) {
        self.faults = Some(FaultState::compile(
            plan,
            self.net.width(),
            self.net.height(),
        ));
    }

    /// The attached fault state (counters, schedule), if any.
    pub fn faults(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Checkpoint the simulation at the current tick boundary.
    pub fn checkpoint(&self) -> tn_core::NetworkSnapshot {
        tn_core::NetworkSnapshot::capture(&self.net, self.tick)
    }

    /// Restore a checkpoint taken from an identically-configured
    /// simulation; the tick counter resumes from the snapshot's tick.
    pub fn restore(&mut self, snap: &tn_core::NetworkSnapshot) {
        snap.restore(&mut self.net);
        self.tick = snap.tick;
        if let Some(f) = &mut self.faults {
            f.reset_for_restore(&mut self.net, snap.tick);
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn pool_mode(&self) -> PoolMode {
        self.pool_mode
    }

    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    pub fn outputs(&mut self) -> &mut SpikeRecord {
        &mut self.outputs
    }

    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Externally injected events dropped because they targeted a core
    /// outside the grid (diagnosed instead of panicking at tick time).
    pub fn dropped_inputs(&self) -> u64 {
        self.dropped_inputs
    }

    pub fn into_parts(self) -> (Network, SpikeRecord, RunStats) {
        (self.net, self.outputs, self.stats)
    }

    /// Run `ticks` steps on the worker pool. In [`PoolMode::Persistent`]
    /// the pool (threads, partition, mailboxes) is created on the first
    /// call and reused afterwards; the calling thread joins in as worker
    /// 0 and is the only thread that polls `src`.
    pub fn run(&mut self, ticks: u64, src: &mut (dyn SpikeSource + Send)) -> RunStats {
        if ticks == 0 {
            return self.stats;
        }
        // With span hooks attached, a multi-tick run executes tick by
        // tick so the observer sees every tick boundary (results are
        // bit-identical; only job granularity changes).
        if self.observer.is_some() && ticks > 1 {
            for _ in 0..ticks {
                self.run(1, src);
            }
            return self.stats;
        }
        if let Some(obs) = &self.observer {
            obs.on_tick_start(self.tick);
        }
        let start_tick = self.tick;
        let per_run_pool;
        let pool = match self.pool_mode {
            PoolMode::Persistent => {
                if self.pool.is_none() {
                    self.pool = Some(WorkerPool::new(&self.net, self.threads, &self.pool_metrics));
                }
                self.pool.as_ref().unwrap()
            }
            PoolMode::PerRun => {
                per_run_pool = WorkerPool::new(&self.net, self.threads, &self.pool_metrics);
                &per_run_pool
            }
        };
        let job = JobDesc {
            cores: CoreBase(self.net.cores_mut().as_mut_ptr()),
            num_cores: self.net.num_cores(),
            start_tick,
            ticks,
            grid_w: self.net.width() as usize,
            mode: self.mode,
            // Each worker runs a counter-zeroed fork of the fault state
            // so no synchronization is needed on the fault path; drop
            // counters are merged back at the end of the run.
            fault_proto: self.faults.as_ref().map(|f| f.fork()),
        };

        let wall = Instant::now();
        pool.run_job(job, src);
        let elapsed = wall.elapsed().as_secs_f64();

        let (tick_totals, outs) = {
            let mut m = pool.shared.merged.lock().unwrap();
            let totals = m.0;
            m.0 = TickStats::default();
            (totals, std::mem::take(&mut m.1))
        };
        let fault_counters = std::mem::take(&mut *pool.shared.fault_merged.lock().unwrap());
        // sync: the end-of-job barrier inside run_job already ordered
        // worker 0's writes before this read-and-reset.
        self.dropped_inputs += pool.shared.dropped.swap(0, Ordering::Relaxed);
        if let Some(f) = &mut self.faults {
            // Workers already applied the structural mutations to the
            // master's cores (they own slices of them); catch the
            // master's registries up and fold the forks' counters in.
            f.fast_forward(start_tick + ticks - 1);
            f.counters_mut().merge(&fault_counters);
        }
        self.outputs.extend(outs);
        self.stats.ticks += ticks;
        self.stats.totals += tick_totals;
        self.stats.wall_seconds += elapsed;
        self.tick += ticks;
        if let Some(obs) = &self.observer {
            // Single-tick job (guaranteed by the observer pre-loop above
            // when ticks > 1): the merged totals are this tick's deltas.
            obs.on_phase(start_tick, TickPhase::Merge);
            obs.on_tick_end(&TickSummary {
                tick: start_tick,
                axon_events: tick_totals.axon_events,
                sops: tick_totals.sops,
                neuron_updates: tick_totals.neuron_updates,
                spikes_out: tick_totals.spikes_out,
                prng_draws: tick_totals.prng_draws,
            });
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceSim;
    use tn_core::{
        CoreConfig, CoreId, Crossbar, NetworkBuilder, NeuronConfig, ScheduledSource, SpikeTarget,
    };

    /// Random-ish stochastic recurrent network over `w×h` cores.
    fn stochastic_net(w: u16, h: u16, seed: u64) -> Network {
        let mut b = NetworkBuilder::new(w, h, seed);
        let num = (w as u32 * h as u32) as usize;
        for c in 0..num {
            let mut cfg = CoreConfig::new();
            *cfg.crossbar = Crossbar::from_fn(|i, j| (i * 31 + j * 17 + c) % 13 == 0);
            for j in 0..256 {
                cfg.neurons[j] = NeuronConfig::stochastic_source(20);
                // Recurrent connections with zero weight keep rates
                // stationary while still exercising routing.
                cfg.neurons[j].weights = [0; 4];
                let tgt = ((c * 7 + j * 3) % num) as u32;
                cfg.neurons[j].dest = Dest::Axon(SpikeTarget::new(
                    CoreId(tgt),
                    ((j * 11 + c) % 256) as u8,
                    1 + ((j + c) % 15) as u8,
                ));
            }
            b.add_core(cfg);
        }
        b.build()
    }

    fn digest_after(net: Network, threads: usize, ticks: u64) -> (u64, u64) {
        if threads == 0 {
            let mut sim = ReferenceSim::new(net);
            sim.run(ticks, &mut tn_core::network::NullSource);
            (sim.network().state_digest(), sim.stats().totals.spikes_out)
        } else {
            let mut sim = ParallelSim::new(net, threads);
            sim.run(ticks, &mut tn_core::network::NullSource);
            (sim.network().state_digest(), sim.stats().totals.spikes_out)
        }
    }

    #[test]
    fn parallel_matches_reference_all_thread_counts() {
        let (ref_digest, ref_spikes) = digest_after(stochastic_net(4, 4, 99), 0, 40);
        assert!(ref_spikes > 0, "network must actually be active");
        for threads in [1, 2, 3, 4, 7, 16] {
            let (d, s) = digest_after(stochastic_net(4, 4, 99), threads, 40);
            assert_eq!(d, ref_digest, "{threads} threads diverged");
            assert_eq!(s, ref_spikes);
        }
    }

    #[test]
    fn global_queue_mode_matches_too() {
        let (ref_digest, _) = digest_after(stochastic_net(3, 3, 5), 0, 30);
        let mut sim =
            ParallelSim::with_mode(stochastic_net(3, 3, 5), 4, AggregationMode::GlobalQueue);
        sim.run(30, &mut tn_core::network::NullSource);
        assert_eq!(sim.network().state_digest(), ref_digest);
    }

    #[test]
    fn per_run_pool_mode_matches_too() {
        let (ref_digest, _) = digest_after(stochastic_net(3, 3, 5), 0, 30);
        let mut sim = ParallelSim::with_options(
            stochastic_net(3, 3, 5),
            4,
            AggregationMode::Pairwise,
            PoolMode::PerRun,
        );
        sim.run(30, &mut tn_core::network::NullSource);
        assert_eq!(sim.network().state_digest(), ref_digest);
        assert_eq!(sim.pool_mode(), PoolMode::PerRun);
    }

    #[test]
    fn many_single_tick_runs_reuse_the_pool() {
        // The served-session access pattern: one run() call per tick.
        let (ref_digest, _) = digest_after(stochastic_net(3, 3, 7), 0, 25);
        let mut sim = ParallelSim::new(stochastic_net(3, 3, 7), 3);
        for _ in 0..25 {
            sim.run(1, &mut tn_core::network::NullSource);
        }
        assert_eq!(sim.network().state_digest(), ref_digest);
        assert_eq!(sim.current_tick(), 25);
    }

    #[test]
    fn external_input_matches_reference() {
        let mk_src = || {
            let mut s = ScheduledSource::new();
            for t in 0..20 {
                s.push(t, CoreId((t % 9) as u32), (t * 13 % 256) as u8);
            }
            s
        };
        let mut a = ReferenceSim::new(stochastic_net(3, 3, 1));
        a.run(25, &mut mk_src());
        let mut b = ParallelSim::new(stochastic_net(3, 3, 1), 3);
        b.run(25, &mut mk_src());
        assert_eq!(a.network().state_digest(), b.network().state_digest());
        assert_eq!(a.outputs().digest(), b.outputs().digest());
    }

    #[test]
    fn outputs_collected_across_threads() {
        let mut b = NetworkBuilder::new(4, 1, 0);
        for c in 0..4u32 {
            let mut cfg = CoreConfig::new();
            *cfg.crossbar = Crossbar::from_fn(|i, j| i == j);
            for j in 0..256 {
                cfg.neurons[j] = NeuronConfig::lif(1, 1);
                cfg.neurons[j].dest = Dest::Output(c * 256 + j as u32);
            }
            b.add_core(cfg);
        }
        let mut sim = ParallelSim::new(b.build(), 4);
        let mut src = ScheduledSource::new();
        for c in 0..4u32 {
            src.push(0, CoreId(c), 7);
        }
        sim.run(3, &mut src);
        let ev = sim.outputs().events().to_vec();
        assert_eq!(ev.len(), 4);
        let ports: Vec<u32> = ev.iter().map(|e| e.port).collect();
        assert_eq!(ports, vec![7, 263, 519, 775]);
    }

    #[test]
    fn resume_runs_continue_tick_count() {
        let mut sim = ParallelSim::new(stochastic_net(2, 2, 3), 2);
        sim.run(10, &mut tn_core::network::NullSource);
        assert_eq!(sim.current_tick(), 10);
        sim.run(5, &mut tn_core::network::NullSource);
        assert_eq!(sim.current_tick(), 15);
        assert_eq!(sim.stats().ticks, 15);

        // Split run must equal one continuous run.
        let mut whole = ParallelSim::new(stochastic_net(2, 2, 3), 2);
        whole.run(15, &mut tn_core::network::NullSource);
        assert_eq!(sim.network().state_digest(), whole.network().state_digest());
    }

    #[test]
    fn out_of_grid_injection_dropped_in_parallel() {
        let mut sim = ParallelSim::new(stochastic_net(2, 2, 3), 2);
        let mut src = ScheduledSource::new();
        src.push(0, CoreId(99), 1); // outside the 4-core grid
        src.push(1, CoreId(1), 1);
        sim.run(3, &mut src);
        assert_eq!(sim.dropped_inputs(), 1);
    }

    #[test]
    fn threads_clamped_to_core_count() {
        let sim = ParallelSim::new(stochastic_net(2, 1, 0), 64);
        assert_eq!(sim.threads(), 2);
    }
}

/// Model-checked protocol tests (run with `RUSTFLAGS="--cfg tn_check"`):
/// the pool's generation/condvar handshake, per-tick barriers, mailbox
/// exchange, and shutdown are explored across thousands of thread
/// interleavings, with the `CoreBase` happens-before contract and the
/// no-skipped-generation invariant asserted inside the model.
#[cfg(all(test, tn_check))]
mod model_tests {
    use super::*;
    use crate::reference::ReferenceSim;
    use tn_core::network::NullSource;
    use tn_core::{CoreConfig, CoreId, NetworkBuilder, NeuronConfig, SpikeTarget};

    /// Schedules per protocol; CI raises this via the environment.
    fn schedules(default: u64) -> u64 {
        std::env::var("TN_CHECK_SCHEDULES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Two cores, a handful of stochastic neurons each, cross-core
    /// targets — small enough to model-check, busy enough to exercise
    /// the mailbox exchange every tick.
    fn tiny_net() -> Network {
        let mut b = NetworkBuilder::new(2, 1, 7);
        for c in 0..2u32 {
            let mut cfg = CoreConfig::new();
            for j in 0..8usize {
                cfg.neurons[j] = NeuronConfig::stochastic_source(64);
                cfg.neurons[j].weights = [0; 4];
                cfg.neurons[j].dest = Dest::Axon(SpikeTarget::new(
                    CoreId(1 - c),
                    ((j * 11 + c as usize) % 256) as u8,
                    1 + (j % 3) as u8,
                ));
            }
            b.add_core(cfg);
        }
        b.build()
    }

    #[test]
    fn model_pool_handshake_reaches_reference_digest() {
        let expected = {
            let mut sim = ReferenceSim::new(tiny_net());
            sim.run(2, &mut NullSource);
            sim.network().state_digest()
        };
        let n = schedules(400);
        let report = tn_check::check_random(&tn_check::Config::default(), n, 0xC0FFEE, || {
            let mut sim = ParallelSim::new(tiny_net(), 2);
            // Two runs on one pool: generation 1 then 2, exercising
            // handshake reuse; dropping the sim model-checks shutdown.
            sim.run(1, &mut NullSource);
            sim.run(1, &mut NullSource);
            assert_eq!(sim.network().state_digest(), expected, "digest diverged");
        });
        report.assert_ok();
        assert_eq!(report.schedules, n);
        println!("model_pool_handshake: {} clean schedules", report.schedules);
    }

    #[test]
    fn model_global_queue_mode_holds_too() {
        let expected = {
            let mut sim = ReferenceSim::new(tiny_net());
            sim.run(2, &mut NullSource);
            sim.network().state_digest()
        };
        let n = schedules(400) / 4;
        let report = tn_check::check_random(&tn_check::Config::default(), n, 0x5EED, || {
            let mut sim = ParallelSim::with_mode(tiny_net(), 2, AggregationMode::GlobalQueue);
            sim.run(2, &mut NullSource);
            assert_eq!(sim.network().state_digest(), expected, "digest diverged");
        });
        report.assert_ok();
        println!("model_global_queue: {} clean schedules", report.schedules);
    }
}
