//! Multithreaded Compass simulator.
//!
//! Mirrors the design of the Compass simulator (paper Section III-B):
//!
//! * **Parallelism across threads** — cores are partitioned into
//!   contiguous, load-balanced ranges ([`crate::partition`]), one per
//!   worker thread; each thread owns its cores' state exclusively.
//! * **Semi-synchronous phase loop** — every tick runs Synapse + Neuron
//!   phases on the owned cores, then a Network phase exchanging spikes,
//!   separated by barriers to keep the simulation deterministic.
//! * **Message aggregation** — outgoing spikes are buffered per
//!   (source-thread, destination-thread) pair and handed over in bulk,
//!   the shared-memory analogue of Compass aggregating spikes between
//!   pairs of MPI processes into a single message. The
//!   [`AggregationMode::GlobalQueue`] mode disables this (one shared
//!   queue, one lock acquisition per spike) and exists purely as the
//!   ablation baseline for the paper's aggregation claim.
//!
//! Determinism: spike delivery is an idempotent, commutative bit-set into
//! per-tick delay-buffer slots, and each core's PRNG/potential updates are
//! confined to its owner thread, so the final network state is identical
//! for any thread count — verified against [`crate::ReferenceSim`] in the
//! equivalence tests.

use crate::output::{OutputEvent, SpikeRecord};
use crate::partition::{owner_of, weighted_split_points};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;
use tn_core::fault::{FaultCounters, FaultPlan, FaultState};
use tn_core::{Dest, Network, OutSpike, RunStats, SpikeSource, TickStats};

/// How threads hand spikes to each other.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AggregationMode {
    /// Pairwise per-thread buffers exchanged in bulk (Compass's scheme).
    #[default]
    Pairwise,
    /// A single global spike queue with per-spike locking — the
    /// no-aggregation ablation baseline.
    GlobalQueue,
}

/// A spike in flight between threads.
#[derive(Clone, Copy, Debug)]
struct Packet {
    core: u32,
    axon: u8,
    delay: u8,
}

/// Multithreaded software expression of the kernel.
pub struct ParallelSim {
    net: Network,
    threads: usize,
    mode: AggregationMode,
    tick: u64,
    stats: RunStats,
    outputs: SpikeRecord,
    dropped_inputs: u64,
    faults: Option<FaultState>,
}

impl ParallelSim {
    /// Create a simulator using `threads` worker threads (clamped to the
    /// number of cores in the network).
    pub fn new(net: Network, threads: usize) -> Self {
        Self::with_mode(net, threads, AggregationMode::Pairwise)
    }

    pub fn with_mode(net: Network, threads: usize, mode: AggregationMode) -> Self {
        let threads = threads.clamp(1, net.num_cores());
        ParallelSim {
            net,
            threads,
            mode,
            tick: 0,
            stats: RunStats::default(),
            outputs: SpikeRecord::new(),
            dropped_inputs: 0,
            faults: None,
        }
    }

    /// Attach a compiled fault plan (identical semantics to
    /// [`crate::ReferenceSim::attach_faults`]): each worker thread runs a
    /// counter-zeroed fork, spikes are filtered on the firing side so
    /// every drop is counted exactly once, and structural faults are
    /// applied by the thread owning the faulted core.
    pub fn attach_faults(&mut self, plan: &FaultPlan) {
        self.faults = Some(FaultState::compile(
            plan,
            self.net.width(),
            self.net.height(),
        ));
    }

    /// The attached fault state (counters, schedule), if any.
    pub fn faults(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Checkpoint the simulation at the current tick boundary.
    pub fn checkpoint(&self) -> tn_core::NetworkSnapshot {
        tn_core::NetworkSnapshot::capture(&self.net, self.tick)
    }

    /// Restore a checkpoint taken from an identically-configured
    /// simulation; the tick counter resumes from the snapshot's tick.
    pub fn restore(&mut self, snap: &tn_core::NetworkSnapshot) {
        snap.restore(&mut self.net);
        self.tick = snap.tick;
        if let Some(f) = &mut self.faults {
            f.reset_for_restore(&mut self.net, snap.tick);
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    pub fn outputs(&mut self) -> &mut SpikeRecord {
        &mut self.outputs
    }

    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Externally injected events dropped because they targeted a core
    /// outside the grid (diagnosed instead of panicking at tick time).
    pub fn dropped_inputs(&self) -> u64 {
        self.dropped_inputs
    }

    pub fn into_parts(self) -> (Network, SpikeRecord, RunStats) {
        (self.net, self.outputs, self.stats)
    }

    /// Run `ticks` steps on the worker pool. Workers are spawned per call;
    /// for realistic tick counts the spawn cost is negligible relative to
    /// simulation work.
    pub fn run(&mut self, ticks: u64, src: &mut (dyn SpikeSource + Send)) -> RunStats {
        if ticks == 0 {
            return self.stats;
        }
        let n = self.threads;
        let start_tick = self.tick;
        let grid_w = self.net.width() as usize;

        // Load-balanced contiguous partition by per-core synaptic weight.
        let weights: Vec<u64> = self
            .net
            .cores()
            .iter()
            .map(|c| 64 + c.config().crossbar.active_synapses() as u64)
            .collect();
        let starts = weighted_split_points(&weights, n);
        let n = starts.len(); // may have been clamped

        // Split the core array into owned slices.
        let mut slices = Vec::with_capacity(n);
        {
            let mut rest = self.net.cores_mut();
            let mut consumed = 0usize;
            for k in 0..n {
                let end = if k + 1 < n {
                    starts[k + 1]
                } else {
                    rest.len() + consumed
                };
                let (head, tail) = rest.split_at_mut(end - consumed);
                consumed = end;
                slices.push(head);
                rest = tail;
            }
        }

        // Mailboxes: mailboxes[src][dst]; src writes its own row during
        // the compute phase, dst drains its column during the exchange
        // phase — the two-step communication scheme.
        let mailboxes: Vec<Vec<Mutex<Vec<Packet>>>> = (0..n)
            .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let global_queue: Mutex<Vec<Packet>> = Mutex::new(Vec::new());
        let input_shared: Mutex<Vec<(tn_core::CoreId, u8)>> = Mutex::new(Vec::new());
        let src_shared: Mutex<&mut (dyn SpikeSource + Send)> = Mutex::new(src);
        let barrier = Barrier::new(n);
        let merged: Mutex<(TickStats, Vec<OutputEvent>)> =
            Mutex::new((TickStats::default(), Vec::new()));
        let dropped = AtomicU64::new(0);
        let total_cores = weights.len();

        // Each worker runs a counter-zeroed fork of the fault state so no
        // synchronization is needed on the fault path; drop counters are
        // merged back at the end of the run.
        let fault_proto: Option<FaultState> = self.faults.as_ref().map(|f| f.fork());
        let fault_merged: Mutex<FaultCounters> = Mutex::new(FaultCounters::default());

        let mode = self.mode;
        let starts_ref = &starts;
        let fault_proto_ref = &fault_proto;
        let fault_merged_ref = &fault_merged;
        let mailboxes_ref = &mailboxes;
        let global_ref = &global_queue;
        let input_ref = &input_shared;
        let src_ref = &src_shared;
        let barrier_ref = &barrier;
        let merged_ref = &merged;
        let dropped_ref = &dropped;

        let wall = Instant::now();
        std::thread::scope(|scope| {
            for (k, my_cores) in slices.into_iter().enumerate() {
                let my_offset = starts_ref[k] as u32;
                scope.spawn(move || {
                    let mut local_stats = TickStats::default();
                    let mut local_out: Vec<OutputEvent> = Vec::new();
                    let mut spike_buf: Vec<OutSpike> = Vec::new();
                    let mut buckets: Vec<Vec<Packet>> = (0..n).map(|_| Vec::new()).collect();
                    let mut fk = fault_proto_ref.clone();

                    for t in start_tick..start_tick + ticks {
                        // -- fault phase: every fork advances in lockstep;
                        //    structural mutations land only on owned cores --
                        if let Some(f) = fk.as_mut() {
                            for i in f.advance(t) {
                                let ev = f.events()[i];
                                let idx = ev.coord.y as usize * grid_w + ev.coord.x as usize;
                                if owner_of(starts_ref, idx) == k {
                                    let core = &mut my_cores[idx - my_offset as usize];
                                    FaultState::apply_to_core(&ev, core, f.seed());
                                }
                            }
                            for &(core, axon) in f.stuck1() {
                                if owner_of(starts_ref, core as usize) == k {
                                    my_cores[core as usize - my_offset as usize].deliver(t, axon);
                                }
                            }
                        }

                        // -- input phase (thread 0 polls the source) --
                        if k == 0 {
                            let mut inp = input_ref.lock().unwrap();
                            inp.clear();
                            src_ref.lock().unwrap().fill(t, &mut inp);
                            // Bounds-check the injection here, once, so a
                            // misbehaving source is diagnosed instead of
                            // panicking a worker mid-tick.
                            let before = inp.len();
                            inp.retain(|(core, _)| core.index() < total_cores);
                            let bad = (before - inp.len()) as u64;
                            if bad > 0 {
                                dropped_ref.fetch_add(bad, Ordering::Relaxed);
                            }
                        }
                        barrier_ref.wait();
                        {
                            let inp = input_ref.lock().unwrap();
                            for &(core, axon) in inp.iter() {
                                let owner = owner_of(starts_ref, core.index());
                                if owner == k {
                                    if let Some(f) = fk.as_mut() {
                                        if !f.allow_external(t, core.0, axon) {
                                            continue;
                                        }
                                    }
                                    my_cores[core.index() - my_offset as usize]
                                        .deliver(t + 1, axon);
                                }
                            }
                        }

                        // -- synapse + neuron phases on owned cores --
                        spike_buf.clear();
                        for core in my_cores.iter_mut() {
                            core.tick(t, &mut spike_buf, &mut local_stats);
                        }

                        // -- network phase, local half: bucket spikes --
                        for s in spike_buf.drain(..) {
                            match s.dest {
                                Dest::Axon(tgt) => {
                                    // Fire-side filtering: the source owner
                                    // decides, so every drop is counted
                                    // exactly once across all forks.
                                    if let Some(f) = fk.as_mut() {
                                        if !f.allow_spike(t, s.src.core.0, tgt.core.0, tgt.axon) {
                                            continue;
                                        }
                                    }
                                    let pkt = Packet {
                                        core: tgt.core.0,
                                        axon: tgt.axon,
                                        delay: tgt.delay,
                                    };
                                    match mode {
                                        AggregationMode::Pairwise => {
                                            let dst = owner_of(starts_ref, tgt.core.index());
                                            buckets[dst].push(pkt);
                                        }
                                        AggregationMode::GlobalQueue => {
                                            // Ablation: one lock per spike.
                                            global_ref.lock().unwrap().push(pkt);
                                        }
                                    }
                                }
                                Dest::Output(port) => local_out.push(OutputEvent { tick: t, port }),
                                Dest::None => {}
                            }
                        }
                        if mode == AggregationMode::Pairwise {
                            for (dst, bucket) in buckets.iter_mut().enumerate() {
                                if !bucket.is_empty() {
                                    let mut slot = mailboxes_ref[k][dst].lock().unwrap();
                                    std::mem::swap(&mut *slot, bucket);
                                }
                            }
                        }
                        barrier_ref.wait();

                        // -- network phase, remote half: drain and deliver --
                        match mode {
                            AggregationMode::Pairwise => {
                                for row in mailboxes_ref.iter() {
                                    let mut slot = row[k].lock().unwrap();
                                    for pkt in slot.drain(..) {
                                        let idx = pkt.core as usize - my_offset as usize;
                                        my_cores[idx].deliver(t + pkt.delay as u64, pkt.axon);
                                    }
                                }
                            }
                            AggregationMode::GlobalQueue => {
                                let q = global_ref.lock().unwrap();
                                for pkt in q.iter() {
                                    let owner = owner_of(starts_ref, pkt.core as usize);
                                    if owner == k {
                                        let idx = pkt.core as usize - my_offset as usize;
                                        my_cores[idx].deliver(t + pkt.delay as u64, pkt.axon);
                                    }
                                }
                            }
                        }
                        barrier_ref.wait();
                        if mode == AggregationMode::GlobalQueue && k == 0 {
                            global_ref.lock().unwrap().clear();
                        }
                        barrier_ref.wait();
                    }

                    if let Some(f) = fk {
                        fault_merged_ref.lock().unwrap().merge(f.counters());
                    }
                    let mut m = merged_ref.lock().unwrap();
                    m.0 += local_stats;
                    m.1.append(&mut local_out);
                });
            }
        });
        let elapsed = wall.elapsed().as_secs_f64();

        let (tick_totals, outs) = {
            let mut m = merged.lock().unwrap();
            (m.0, std::mem::take(&mut m.1))
        };
        self.dropped_inputs += dropped.into_inner();
        if let Some(f) = &mut self.faults {
            // Workers already applied the structural mutations to the
            // master's cores (they own slices of them); catch the master's
            // registries up and fold the forks' drop counters in.
            f.fast_forward(start_tick + ticks - 1);
            f.counters_mut().merge(&fault_merged.into_inner().unwrap());
        }
        self.outputs.extend(outs);
        self.stats.ticks += ticks;
        self.stats.totals += tick_totals;
        self.stats.wall_seconds += elapsed;
        self.tick += ticks;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceSim;
    use tn_core::{
        CoreConfig, CoreId, Crossbar, NetworkBuilder, NeuronConfig, ScheduledSource, SpikeTarget,
    };

    /// Random-ish stochastic recurrent network over `w×h` cores.
    fn stochastic_net(w: u16, h: u16, seed: u64) -> Network {
        let mut b = NetworkBuilder::new(w, h, seed);
        let num = (w as u32 * h as u32) as usize;
        for c in 0..num {
            let mut cfg = CoreConfig::new();
            *cfg.crossbar = Crossbar::from_fn(|i, j| (i * 31 + j * 17 + c) % 13 == 0);
            for j in 0..256 {
                cfg.neurons[j] = NeuronConfig::stochastic_source(20);
                // Recurrent connections with zero weight keep rates
                // stationary while still exercising routing.
                cfg.neurons[j].weights = [0; 4];
                let tgt = ((c * 7 + j * 3) % num) as u32;
                cfg.neurons[j].dest = Dest::Axon(SpikeTarget::new(
                    CoreId(tgt),
                    ((j * 11 + c) % 256) as u8,
                    1 + ((j + c) % 15) as u8,
                ));
            }
            b.add_core(cfg);
        }
        b.build()
    }

    fn digest_after(net: Network, threads: usize, ticks: u64) -> (u64, u64) {
        if threads == 0 {
            let mut sim = ReferenceSim::new(net);
            sim.run(ticks, &mut tn_core::network::NullSource);
            (sim.network().state_digest(), sim.stats().totals.spikes_out)
        } else {
            let mut sim = ParallelSim::new(net, threads);
            sim.run(ticks, &mut tn_core::network::NullSource);
            (sim.network().state_digest(), sim.stats().totals.spikes_out)
        }
    }

    #[test]
    fn parallel_matches_reference_all_thread_counts() {
        let (ref_digest, ref_spikes) = digest_after(stochastic_net(4, 4, 99), 0, 40);
        assert!(ref_spikes > 0, "network must actually be active");
        for threads in [1, 2, 3, 4, 7, 16] {
            let (d, s) = digest_after(stochastic_net(4, 4, 99), threads, 40);
            assert_eq!(d, ref_digest, "{threads} threads diverged");
            assert_eq!(s, ref_spikes);
        }
    }

    #[test]
    fn global_queue_mode_matches_too() {
        let (ref_digest, _) = digest_after(stochastic_net(3, 3, 5), 0, 30);
        let mut sim =
            ParallelSim::with_mode(stochastic_net(3, 3, 5), 4, AggregationMode::GlobalQueue);
        sim.run(30, &mut tn_core::network::NullSource);
        assert_eq!(sim.network().state_digest(), ref_digest);
    }

    #[test]
    fn external_input_matches_reference() {
        let mk_src = || {
            let mut s = ScheduledSource::new();
            for t in 0..20 {
                s.push(t, CoreId((t % 9) as u32), (t * 13 % 256) as u8);
            }
            s
        };
        let mut a = ReferenceSim::new(stochastic_net(3, 3, 1));
        a.run(25, &mut mk_src());
        let mut b = ParallelSim::new(stochastic_net(3, 3, 1), 3);
        b.run(25, &mut mk_src());
        assert_eq!(a.network().state_digest(), b.network().state_digest());
        assert_eq!(a.outputs().digest(), b.outputs().digest());
    }

    #[test]
    fn outputs_collected_across_threads() {
        let mut b = NetworkBuilder::new(4, 1, 0);
        for c in 0..4u32 {
            let mut cfg = CoreConfig::new();
            *cfg.crossbar = Crossbar::from_fn(|i, j| i == j);
            for j in 0..256 {
                cfg.neurons[j] = NeuronConfig::lif(1, 1);
                cfg.neurons[j].dest = Dest::Output(c * 256 + j as u32);
            }
            b.add_core(cfg);
        }
        let mut sim = ParallelSim::new(b.build(), 4);
        let mut src = ScheduledSource::new();
        for c in 0..4u32 {
            src.push(0, CoreId(c), 7);
        }
        sim.run(3, &mut src);
        let ev = sim.outputs().events().to_vec();
        assert_eq!(ev.len(), 4);
        let ports: Vec<u32> = ev.iter().map(|e| e.port).collect();
        assert_eq!(ports, vec![7, 263, 519, 775]);
    }

    #[test]
    fn resume_runs_continue_tick_count() {
        let mut sim = ParallelSim::new(stochastic_net(2, 2, 3), 2);
        sim.run(10, &mut tn_core::network::NullSource);
        assert_eq!(sim.current_tick(), 10);
        sim.run(5, &mut tn_core::network::NullSource);
        assert_eq!(sim.current_tick(), 15);
        assert_eq!(sim.stats().ticks, 15);

        // Split run must equal one continuous run.
        let mut whole = ParallelSim::new(stochastic_net(2, 2, 3), 2);
        whole.run(15, &mut tn_core::network::NullSource);
        assert_eq!(sim.network().state_digest(), whole.network().state_digest());
    }

    #[test]
    fn out_of_grid_injection_dropped_in_parallel() {
        let mut sim = ParallelSim::new(stochastic_net(2, 2, 3), 2);
        let mut src = ScheduledSource::new();
        src.push(0, CoreId(99), 1); // outside the 4-core grid
        src.push(1, CoreId(1), 1);
        sim.run(3, &mut src);
        assert_eq!(sim.dropped_inputs(), 1);
    }

    #[test]
    fn threads_clamped_to_core_count() {
        let sim = ParallelSim::new(stochastic_net(2, 1, 0), 64);
        assert_eq!(sim.threads(), 2);
    }
}
