//! Alias module for the shard layer's concurrency primitives.
//!
//! Production builds alias straight to `std`; under `--cfg tn_check`
//! everything routes through the `tn-check` shims so the tick-barrier
//! mailbox handshake can be model-checked. Funnelling all imports
//! through this module also lets `tn-check lint` (TN025) catch
//! accidental bypasses back to `std::sync`.

#[cfg(not(tn_check))]
pub(crate) use std::sync::{Arc, Condvar, Mutex};
#[cfg(tn_check)]
pub(crate) use tn_check::sync::{Arc, Condvar, Mutex};
