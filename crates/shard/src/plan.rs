//! Deterministic partitioning of one network into shard core ranges,
//! plus compiled boundary routing tables.
//!
//! The partitioner reuses `tn_compass::weighted_split_points` — the same
//! load-balancing Compass applies to threads (paper Section III-B),
//! lifted to processes: cores are weighted by synaptic traffic and split
//! into contiguous ranges of near-equal weight. Contiguity keeps shard
//! outputs in core-scan order, which is what lets the coordinator
//! concatenate per-shard output streams and match the single-process
//! transcript exactly.
//!
//! The compiled [`BoundaryRoute`] table is the merge–split semantics
//! from `tn-chip` made explicit: every (local neuron → remote axon) edge
//! that leaves a shard, with its owning destination shard resolved ahead
//! of time so the per-spike routing path is a table lookup, not a
//! binary search.

use tn_compass::{owner_of, weighted_split_points};
use tn_core::{Dest, Network};

/// Contiguous core-range assignment of one network to `shards` workers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Start core index of each shard's range; shard `k` owns
    /// `[starts[k], starts[k+1])` with an implicit final end of
    /// `num_cores`. Always non-empty ranges.
    pub starts: Vec<usize>,
    pub num_cores: usize,
}

impl ShardPlan {
    /// Partition `net` into at most `shards` ranges (clamped down so
    /// every shard owns at least one core), weighting each core the way
    /// `ParallelSim` weights its thread ranges: a fixed per-core cost
    /// plus its active synapse count.
    pub fn compute(net: &Network, shards: usize) -> ShardPlan {
        let weights: Vec<u64> = net
            .cores()
            .iter()
            .map(|c| 64 + c.config().crossbar.active_synapses() as u64)
            .collect();
        ShardPlan {
            starts: weighted_split_points(&weights, shards),
            num_cores: weights.len(),
        }
    }

    /// Actual shard count after clamping.
    pub fn shards(&self) -> usize {
        self.starts.len()
    }

    /// Which shard owns `core`.
    pub fn owner(&self, core: usize) -> usize {
        owner_of(&self.starts, core)
    }

    /// The core range shard `k` owns.
    pub fn range(&self, k: usize) -> std::ops::Range<usize> {
        let end = self.starts.get(k + 1).copied().unwrap_or(self.num_cores);
        self.starts[k]..end
    }
}

/// One crossbar fanout edge that leaves its shard: a local neuron whose
/// destination axon lives on a core owned by another shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundaryRoute {
    pub src_core: u32,
    pub src_neuron: u16,
    pub dst_shard: u16,
    pub dst_core: u32,
    pub dst_axon: u8,
    pub delay: u8,
}

/// Compile the boundary routing table for shard `k` of `plan`: every
/// (src neuron → remote axon) route leaving the shard, in ascending
/// (core, neuron) order. Bijectivity with the single-process crossbar
/// fanout is pinned by `tests/routes.rs`.
pub fn boundary_routes(net: &Network, plan: &ShardPlan, k: usize) -> Vec<BoundaryRoute> {
    let mut out = Vec::new();
    for core in plan.range(k) {
        let cfg = net.cores()[core].config();
        for (j, n) in cfg.neurons.iter().enumerate() {
            if let Dest::Axon(tgt) = n.dest {
                let dst_core = tgt.core.index();
                if dst_core < plan.num_cores && plan.owner(dst_core) != k {
                    out.push(BoundaryRoute {
                        src_core: core as u32,
                        src_neuron: j as u16,
                        dst_shard: plan.owner(dst_core) as u16,
                        dst_core: dst_core as u32,
                        dst_axon: tgt.axon,
                        delay: tgt.delay,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_core::NetworkBuilder;

    #[test]
    fn plan_covers_all_cores_with_nonempty_ranges() {
        let net = NetworkBuilder::new(3, 2, 1).build();
        for shards in [1, 2, 4, 7] {
            let plan = ShardPlan::compute(&net, shards);
            assert!(plan.shards() <= 6);
            assert!(plan.shards() >= shards.min(6));
            let mut covered = 0;
            for k in 0..plan.shards() {
                let r = plan.range(k);
                assert!(!r.is_empty(), "shard {k} owns no cores");
                assert_eq!(r.start, covered, "ranges must be contiguous");
                for c in r.clone() {
                    assert_eq!(plan.owner(c), k);
                }
                covered = r.end;
            }
            assert_eq!(covered, 6);
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let net = NetworkBuilder::new(4, 4, 9).build();
        assert_eq!(ShardPlan::compute(&net, 3), ShardPlan::compute(&net, 3));
    }
}
