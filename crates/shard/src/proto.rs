//! The coordinator ⇄ worker wire protocol: `tn_core::wire::framed`
//! frames (length prefix + CRC trailer — the same codec the `tn-serve`
//! protocol uses) carrying tick barriers and boundary-spike batches.
//!
//! One TCP connection per shard, strictly ordered: the coordinator
//! sends a request, the worker processes it and (except for `Flush`)
//! answers with exactly one reply. Boundary batches are tagged with
//! `(tick, src_shard)` by construction — each batch rides either the
//! `TickGo` barrier frame for its tick or a `Flush`, and the stream it
//! arrives on identifies the peer.

use std::io::{self, Read, Write};
use tn_core::wire::{self, framed, ByteReader, WireError};
use tn_core::{FaultCounters, TickStats};

/// Version byte of the shard exchange (independent of the serve
/// protocol's version).
pub const SHARD_WIRE_VERSION: u8 = 1;
/// Cap on frame payloads (whole-board snapshots are megabytes).
pub const MAX_SHARD_FRAME_BYTES: u32 = 256 * 1024 * 1024;

// Coordinator → worker opcodes.
pub const OP_CONFIGURE: u8 = 0x01;
pub const OP_TICK_GO: u8 = 0x02;
pub const OP_FLUSH: u8 = 0x03;
pub const OP_QUERY_DIGESTS: u8 = 0x04;
pub const OP_SNAPSHOT: u8 = 0x05;
pub const OP_RESTORE: u8 = 0x06;
pub const OP_ATTACH_FAULTS: u8 = 0x07;
pub const OP_SHUTDOWN: u8 = 0x08;

// Worker → coordinator opcodes.
pub const OP_DONE: u8 = 0x81;
pub const OP_OK: u8 = 0x82;
pub const OP_DIGESTS: u8 = 0x83;
pub const OP_SNAP_DATA: u8 = 0x84;
pub const OP_ERR: u8 = 0x85;

/// One boundary spike: deliver onto `axon` of `core` at absolute tick
/// `deliver_tick` (the firing shard already resolved the axonal delay
/// and applied fire-side fault filtering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteSpike {
    pub core: u32,
    pub axon: u8,
    pub deliver_tick: u64,
}

/// Coordinator → worker messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ToWorker {
    /// First message on a (re)connection: which shard this worker is,
    /// the full partition, the model, and the current fault plan text
    /// (empty = none).
    Configure {
        shard: u16,
        starts: Vec<u32>,
        model: String,
        faults: String,
    },
    /// Run tick `tick`: apply `remote` boundary deliveries (from other
    /// shards' tick `tick - 1`), inject `inputs` (already owner-filtered
    /// `(core, axon)` pairs for this tick), evaluate owned cores, reply
    /// [`FromWorker::Done`].
    TickGo {
        tick: u64,
        inputs: Vec<(u32, u8)>,
        remote: Vec<RemoteSpike>,
    },
    /// Apply pending boundary deliveries outside a tick (before a
    /// digest/snapshot observation). No reply; ordering on the stream
    /// guarantees it lands before the next request executes.
    Flush { remote: Vec<RemoteSpike> },
    /// Reply with per-core state digests for the owned range.
    QueryDigests,
    /// Reply with a serialized `NetworkSnapshot` at the current tick.
    Snapshot,
    /// Restore from serialized snapshot bytes and resume from its tick.
    Restore { bytes: Vec<u8> },
    /// Attach (or replace) the fault plan from `tnfault 1` text.
    AttachFaults { text: String },
    /// Acknowledge and exit.
    Shutdown,
}

/// The per-tick barrier reply: everything the coordinator must see
/// before any shard may run the next tick.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DoneMsg {
    pub tick: u64,
    pub stats: TickStats,
    /// Output ports fired this tick by owned cores, in core-scan order.
    pub outputs: Vec<u32>,
    /// Boundary spikes fired this tick, bucketed by destination shard
    /// (index = shard id; the own-shard bucket stays empty).
    pub boundary: Vec<Vec<RemoteSpike>>,
    /// Cumulative fault counters since this worker (re)started.
    pub counters: FaultCounters,
}

/// Worker → coordinator messages.
#[derive(Clone, Debug, PartialEq)]
pub enum FromWorker {
    Done(DoneMsg),
    Ok,
    Digests(Vec<u64>),
    SnapData(Vec<u8>),
    Err(String),
}

fn put_remote_spikes(p: &mut Vec<u8>, spikes: &[RemoteSpike]) {
    wire::put_u32(p, spikes.len() as u32);
    for s in spikes {
        wire::put_u32(p, s.core);
        wire::put_u8(p, s.axon);
        wire::put_u64(p, s.deliver_tick);
    }
}

fn read_remote_spikes(r: &mut ByteReader<'_>) -> Result<Vec<RemoteSpike>, WireError> {
    const SPIKE_BYTES: usize = 4 + 1 + 8;
    let n = r.u32("remote spike count")? as usize;
    if r.remaining() < n * SPIKE_BYTES {
        return Err(WireError {
            offset: r.pos(),
            what: "remote spike count exceeds payload",
        });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(RemoteSpike {
            core: r.u32("remote spike core")?,
            axon: r.u8("remote spike axon")?,
            deliver_tick: r.u64("remote spike tick")?,
        });
    }
    Ok(out)
}

fn put_counters(p: &mut Vec<u8>, c: &FaultCounters) {
    wire::put_u64(p, c.dead_dropped);
    wire::put_u64(p, c.stuck_dropped);
    wire::put_u64(p, c.sync_dropped);
    wire::put_u64(p, c.severed_dropped);
    wire::put_u64(p, c.lossy_dropped);
    wire::put_u64(p, c.rerouted);
}

fn read_counters(r: &mut ByteReader<'_>) -> Result<FaultCounters, WireError> {
    Ok(FaultCounters {
        dead_dropped: r.u64("dead_dropped")?,
        stuck_dropped: r.u64("stuck_dropped")?,
        sync_dropped: r.u64("sync_dropped")?,
        severed_dropped: r.u64("severed_dropped")?,
        lossy_dropped: r.u64("lossy_dropped")?,
        rerouted: r.u64("rerouted")?,
    })
}

impl ToWorker {
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let opcode = match self {
            ToWorker::Configure {
                shard,
                starts,
                model,
                faults,
            } => {
                wire::put_u16(&mut p, *shard);
                wire::put_u32(&mut p, starts.len() as u32);
                for &s in starts {
                    wire::put_u32(&mut p, s);
                }
                wire::put_bytes(&mut p, model.as_bytes());
                wire::put_bytes(&mut p, faults.as_bytes());
                OP_CONFIGURE
            }
            ToWorker::TickGo {
                tick,
                inputs,
                remote,
            } => {
                wire::put_u64(&mut p, *tick);
                wire::put_u32(&mut p, inputs.len() as u32);
                for &(core, axon) in inputs {
                    wire::put_u32(&mut p, core);
                    wire::put_u8(&mut p, axon);
                }
                put_remote_spikes(&mut p, remote);
                OP_TICK_GO
            }
            ToWorker::Flush { remote } => {
                put_remote_spikes(&mut p, remote);
                OP_FLUSH
            }
            ToWorker::QueryDigests => OP_QUERY_DIGESTS,
            ToWorker::Snapshot => OP_SNAPSHOT,
            ToWorker::Restore { bytes } => {
                wire::put_bytes(&mut p, bytes);
                OP_RESTORE
            }
            ToWorker::AttachFaults { text } => {
                wire::put_bytes(&mut p, text.as_bytes());
                OP_ATTACH_FAULTS
            }
            ToWorker::Shutdown => OP_SHUTDOWN,
        };
        framed::encode_frame(SHARD_WIRE_VERSION, opcode, &p)
    }

    pub fn decode(opcode: u8, payload: &[u8]) -> Result<ToWorker, WireError> {
        let mut r = ByteReader::new(payload);
        let msg = match opcode {
            OP_CONFIGURE => {
                let shard = r.u16("shard id")?;
                let n = r.u32("start count")? as usize;
                if r.remaining() < n * 4 {
                    return Err(WireError {
                        offset: r.pos(),
                        what: "start count exceeds payload",
                    });
                }
                let mut starts = Vec::with_capacity(n);
                for _ in 0..n {
                    starts.push(r.u32("range start")?);
                }
                let model = utf8(r.bytes("model text")?, "model text")?;
                let faults = utf8(r.bytes("fault text")?, "fault text")?;
                ToWorker::Configure {
                    shard,
                    starts,
                    model,
                    faults,
                }
            }
            OP_TICK_GO => {
                let tick = r.u64("tick")?;
                let n = r.u32("input count")? as usize;
                if r.remaining() < n * 5 {
                    return Err(WireError {
                        offset: r.pos(),
                        what: "input count exceeds payload",
                    });
                }
                let mut inputs = Vec::with_capacity(n);
                for _ in 0..n {
                    inputs.push((r.u32("input core")?, r.u8("input axon")?));
                }
                let remote = read_remote_spikes(&mut r)?;
                ToWorker::TickGo {
                    tick,
                    inputs,
                    remote,
                }
            }
            OP_FLUSH => ToWorker::Flush {
                remote: read_remote_spikes(&mut r)?,
            },
            OP_QUERY_DIGESTS => ToWorker::QueryDigests,
            OP_SNAPSHOT => ToWorker::Snapshot,
            OP_RESTORE => ToWorker::Restore {
                bytes: r.bytes("snapshot bytes")?.to_vec(),
            },
            OP_ATTACH_FAULTS => ToWorker::AttachFaults {
                text: utf8(r.bytes("fault text")?, "fault text")?,
            },
            OP_SHUTDOWN => ToWorker::Shutdown,
            _ => {
                return Err(WireError {
                    offset: 0,
                    what: "unknown coordinator opcode",
                })
            }
        };
        r.finish("trailing bytes after shard request")?;
        Ok(msg)
    }
}

impl FromWorker {
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let opcode = match self {
            FromWorker::Done(d) => {
                wire::put_u64(&mut p, d.tick);
                wire::put_u64(&mut p, d.stats.axon_events);
                wire::put_u64(&mut p, d.stats.sops);
                wire::put_u64(&mut p, d.stats.neuron_updates);
                wire::put_u64(&mut p, d.stats.spikes_out);
                wire::put_u64(&mut p, d.stats.prng_draws);
                wire::put_u32(&mut p, d.outputs.len() as u32);
                for &port in &d.outputs {
                    wire::put_u32(&mut p, port);
                }
                wire::put_u16(&mut p, d.boundary.len() as u16);
                for batch in &d.boundary {
                    put_remote_spikes(&mut p, batch);
                }
                put_counters(&mut p, &d.counters);
                OP_DONE
            }
            FromWorker::Ok => OP_OK,
            FromWorker::Digests(ds) => {
                wire::put_u32(&mut p, ds.len() as u32);
                for &d in ds {
                    wire::put_u64(&mut p, d);
                }
                OP_DIGESTS
            }
            FromWorker::SnapData(bytes) => {
                wire::put_bytes(&mut p, bytes);
                OP_SNAP_DATA
            }
            FromWorker::Err(msg) => {
                wire::put_str(&mut p, msg);
                OP_ERR
            }
        };
        framed::encode_frame(SHARD_WIRE_VERSION, opcode, &p)
    }

    pub fn decode(opcode: u8, payload: &[u8]) -> Result<FromWorker, WireError> {
        let mut r = ByteReader::new(payload);
        let msg = match opcode {
            OP_DONE => {
                let tick = r.u64("done tick")?;
                let stats = TickStats {
                    axon_events: r.u64("axon events")?,
                    sops: r.u64("sops")?,
                    neuron_updates: r.u64("neuron updates")?,
                    spikes_out: r.u64("spikes out")?,
                    prng_draws: r.u64("prng draws")?,
                };
                let n = r.u32("output count")? as usize;
                if r.remaining() < n * 4 {
                    return Err(WireError {
                        offset: r.pos(),
                        what: "output count exceeds payload",
                    });
                }
                let mut outputs = Vec::with_capacity(n);
                for _ in 0..n {
                    outputs.push(r.u32("output port")?);
                }
                let shards = r.u16("boundary shard count")? as usize;
                let mut boundary = Vec::with_capacity(shards.min(1024));
                for _ in 0..shards {
                    boundary.push(read_remote_spikes(&mut r)?);
                }
                let counters = read_counters(&mut r)?;
                FromWorker::Done(DoneMsg {
                    tick,
                    stats,
                    outputs,
                    boundary,
                    counters,
                })
            }
            OP_OK => FromWorker::Ok,
            OP_DIGESTS => {
                let n = r.u32("digest count")? as usize;
                if r.remaining() < n * 8 {
                    return Err(WireError {
                        offset: r.pos(),
                        what: "digest count exceeds payload",
                    });
                }
                let mut ds = Vec::with_capacity(n);
                for _ in 0..n {
                    ds.push(r.u64("digest")?);
                }
                FromWorker::Digests(ds)
            }
            OP_SNAP_DATA => FromWorker::SnapData(r.bytes("snapshot bytes")?.to_vec()),
            OP_ERR => FromWorker::Err(r.str("error message")?.to_string()),
            _ => {
                return Err(WireError {
                    offset: 0,
                    what: "unknown worker opcode",
                })
            }
        };
        r.finish("trailing bytes after shard reply")?;
        Ok(msg)
    }
}

fn utf8(raw: &[u8], what: &'static str) -> Result<String, WireError> {
    std::str::from_utf8(raw)
        .map(|s| s.to_string())
        .map_err(|_| WireError { offset: 0, what })
}

/// Write one coordinator→worker frame through a streaming writer.
pub fn write_to_worker<W: Write>(w: &mut framed::FrameWriter<W>, msg: &ToWorker) -> io::Result<()> {
    // The message encoder already produces a complete frame; split it so
    // the streaming writer (one syscall path, shared with replies) stays
    // the single place bytes hit the socket.
    let frame = msg.encode();
    let (h, payload) = framed::split_frame(&frame).expect("self-encoded frame");
    w.write_frame(h.version, h.opcode, payload)
}

/// Write one worker→coordinator frame through a streaming writer.
pub fn write_from_worker<W: Write>(
    w: &mut framed::FrameWriter<W>,
    msg: &FromWorker,
) -> io::Result<()> {
    let frame = msg.encode();
    let (h, payload) = framed::split_frame(&frame).expect("self-encoded frame");
    w.write_frame(h.version, h.opcode, payload)
}

/// Blocking read of one coordinator→worker message.
pub fn read_to_worker<R: Read>(r: &mut R) -> io::Result<ToWorker> {
    let (opcode, payload) = framed::read_frame(r, SHARD_WIRE_VERSION, MAX_SHARD_FRAME_BYTES)?;
    ToWorker::decode(opcode, &payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Blocking read of one worker→coordinator message.
pub fn read_from_worker<R: Read>(r: &mut R) -> io::Result<FromWorker> {
    let (opcode, payload) = framed::read_frame(r, SHARD_WIRE_VERSION, MAX_SHARD_FRAME_BYTES)?;
    FromWorker::decode(opcode, &payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_to(msg: ToWorker) {
        let f = msg.encode();
        let (h, payload) = framed::split_frame(&f).unwrap();
        assert_eq!(h.version, SHARD_WIRE_VERSION);
        assert_eq!(ToWorker::decode(h.opcode, payload).unwrap(), msg);
    }

    fn roundtrip_from(msg: FromWorker) {
        let f = msg.encode();
        let (h, payload) = framed::split_frame(&f).unwrap();
        assert_eq!(FromWorker::decode(h.opcode, payload).unwrap(), msg);
    }

    #[test]
    fn coordinator_messages_roundtrip() {
        roundtrip_to(ToWorker::Configure {
            shard: 3,
            starts: vec![0, 4, 9, 13],
            model: "tnmodel 1\nnet 4 4 7\n".into(),
            faults: "tnfault 1\nseed 5\n".into(),
        });
        roundtrip_to(ToWorker::TickGo {
            tick: 42,
            inputs: vec![(0, 7), (13, 255)],
            remote: vec![
                RemoteSpike {
                    core: 5,
                    axon: 9,
                    deliver_tick: 43,
                },
                RemoteSpike {
                    core: 6,
                    axon: 0,
                    deliver_tick: 57,
                },
            ],
        });
        roundtrip_to(ToWorker::Flush {
            remote: vec![RemoteSpike {
                core: 1,
                axon: 2,
                deliver_tick: 3,
            }],
        });
        roundtrip_to(ToWorker::QueryDigests);
        roundtrip_to(ToWorker::Snapshot);
        roundtrip_to(ToWorker::Restore {
            bytes: vec![1, 2, 3, 4],
        });
        roundtrip_to(ToWorker::AttachFaults {
            text: "tnfault 1\nseed 1\nat 2 core 0 0 dead\n".into(),
        });
        roundtrip_to(ToWorker::Shutdown);
    }

    #[test]
    fn worker_messages_roundtrip() {
        roundtrip_from(FromWorker::Done(DoneMsg {
            tick: 9,
            stats: TickStats {
                axon_events: 1,
                sops: 2,
                neuron_updates: 3,
                spikes_out: 4,
                prng_draws: 5,
            },
            outputs: vec![7, 8, 9],
            boundary: vec![
                vec![],
                vec![RemoteSpike {
                    core: 3,
                    axon: 200,
                    deliver_tick: 10,
                }],
            ],
            counters: FaultCounters {
                dead_dropped: 1,
                stuck_dropped: 2,
                sync_dropped: 3,
                severed_dropped: 4,
                lossy_dropped: 5,
                rerouted: 6,
            },
        }));
        roundtrip_from(FromWorker::Ok);
        roundtrip_from(FromWorker::Digests(vec![0xDEAD, 0xBEEF]));
        roundtrip_from(FromWorker::SnapData(vec![0; 128]));
        roundtrip_from(FromWorker::Err("model rejected".into()));
    }

    #[test]
    fn lying_counts_are_rejected_before_allocation() {
        let mut p = Vec::new();
        wire::put_u64(&mut p, 0);
        wire::put_u32(&mut p, 0);
        wire::put_u32(&mut p, u32::MAX); // remote spike count lie
        assert!(ToWorker::decode(OP_TICK_GO, &p).is_err());

        let mut p = Vec::new();
        wire::put_u32(&mut p, u32::MAX); // digest count lie
        assert!(FromWorker::decode(OP_DIGESTS, &p).is_err());
    }

    #[test]
    fn streams_roundtrip_through_io() {
        let mut w = framed::FrameWriter::new(Vec::new());
        write_to_worker(&mut w, &ToWorker::QueryDigests).unwrap();
        write_to_worker(
            &mut w,
            &ToWorker::TickGo {
                tick: 1,
                inputs: vec![],
                remote: vec![],
            },
        )
        .unwrap();
        let bytes = w.into_inner();
        let mut r = std::io::Cursor::new(bytes);
        assert_eq!(read_to_worker(&mut r).unwrap(), ToWorker::QueryDigests);
        match read_to_worker(&mut r).unwrap() {
            ToWorker::TickGo { tick: 1, .. } => {}
            other => panic!("unexpected {other:?}"),
        }

        let mut w = framed::FrameWriter::new(Vec::new());
        write_from_worker(&mut w, &FromWorker::Ok).unwrap();
        let bytes = w.into_inner();
        let mut r = std::io::Cursor::new(bytes);
        assert_eq!(read_from_worker(&mut r).unwrap(), FromWorker::Ok);
    }
}
