//! `tn-shard-worker` — one shard of a distributed board.
//!
//! Spawned by the coordinator (the `ShardedSession` inside `tn-serve` or
//! a test harness), never run by hand: it dials back to the coordinator,
//! receives its `Configure` frame, and serves ticks until shutdown.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut addr = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => addr = args.next(),
            _ => {
                eprintln!("usage: tn-shard-worker --connect <host:port>");
                return ExitCode::from(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: tn-shard-worker --connect <host:port>");
        return ExitCode::from(2);
    };
    match tn_shard::worker::connect_and_serve(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tn-shard-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
