//! The tick-barrier mailbox: where per-shard reader threads meet the
//! coordinator.
//!
//! One reader thread per shard deposits decoded [`FromWorker`] frames;
//! the coordinator blocks in [`Mailbox::wait_done`] until every live
//! shard has reported tick T. Two properties shape the design:
//!
//! * **Parity double-buffering.** A fast shard may finish tick T and —
//!   after the coordinator drains the barrier and broadcasts
//!   `TickGo(T+1)` — report tick T+1 while a slow reader thread is still
//!   parked. Two slots indexed by tick parity (the same discipline as
//!   `tn_compass::parallel`'s pairwise mailboxes) make that legal
//!   without ever letting a shard run two ticks ahead.
//! * **Stale deposits are silent.** Healing a shard replays recorded
//!   `TickGo` frames from its snapshot tick; the resurrected worker
//!   re-emits `Done` for ticks the barrier already closed. Those land
//!   below the slot's tick and are dropped. Anything *above* the slot
//!   tick means the coordinator lost sync — that's a panic, not a drop.
//!
//! All primitives come from [`crate::sync`], so under `--cfg tn_check`
//! the whole handshake runs on the model-checked scheduler
//! (`tests/model_barrier.rs` exhausts the 2-shard configuration).

use crate::proto::{DoneMsg, FromWorker};
use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Why a wait on the mailbox gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MailboxError {
    /// The session is shutting down.
    Shutdown,
    /// Shard `k`'s connection died; the coordinator should heal it and
    /// retry.
    ShardDown(usize),
    /// Shard `k` is still connected but produced nothing within the
    /// reply deadline — a wedged (not dead) worker. The coordinator
    /// heals it exactly like a death: tearing down the socket unblocks
    /// the reader thread, and snapshot + replay restores the state.
    Stalled(usize),
}

struct Slot {
    /// The tick this slot is currently collecting.
    tick: u64,
    arrived: Vec<Option<DoneMsg>>,
}

struct State {
    /// Barrier slots indexed by tick parity.
    slots: [Slot; 2],
    /// Out-of-band replies (Ok/Digests/SnapData/Err), one queue per shard.
    replies: Vec<VecDeque<FromWorker>>,
    down: Vec<bool>,
    shutdown: bool,
}

/// Rendezvous between shard reader threads and the coordinator.
pub struct Mailbox {
    state: Mutex<State>,
    cond: Condvar,
}

impl Mailbox {
    pub fn new(shards: usize) -> Mailbox {
        Mailbox {
            state: Mutex::new(State {
                slots: [
                    Slot {
                        tick: 0,
                        arrived: vec![None; shards],
                    },
                    Slot {
                        tick: 1,
                        arrived: vec![None; shards],
                    },
                ],
                replies: (0..shards).map(|_| VecDeque::new()).collect(),
                down: vec![false; shards],
                shutdown: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Reader thread: shard `k` reported `done` for `done.tick`.
    ///
    /// Stale ticks (below the parity slot's current tick) are replay
    /// echoes from a heal and are dropped silently. A tick above the
    /// slot's is a protocol violation — the barrier never advances past
    /// a tick before draining it, so no live worker can legally get
    /// there.
    pub fn deposit_done(&self, k: usize, done: DoneMsg) {
        let mut st = self.state.lock().unwrap();
        let slot = &mut st.slots[(done.tick % 2) as usize];
        if done.tick < slot.tick {
            return; // replay echo from a healed shard
        }
        assert!(
            done.tick == slot.tick,
            "barrier overrun: shard {k} reported tick {} while slot awaits {}",
            done.tick,
            slot.tick
        );
        assert!(
            slot.arrived[k].is_none(),
            "duplicate Done from shard {k} for tick {}",
            done.tick
        );
        slot.arrived[k] = Some(done);
        self.cond.notify_all();
    }

    /// Coordinator: block until every live shard has reported `tick`,
    /// then drain and advance the slot by two ticks.
    ///
    /// Returns `Err(ShardDown(k))` the moment shard `k` is marked down —
    /// deposits already collected stay in the slot, so after a heal the
    /// coordinator re-enters this wait and only the healed shard's
    /// deposit is still missing.
    pub fn wait_done(&self, tick: u64, shards: usize) -> Result<Vec<DoneMsg>, MailboxError> {
        self.wait_done_for(tick, shards, None)
    }

    /// [`Mailbox::wait_done`] with an optional stall deadline. When
    /// `timeout` elapses with the barrier still open, returns
    /// `Err(Stalled(k))` naming the first shard whose deposit is
    /// missing — its connection is up but the worker stopped making
    /// progress. `None` waits forever.
    ///
    /// Under `--cfg tn_check` the condvar shim never reports expiry (the
    /// model explores the notify path), so model runs exercise the
    /// protocol exactly as before; the deadline is a production-only
    /// escape hatch.
    pub fn wait_done_for(
        &self,
        tick: u64,
        shards: usize,
        timeout: Option<Duration>,
    ) -> Result<Vec<DoneMsg>, MailboxError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutdown {
                return Err(MailboxError::Shutdown);
            }
            if let Some(k) = st.down.iter().position(|&d| d) {
                return Err(MailboxError::ShardDown(k));
            }
            let slot = &mut st.slots[(tick % 2) as usize];
            debug_assert_eq!(slot.tick, tick, "coordinator waited out of order");
            if slot.arrived.iter().take(shards).all(|a| a.is_some()) {
                let drained = slot.arrived.iter_mut().map(|a| a.take().unwrap()).collect();
                slot.tick += 2;
                return Ok(drained);
            }
            match deadline {
                None => st = self.cond.wait(st).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        let k = slot
                            .arrived
                            .iter()
                            .take(shards)
                            .position(|a| a.is_none())
                            .expect("deadline hit with barrier complete");
                        return Err(MailboxError::Stalled(k));
                    }
                    let (guard, _) = self.cond.wait_timeout(st, d - now).unwrap();
                    st = guard;
                }
            }
        }
    }

    /// Reader thread: shard `k` sent a non-barrier reply.
    pub fn deposit_reply(&self, k: usize, msg: FromWorker) {
        let mut st = self.state.lock().unwrap();
        st.replies[k].push_back(msg);
        self.cond.notify_all();
    }

    /// Coordinator: block until shard `k` has a reply queued.
    pub fn wait_reply(&self, k: usize) -> Result<FromWorker, MailboxError> {
        self.wait_reply_for(k, None)
    }

    /// [`Mailbox::wait_reply`] with an optional stall deadline; expiry
    /// returns `Err(Stalled(k))`. See [`Mailbox::wait_done_for`] for the
    /// `tn_check` caveat.
    pub fn wait_reply_for(
        &self,
        k: usize,
        timeout: Option<Duration>,
    ) -> Result<FromWorker, MailboxError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutdown {
                return Err(MailboxError::Shutdown);
            }
            if st.down[k] {
                return Err(MailboxError::ShardDown(k));
            }
            if let Some(msg) = st.replies[k].pop_front() {
                return Ok(msg);
            }
            match deadline {
                None => st = self.cond.wait(st).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(MailboxError::Stalled(k));
                    }
                    let (guard, _) = self.cond.wait_timeout(st, d - now).unwrap();
                    st = guard;
                }
            }
        }
    }

    /// Reader thread: shard `k`'s connection died.
    pub fn mark_down(&self, k: usize) {
        let mut st = self.state.lock().unwrap();
        st.down[k] = true;
        self.cond.notify_all();
    }

    /// Coordinator, at the start of a heal: forget everything the dead
    /// shard had in flight — barrier deposits in both slots and queued
    /// replies. Its `down` flag stays up until [`Mailbox::revive`].
    pub fn begin_heal(&self, k: usize) {
        let mut st = self.state.lock().unwrap();
        for slot in &mut st.slots {
            slot.arrived[k] = None;
        }
        st.replies[k].clear();
    }

    /// Coordinator: the healed shard is connected again.
    pub fn revive(&self, k: usize) {
        let mut st = self.state.lock().unwrap();
        st.down[k] = false;
        self.cond.notify_all();
    }

    /// Coordinator, after a session-level restore: rewind both barrier
    /// slots so the next waits are for `tick` and `tick + 1`.
    pub fn reset_ticks(&self, tick: u64) {
        let mut st = self.state.lock().unwrap();
        for slot in &mut st.slots {
            slot.arrived.iter_mut().for_each(|a| *a = None);
        }
        st.slots[(tick % 2) as usize].tick = tick;
        st.slots[((tick + 1) % 2) as usize].tick = tick + 1;
    }

    /// Wake every waiter with [`MailboxError::Shutdown`].
    pub fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        self.cond.notify_all();
    }
}

#[cfg(all(test, not(tn_check)))]
mod tests {
    use super::*;

    fn done(tick: u64) -> DoneMsg {
        DoneMsg {
            tick,
            ..DoneMsg::default()
        }
    }

    #[test]
    fn barrier_collects_both_shards_and_advances() {
        let mb = Mailbox::new(2);
        mb.deposit_done(0, done(0));
        mb.deposit_done(1, done(0));
        let drained = mb.wait_done(0, 2).unwrap();
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|d| d.tick == 0));
        // Slot 0 now awaits tick 2; a tick-0 echo is silently dropped.
        mb.deposit_done(0, done(0));
        mb.deposit_done(0, done(2));
        mb.deposit_done(1, done(2));
        // Parity lets tick 1 proceed independently.
        mb.deposit_done(0, done(1));
        mb.deposit_done(1, done(1));
        assert_eq!(mb.wait_done(1, 2).unwrap().len(), 2);
        assert_eq!(mb.wait_done(2, 2).unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "barrier overrun")]
    fn a_shard_two_ticks_ahead_panics() {
        let mb = Mailbox::new(2);
        mb.deposit_done(0, done(2));
    }

    #[test]
    #[should_panic(expected = "duplicate Done")]
    fn duplicate_deposit_panics() {
        let mb = Mailbox::new(2);
        mb.deposit_done(0, done(0));
        mb.deposit_done(0, done(0));
    }

    #[test]
    fn down_shard_fails_the_wait_until_revived() {
        let mb = Mailbox::new(2);
        mb.deposit_done(0, done(0));
        mb.mark_down(1);
        assert_eq!(mb.wait_done(0, 2), Err(MailboxError::ShardDown(1)));
        mb.begin_heal(1);
        mb.revive(1);
        // Shard 0's deposit survived the heal; only shard 1 re-reports.
        mb.deposit_done(1, done(0));
        assert_eq!(mb.wait_done(0, 2).unwrap().len(), 2);
    }

    #[test]
    fn replies_are_per_shard_queues() {
        let mb = Mailbox::new(2);
        mb.deposit_reply(1, FromWorker::Ok);
        mb.deposit_reply(1, FromWorker::Digests(vec![7]));
        assert_eq!(mb.wait_reply(1).unwrap(), FromWorker::Ok);
        assert_eq!(mb.wait_reply(1).unwrap(), FromWorker::Digests(vec![7]));
    }

    #[test]
    fn shutdown_wakes_waiters() {
        let mb = Mailbox::new(1);
        mb.shutdown();
        assert_eq!(mb.wait_done(0, 1), Err(MailboxError::Shutdown));
        assert_eq!(mb.wait_reply(0), Err(MailboxError::Shutdown));
    }

    #[test]
    fn stalled_barrier_names_the_first_missing_shard() {
        let mb = Mailbox::new(3);
        mb.deposit_done(0, done(0));
        // Shards 1 and 2 never report; the deadline names shard 1.
        assert_eq!(
            mb.wait_done_for(0, 3, Some(Duration::from_millis(10))),
            Err(MailboxError::Stalled(1))
        );
        // The collected deposit survives the stall, like a heal.
        mb.deposit_done(1, done(0));
        mb.deposit_done(2, done(0));
        assert_eq!(mb.wait_done_for(0, 3, None).unwrap().len(), 3);
    }

    #[test]
    fn stalled_reply_names_the_shard() {
        let mb = Mailbox::new(2);
        assert_eq!(
            mb.wait_reply_for(1, Some(Duration::from_millis(10))),
            Err(MailboxError::Stalled(1))
        );
        mb.deposit_reply(1, FromWorker::Ok);
        assert_eq!(mb.wait_reply_for(1, None).unwrap(), FromWorker::Ok);
    }

    #[test]
    fn reset_ticks_rewinds_the_barrier() {
        let mb = Mailbox::new(1);
        mb.deposit_done(0, done(0));
        assert_eq!(mb.wait_done(0, 1).unwrap().len(), 1);
        mb.reset_ticks(0);
        mb.deposit_done(0, done(0));
        assert_eq!(mb.wait_done(0, 1).unwrap().len(), 1);
    }
}
