//! The shard worker: one process (or in-process thread) owning a
//! contiguous core range, driven entirely by coordinator frames.
//!
//! The worker's tick is `ReferenceSim::step` with two substitutions that
//! the blueprint's delivery semantics make state-equivalent:
//!
//! * Remote boundary spikes arrive **inside the `TickGo` frame** for the
//!   tick after they fired, instead of during the firing tick's routing
//!   phase. Delivery into a delay ring is a commutative, idempotent
//!   OR-set and a spike fired at `t` with delay `d ≥ 1` lands at
//!   `t + d ≥ t + 1`, so applying it at the start of tick `t + 1` —
//!   after the fault phase, which never clears rings — reads back
//!   identically.
//! * Only **owned** cores run the Synapse/Neuron phases. Fault events
//!   and stuck-at-1 deliveries still apply to every core (every worker
//!   advances the same fault schedule, keeping `FaultState` bit-identical
//!   across shards so fire-side spike filtering agrees everywhere), but
//!   non-owned core state is dead weight, never ticked and never
//!   digested.
//!
//! Fault-drop accounting is partitioned so shard sums equal the
//! single-process counters exactly: spike drops count on the **firing**
//! shard (each spike is filtered exactly once, at its source), external
//! input drops count on the **destination owner** (the coordinator
//! routes inputs by owner before they get here).

use crate::plan::ShardPlan;
use crate::proto::{read_to_worker, write_from_worker, DoneMsg, FromWorker, RemoteSpike, ToWorker};
use std::io::{self, Read};
use std::net::TcpStream;
use tn_core::fault::{FaultPlan, FaultState};
use tn_core::wire::framed::FrameWriter;
use tn_core::{modelfile, Dest, Network, NetworkSnapshot, OutSpike, TickStats};

/// One configured shard: the full network mirror, the partition, and the
/// compiled owner table used on the per-spike routing path.
pub struct ShardWorker {
    net: Network,
    plan: ShardPlan,
    shard: usize,
    /// Dense core → owning shard table compiled from the plan: the
    /// boundary routing decision is one indexed load per spike, not a
    /// binary search over range starts.
    owners: Vec<u16>,
    faults: Option<FaultState>,
    tick: u64,
    spike_buf: Vec<OutSpike>,
}

impl ShardWorker {
    /// Build a worker from a `Configure` frame's fields.
    pub fn configure(
        shard: usize,
        starts: &[u32],
        model: &str,
        fault_text: &str,
    ) -> Result<ShardWorker, String> {
        let net = modelfile::load(model).map_err(|e| format!("model rejected: {e}"))?;
        let plan = ShardPlan {
            starts: starts.iter().map(|&s| s as usize).collect(),
            num_cores: net.num_cores(),
        };
        if shard >= plan.shards() {
            return Err(format!(
                "shard index {shard} out of range for {} ranges",
                plan.shards()
            ));
        }
        let owners = (0..plan.num_cores).map(|c| plan.owner(c) as u16).collect();
        let faults = if fault_text.is_empty() {
            None
        } else {
            let plan = FaultPlan::parse(fault_text).map_err(|e| format!("fault plan: {e}"))?;
            Some(FaultState::compile(&plan, net.width(), net.height()))
        };
        Ok(ShardWorker {
            net,
            plan,
            shard,
            owners,
            faults,
            tick: 0,
            spike_buf: Vec::new(),
        })
    }

    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Apply boundary deliveries outside a tick (a `Flush`).
    pub fn apply_remote(&mut self, remote: &[RemoteSpike]) {
        for rs in remote {
            self.net.cores_mut()[rs.core as usize].deliver(rs.deliver_tick, rs.axon);
        }
    }

    /// Run one tick; `inputs` are already owner-filtered external events
    /// for this tick, `remote` the boundary spikes other shards fired
    /// last tick.
    pub fn run_tick(&mut self, inputs: &[(u32, u8)], remote: &[RemoteSpike]) -> DoneMsg {
        let t = self.tick;

        // Fault phase — identical on every shard, so fire-side filtering
        // below sees the same fault state the destination shard would.
        if let Some(f) = &mut self.faults {
            for i in f.advance(t) {
                let ev = f.events()[i];
                let id = self.net.id_of(ev.coord);
                FaultState::apply_to_core(&ev, self.net.core_mut(id), f.seed());
            }
            for &(core, axon) in f.stuck1() {
                self.net.cores_mut()[core as usize].deliver(t, axon);
            }
        }

        // Remote boundary deliveries (fired at t-1, filtered fire-side).
        self.apply_remote(remote);

        // External inputs: out-of-grid targets were diagnosed coordinator
        // side; the per-tick stuck/sync gate applies here, on the owner,
        // so each drop is counted exactly once across the board.
        for &(core, axon) in inputs {
            if let Some(f) = &mut self.faults {
                if !f.allow_external(t, core, axon) {
                    continue;
                }
            }
            self.net.cores_mut()[core as usize].deliver(t + 1, axon);
        }

        // Synapse + Neuron phases, owned cores only, ascending id.
        let mut stats = TickStats::default();
        self.spike_buf.clear();
        for idx in self.plan.range(self.shard) {
            self.net.cores_mut()[idx].tick(t, &mut self.spike_buf, &mut stats);
        }

        // Network phase: local targets deliver now; boundary targets are
        // bucketed per destination shard and ride the barrier reply.
        let shards = self.plan.shards();
        let mut outputs = Vec::new();
        let mut boundary = vec![Vec::new(); shards];
        for s in self.spike_buf.drain(..) {
            match s.dest {
                Dest::Axon(tgt) => {
                    if let Some(f) = &mut self.faults {
                        if !f.allow_spike(t, s.src.core.0, tgt.core.0, tgt.axon) {
                            continue;
                        }
                    }
                    let deliver_tick = t + tgt.delay as u64;
                    let owner = self.owners[tgt.core.index()] as usize;
                    if owner == self.shard {
                        self.net.core_mut(tgt.core).deliver(deliver_tick, tgt.axon);
                    } else {
                        boundary[owner].push(RemoteSpike {
                            core: tgt.core.0,
                            axon: tgt.axon,
                            deliver_tick,
                        });
                    }
                }
                Dest::Output(port) => outputs.push(port),
                Dest::None => {}
            }
        }

        self.tick = t + 1;
        DoneMsg {
            tick: t,
            stats,
            outputs,
            boundary,
            counters: self
                .faults
                .as_ref()
                .map(|f| *f.counters())
                .unwrap_or_default(),
        }
    }

    /// Per-core state digests for the owned range, ascending core id.
    pub fn digests(&self) -> Vec<u64> {
        let r = self.plan.range(self.shard);
        self.net.cores()[r]
            .iter()
            .map(|c| c.state_digest())
            .collect()
    }

    pub fn snapshot(&self) -> Vec<u8> {
        NetworkSnapshot::capture(&self.net, self.tick).to_bytes()
    }

    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        let snap = NetworkSnapshot::from_bytes(bytes).map_err(|e| format!("snapshot: {e}"))?;
        snap.restore(&mut self.net);
        self.tick = snap.tick;
        if let Some(f) = &mut self.faults {
            f.reset_for_restore(&mut self.net, self.tick);
        }
        Ok(())
    }

    pub fn attach_faults(&mut self, text: &str) -> Result<(), String> {
        if text.is_empty() {
            self.faults = None;
            return Ok(());
        }
        let plan = FaultPlan::parse(text).map_err(|e| format!("fault plan: {e}"))?;
        self.faults = Some(FaultState::compile(
            &plan,
            self.net.width(),
            self.net.height(),
        ));
        Ok(())
    }
}

/// Serve one coordinator connection until `Shutdown` or EOF. This is the
/// whole worker: both the `tn-shard-worker` binary and the in-process
/// spawn mode call straight into it.
pub fn serve(stream: TcpStream) -> io::Result<()> {
    let reader = stream.try_clone()?;
    let mut writer = FrameWriter::new(stream);
    serve_io(reader, &mut writer)
}

fn serve_io<R: Read, W: io::Write>(mut reader: R, writer: &mut FrameWriter<W>) -> io::Result<()> {
    let mut worker: Option<ShardWorker> = None;
    loop {
        let msg = match read_to_worker(&mut reader) {
            Ok(m) => m,
            // Coordinator hung up (or was killed): a clean exit, the
            // coordinator side is responsible for healing.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let reply = match (&msg, &mut worker) {
            (ToWorker::Shutdown, _) => {
                write_from_worker(writer, &FromWorker::Ok)?;
                return Ok(());
            }
            (
                ToWorker::Configure {
                    shard,
                    starts,
                    model,
                    faults,
                },
                slot,
            ) => match ShardWorker::configure(*shard as usize, starts, model, faults) {
                Ok(w) => {
                    *slot = Some(w);
                    Some(FromWorker::Ok)
                }
                Err(e) => Some(FromWorker::Err(e)),
            },
            (_, None) => Some(FromWorker::Err("not configured".into())),
            (
                ToWorker::TickGo {
                    tick,
                    inputs,
                    remote,
                },
                Some(w),
            ) => {
                if *tick != w.tick() {
                    Some(FromWorker::Err(format!(
                        "tick skew: coordinator at {tick}, worker at {}",
                        w.tick()
                    )))
                } else {
                    Some(FromWorker::Done(w.run_tick(inputs, remote)))
                }
            }
            (ToWorker::Flush { remote }, Some(w)) => {
                w.apply_remote(remote);
                None // fire-and-forget: stream order covers the flush
            }
            (ToWorker::QueryDigests, Some(w)) => Some(FromWorker::Digests(w.digests())),
            (ToWorker::Snapshot, Some(w)) => Some(FromWorker::SnapData(w.snapshot())),
            (ToWorker::Restore { bytes }, Some(w)) => Some(match w.restore(bytes) {
                Ok(()) => FromWorker::Ok,
                Err(e) => FromWorker::Err(e),
            }),
            (ToWorker::AttachFaults { text }, Some(w)) => Some(match w.attach_faults(text) {
                Ok(()) => FromWorker::Ok,
                Err(e) => FromWorker::Err(e),
            }),
        };
        if let Some(reply) = reply {
            write_from_worker(writer, &reply)?;
        }
    }
}

/// Entry point for the `tn-shard-worker` binary.
pub fn connect_and_serve(addr: &str) -> io::Result<()> {
    serve(TcpStream::connect(addr)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;
    use tn_core::{CoreConfig, CoreId, Crossbar, NetworkBuilder, NeuronConfig, SpikeTarget};

    /// Core 0 neuron j → core 1 axon j, so shard 0 emits boundary spikes
    /// under a 2-way split; core 1 routes back to core 0.
    fn two_core_model() -> String {
        let mut b = NetworkBuilder::new(2, 1, 3);
        for target in [1u32, 0] {
            let mut cfg = CoreConfig::new();
            *cfg.crossbar = Crossbar::from_fn(|i, j| i == j);
            for j in 0..256 {
                cfg.neurons[j] = NeuronConfig::lif(1, 1);
                cfg.neurons[j].dest = Dest::Axon(SpikeTarget::new(CoreId(target), j as u8, 1));
            }
            b.add_core(cfg);
        }
        modelfile::save(&b.build())
    }

    #[test]
    fn configure_rejects_garbage() {
        assert!(ShardWorker::configure(0, &[0], "not a model", "").is_err());
        let model = two_core_model();
        assert!(ShardWorker::configure(5, &[0, 1], &model, "").is_err());
        assert!(ShardWorker::configure(0, &[0, 1], &model, "not a plan").is_err());
    }

    #[test]
    fn serve_loop_handshakes_over_buffers() {
        let model = two_core_model();
        let mut req = FrameWriter::new(Vec::new());
        for msg in [
            ToWorker::Configure {
                shard: 0,
                starts: vec![0, 1],
                model,
                faults: String::new(),
            },
            ToWorker::TickGo {
                tick: 0,
                inputs: vec![(0, 0)],
                remote: vec![],
            },
            ToWorker::QueryDigests,
            ToWorker::Shutdown,
        ] {
            proto::write_to_worker(&mut req, &msg).unwrap();
        }
        let mut replies = FrameWriter::new(Vec::new());
        serve_io(std::io::Cursor::new(req.into_inner()), &mut replies).unwrap();
        let mut r = std::io::Cursor::new(replies.into_inner().to_vec());
        assert_eq!(proto::read_from_worker(&mut r).unwrap(), FromWorker::Ok);
        match proto::read_from_worker(&mut r).unwrap() {
            FromWorker::Done(d) => {
                assert_eq!(d.tick, 0);
                assert_eq!(d.boundary.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        match proto::read_from_worker(&mut r).unwrap() {
            FromWorker::Digests(ds) => assert_eq!(ds.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(proto::read_from_worker(&mut r).unwrap(), FromWorker::Ok);
    }

    #[test]
    fn unconfigured_requests_error() {
        let mut req = FrameWriter::new(Vec::new());
        proto::write_to_worker(&mut req, &ToWorker::QueryDigests).unwrap();
        let mut replies = FrameWriter::new(Vec::new());
        serve_io(std::io::Cursor::new(req.into_inner()), &mut replies).unwrap();
        let mut r = std::io::Cursor::new(replies.into_inner().to_vec());
        match proto::read_from_worker(&mut r).unwrap() {
            FromWorker::Err(e) => assert!(e.contains("not configured")),
            other => panic!("unexpected {other:?}"),
        }
    }
}
