//! The sharded session: a board partitioned across worker processes,
//! presented to the host as one more [`KernelSession`] expression.
//!
//! The coordinator is the only place distribution is visible. Per tick it
//! broadcasts `TickGo` frames — carrying owner-routed external inputs and
//! the boundary spikes every shard fired last tick — then blocks on the
//! [`Mailbox`] barrier until all shards report `Done`. Because a spike
//! fired at tick `t` always has delay ≥ 1, redistributing it inside
//! `TickGo(t + 1)` still lands it before its delivery slot is consumed;
//! the barrier is therefore the *only* synchronisation the contract
//! needs, and the sharded run stays digest-identical to `ReferenceSim`.
//!
//! **Observation flushes.** Digests, checkpoints, and heal snapshots are
//! only meaningful at a tick boundary with *no in-flight boundary
//! traffic*, so every observation first drains `pending` into reply-less
//! `Flush` frames (stream ordering guarantees they land before the next
//! request's reply). The one deliberate exception: the periodic heal
//! snapshot does **not** flush — its pending spikes ride the first
//! recorded `TickGo` of the replay log instead, which keeps the snapshot
//! pure and the replay self-contained.
//!
//! **Shard loss.** Every `snapshot_every` ticks the coordinator assembles
//! a full-board snapshot and truncates its per-shard replay logs. When a
//! worker dies (its reader thread marks it down and the barrier wait
//! returns [`MailboxError::ShardDown`]), the coordinator respawns it,
//! restores the snapshot, and resends the recorded `TickGo`/`Flush`
//! frames; the resurrected worker re-runs the missing ticks, its stale
//! `Done` echoes are dropped by the mailbox, and the current tick's
//! barrier completes as if nothing happened — spike for spike, counter
//! for counter (`tests/chaos.rs`).
//!
//! Mid-run `attach_faults` combined with a later heal is unsupported:
//! the replacement worker is configured with the *current* plan and
//! replays earlier ticks under it. The serving layer attaches plans only
//! at session creation, before any snapshot exists.

use crate::mailbox::{Mailbox, MailboxError};
use crate::plan::ShardPlan;
use crate::proto::{self, FromWorker, RemoteSpike, ToWorker};
use crate::sync::Arc;
use crate::worker;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tn_compass::{publish_common, KernelSession, SpikeRecord};
use tn_core::fault::{FaultCounters, FaultPlan, FaultState};
use tn_core::wire::framed::FrameWriter;
use tn_core::{
    fold_state_digest, modelfile, CoreId, Network, NetworkSnapshot, RunStats, SpikeSource,
    TickStats,
};
use tn_obs::{Histogram, Registry};

/// How shard workers are placed.
#[derive(Clone, Debug)]
pub enum SpawnMode {
    /// Each shard runs on a thread inside this process, still speaking
    /// the full TCP protocol over loopback — distribution semantics
    /// without process-management variance. The default.
    InProcess,
    /// Each shard is an OS process running `worker_bin --connect <addr>`
    /// (the `tn-shard-worker` binary).
    Process { worker_bin: PathBuf },
}

/// Placement request for [`ShardedSession::launch`].
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Requested shard count; clamped so every shard owns ≥ 1 core.
    pub shards: usize,
    pub spawn: SpawnMode,
    /// Take a heal snapshot every N ticks (0 disables; shard loss then
    /// replays from tick 0).
    pub snapshot_every: u64,
    /// How long the coordinator waits on a worker — barrier deposits,
    /// RPC replies, and socket writes — before declaring it *wedged*
    /// and healing it like a death. A hung worker (live socket, no
    /// progress) is otherwise indistinguishable from a slow one, so
    /// this must comfortably exceed the slowest legitimate tick.
    /// `None` waits forever (the pre-timeout behaviour).
    pub reply_timeout: Option<Duration>,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec {
            shards: 2,
            spawn: SpawnMode::InProcess,
            snapshot_every: 32,
            reply_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// One live shard connection.
struct Link {
    writer: FrameWriter<TcpStream>,
    child: Option<Child>,
    reader: Option<JoinHandle<()>>,
    worker_thread: Option<JoinHandle<()>>,
}

/// A freshly placed worker, configured but with no reader thread yet.
struct RawLink {
    writer: FrameWriter<TcpStream>,
    reader_stream: TcpStream,
    child: Option<Child>,
    worker_thread: Option<JoinHandle<()>>,
}

/// A network partitioned across shard workers, drivable like any other
/// kernel expression.
pub struct ShardedSession {
    /// Structural mirror: never ticked, but it keeps the fault plan's
    /// structural effects (dead cores) observable through
    /// [`KernelSession::network`] without a round trip.
    mirror: Network,
    mirror_faults: Option<FaultState>,
    plan: ShardPlan,
    model_text: String,
    fault_text: String,
    spawn: SpawnMode,
    tick: u64,
    stats: RunStats,
    outputs: SpikeRecord,
    dropped_inputs: u64,
    listener: TcpListener,
    links: Vec<Link>,
    mailbox: Arc<Mailbox>,
    /// Boundary spikes awaiting redistribution, bucketed by owner.
    pending: Vec<Vec<RemoteSpike>>,
    /// Per-shard `TickGo`/`Flush` frames since the last heal snapshot.
    replay: Vec<Vec<ToWorker>>,
    /// Latest heal snapshot: (tick, serialized full-board state).
    heal_snap: Option<(u64, Vec<u8>)>,
    snapshot_every: u64,
    /// Counters folded in from worker incarnations that died or were
    /// superseded; `fault_counters` = base + Σ last.
    counter_base: FaultCounters,
    /// Each shard's counters as of the last heal snapshot.
    snap_counters: Vec<FaultCounters>,
    /// Each shard's latest reported cumulative counters.
    last_counters: Vec<FaultCounters>,
    boundary_spikes: u64,
    heals: u64,
    reply_timeout: Option<Duration>,
    barrier_wait_ns: Arc<Histogram>,
    input_buf: Vec<(CoreId, u8)>,
}

fn reader_loop(k: usize, mut stream: TcpStream, mailbox: Arc<Mailbox>) {
    loop {
        match proto::read_from_worker(&mut stream) {
            Ok(FromWorker::Done(d)) => mailbox.deposit_done(k, d),
            Ok(msg) => mailbox.deposit_reply(k, msg),
            Err(_) => {
                mailbox.mark_down(k);
                return;
            }
        }
    }
}

fn protocol_err(what: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

impl ShardedSession {
    /// Partition `net`, place one worker per shard, and configure them.
    /// The returned session is at tick 0 with no faults attached.
    pub fn launch(net: Network, spec: &ShardSpec) -> io::Result<ShardedSession> {
        let plan = ShardPlan::compute(&net, spec.shards);
        let shards = plan.shards();
        let model_text = modelfile::save(&net);
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let mut session = ShardedSession {
            mirror: net,
            mirror_faults: None,
            plan,
            model_text,
            fault_text: String::new(),
            spawn: spec.spawn.clone(),
            tick: 0,
            stats: RunStats::default(),
            outputs: SpikeRecord::new(),
            dropped_inputs: 0,
            listener,
            links: Vec::with_capacity(shards),
            mailbox: Arc::new(Mailbox::new(shards)),
            pending: vec![Vec::new(); shards],
            replay: vec![Vec::new(); shards],
            heal_snap: None,
            snapshot_every: spec.snapshot_every,
            counter_base: FaultCounters::default(),
            snap_counters: vec![FaultCounters::default(); shards],
            last_counters: vec![FaultCounters::default(); shards],
            boundary_spikes: 0,
            heals: 0,
            reply_timeout: spec.reply_timeout,
            barrier_wait_ns: Arc::new(Histogram::exponential(1_000, 4, 8)),
            input_buf: Vec::new(),
        };
        for k in 0..shards {
            let raw = session.place_worker(k)?;
            let link = session.arm_reader(k, raw);
            session.links.push(link);
        }
        Ok(session)
    }

    /// Actual shard count after clamping.
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// Total boundary spikes exchanged so far.
    pub fn boundary_spikes(&self) -> u64 {
        self.boundary_spikes
    }

    /// Shard workers healed after connection loss.
    pub fn heals(&self) -> u64 {
        self.heals
    }

    /// The partition driving this session.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Test hook: wedge shard `k`'s OS-process worker with `SIGSTOP`.
    /// Its socket stays open and nothing errors — the worker simply
    /// stops making progress, which only the mailbox stall deadline can
    /// detect. The eventual heal's `SIGKILL` reaps it (kill is delivered
    /// even to stopped processes). In-process workers cannot be wedged
    /// this way; the call is a no-op for them.
    pub fn wedge_worker(&mut self, k: usize) {
        if let Some(c) = &self.links[k].child {
            let _ = Command::new("kill")
                .args(["-STOP", &c.id().to_string()])
                .status();
        }
    }

    /// Test hook: kill shard `k`'s worker mid-run (child process killed,
    /// or the in-process worker's socket severed). The next barrier wait
    /// notices and heals.
    pub fn kill_worker(&mut self, k: usize) {
        let link = &mut self.links[k];
        if let Some(c) = &mut link.child {
            let _ = c.kill();
        }
        let _ = link.writer.get_mut().shutdown(std::net::Shutdown::Both);
    }

    /// Spawn one worker, accept its connection, and run the synchronous
    /// `Configure` handshake with the current fault text. The reader
    /// thread is armed separately so heals can interleave a `Restore`.
    fn place_worker(&self, k: usize) -> io::Result<RawLink> {
        let addr = self.listener.local_addr()?;
        let (child, worker_thread) = match &self.spawn {
            SpawnMode::Process { worker_bin } => {
                let child = Command::new(worker_bin)
                    .arg("--connect")
                    .arg(addr.to_string())
                    .stdin(Stdio::null())
                    .spawn()?;
                (Some(child), None)
            }
            SpawnMode::InProcess => {
                let h = std::thread::spawn(move || {
                    let _ = worker::connect_and_serve(&addr.to_string());
                });
                (None, Some(h))
            }
        };
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true)?;
        // A wedged worker that stops reading eventually fills the socket
        // buffer; without this, `write_to_worker` blocks the coordinator
        // forever. A timed-out write surfaces as an io error and heals
        // through the same path as a death. Reads stay unbounded — the
        // reader thread legitimately idles between frames; stall
        // detection for *replies* lives in the mailbox deadline instead.
        stream.set_write_timeout(self.reply_timeout)?;
        let mut reader_stream = stream.try_clone()?;
        // The Configure (and heal-time Restore) replies are read
        // synchronously on this stream before the reader thread is
        // armed; bound them too, or a worker that wedges during its
        // handshake blocks placement forever. `arm_reader` clears this
        // before handing the stream to the reader loop.
        reader_stream.set_read_timeout(self.reply_timeout)?;
        let mut writer = FrameWriter::new(stream);
        proto::write_to_worker(
            &mut writer,
            &ToWorker::Configure {
                shard: k as u16,
                starts: self.plan.starts.iter().map(|&s| s as u32).collect(),
                model: self.model_text.clone(),
                faults: self.fault_text.clone(),
            },
        )?;
        match proto::read_from_worker(&mut reader_stream)? {
            FromWorker::Ok => {}
            FromWorker::Err(e) => return Err(protocol_err(format!("shard {k} rejected: {e}"))),
            other => return Err(protocol_err(format!("shard {k}: unexpected {other:?}"))),
        }
        Ok(RawLink {
            writer,
            reader_stream,
            child,
            worker_thread,
        })
    }

    fn arm_reader(&self, k: usize, raw: RawLink) -> Link {
        let mailbox = self.mailbox.clone();
        let stream = raw.reader_stream;
        // Idle blocking reads are normal for the reader loop (a worker
        // may legitimately sit silent between ticks); only the mailbox
        // deadlines decide a shard has stalled.
        let _ = stream.set_read_timeout(None);
        Link {
            writer: raw.writer,
            child: raw.child,
            reader: Some(std::thread::spawn(move || reader_loop(k, stream, mailbox))),
            worker_thread: raw.worker_thread,
        }
    }

    /// Tear down a dead shard, respawn it, restore the latest heal
    /// snapshot, and replay everything since. The mailbox keeps the
    /// other shards' barrier deposits, so after this returns the caller
    /// simply re-enters its wait.
    fn heal(&mut self, k: usize) -> io::Result<()> {
        self.heals += 1;
        // Reap the corpse: close our side, join the reader, kill any
        // child so it cannot linger half-connected.
        {
            let link = &mut self.links[k];
            let _ = link.writer.get_mut().shutdown(std::net::Shutdown::Both);
            if let Some(r) = link.reader.take() {
                let _ = r.join();
            }
            if let Some(mut c) = link.child.take() {
                let _ = c.kill();
                let _ = c.wait();
            }
            if let Some(t) = link.worker_thread.take() {
                let _ = t.join();
            }
        }
        self.mailbox.begin_heal(k);

        let mut raw = self.place_worker(k)?;
        if let Some((_, bytes)) = &self.heal_snap {
            proto::write_to_worker(
                &mut raw.writer,
                &ToWorker::Restore {
                    bytes: bytes.clone(),
                },
            )?;
            match proto::read_from_worker(&mut raw.reader_stream)? {
                FromWorker::Ok => {}
                other => {
                    return Err(protocol_err(format!(
                        "shard {k} failed snapshot restore: {other:?}"
                    )))
                }
            }
        }
        // The dead incarnation's post-snapshot counts died with it; fold
        // its snapshot-time counts into the base. The replacement
        // recounts the replayed ticks from zero, restoring the exact
        // global sum.
        self.counter_base.merge(&self.snap_counters[k]);
        self.snap_counters[k] = FaultCounters::default();
        self.last_counters[k] = FaultCounters::default();

        let mut link = self.arm_reader(k, raw);
        // Replay the recorded frames. Stale Done echoes fall below the
        // barrier slots' ticks and are dropped by the mailbox.
        for frame in &self.replay[k] {
            proto::write_to_worker(&mut link.writer, frame)?;
        }
        self.links[k] = link;
        self.mailbox.revive(k);
        Ok(())
    }

    /// Send `msg` to shard `k` and wait for its reply, healing any shard
    /// that dies along the way (including `k` itself, in which case the
    /// request is re-sent — requests are never written to replay logs).
    fn rpc(&mut self, k: usize, msg: &ToWorker) -> io::Result<FromWorker> {
        loop {
            if let Err(e) = proto::write_to_worker(&mut self.links[k].writer, msg) {
                drop(e);
                self.heal(k)?;
                continue;
            }
            match self.mailbox.wait_reply_for(k, self.reply_timeout) {
                Ok(FromWorker::Err(e)) => {
                    return Err(protocol_err(format!("shard {k}: {e}")));
                }
                Ok(reply) => return Ok(reply),
                Err(MailboxError::Shutdown) => {
                    return Err(protocol_err("session shut down".into()))
                }
                // A wedged shard heals exactly like a dead one: the
                // socket shutdown in `heal` unblocks its reader thread.
                Err(MailboxError::ShardDown(j) | MailboxError::Stalled(j)) => {
                    self.heal(j)?;
                    // If the replying shard itself died, re-send.
                    if j == k {
                        continue;
                    }
                }
            }
        }
    }

    /// Drain pending boundary spikes into reply-less `Flush` frames so
    /// worker state at this tick boundary equals the single-process
    /// state. Recorded in replay logs — a healed worker needs the same
    /// deliveries, since later `TickGo` frames no longer carry them.
    fn flush_boundary(&mut self) -> io::Result<()> {
        for k in 0..self.shards() {
            if self.pending[k].is_empty() {
                continue;
            }
            let msg = ToWorker::Flush {
                remote: std::mem::take(&mut self.pending[k]),
            };
            if proto::write_to_worker(&mut self.links[k].writer, &msg).is_err() {
                // The recorded frame reaches the replacement via replay.
                self.replay[k].push(msg);
                self.heal(k)?;
                continue;
            }
            self.replay[k].push(msg);
        }
        Ok(())
    }

    /// Assemble a full-board snapshot at the current tick boundary from
    /// per-worker snapshots, splicing each worker's owned range.
    fn assemble_snapshot(&mut self) -> io::Result<NetworkSnapshot> {
        let mut full: Option<NetworkSnapshot> = None;
        for k in 0..self.shards() {
            let reply = self.rpc(k, &ToWorker::Snapshot)?;
            let FromWorker::SnapData(bytes) = reply else {
                return Err(protocol_err(format!("shard {k}: expected snapshot data")));
            };
            let snap = NetworkSnapshot::from_bytes(&bytes)
                .map_err(|e| protocol_err(format!("shard {k} snapshot: {e}")))?;
            match &mut full {
                None => full = Some(snap),
                Some(f) => {
                    let r = self.plan.range(k);
                    f.cores[r.clone()].clone_from_slice(&snap.cores[r]);
                }
            }
        }
        let mut snap = full.expect("at least one shard");
        snap.tick = self.tick;
        Ok(snap)
    }

    /// Periodic heal snapshot: capture the board *without* flushing
    /// (pending spikes ride the first recorded `TickGo`), then truncate
    /// the replay logs and re-anchor counter bookkeeping.
    fn take_heal_snapshot(&mut self) -> io::Result<()> {
        let snap = self.assemble_snapshot()?;
        self.heal_snap = Some((self.tick, snap.to_bytes()));
        for k in 0..self.shards() {
            self.replay[k].clear();
            self.snap_counters[k] = self.last_counters[k];
        }
        Ok(())
    }

    fn step_inner(&mut self, src: &mut (dyn SpikeSource + Send)) -> TickStats {
        let t = self.tick;
        let wall = Instant::now();

        // Keep the structural mirror honest (dead cores for health and
        // tier reporting); drop counting happens on the workers.
        if let Some(f) = &mut self.mirror_faults {
            for i in f.advance(t) {
                let ev = f.events()[i];
                let id = self.mirror.id_of(ev.coord);
                FaultState::apply_to_core(&ev, self.mirror.core_mut(id), f.seed());
            }
        }

        // Owner-route external inputs; out-of-grid targets are diagnosed
        // here, exactly once, like every expression does.
        self.input_buf.clear();
        src.fill(t, &mut self.input_buf);
        let shards = self.shards();
        let mut inputs: Vec<Vec<(u32, u8)>> = vec![Vec::new(); shards];
        for &(core, axon) in &self.input_buf {
            if core.index() >= self.plan.num_cores {
                self.dropped_inputs += 1;
                continue;
            }
            inputs[self.plan.owner(core.index())].push((core.0, axon));
        }

        // Broadcast TickGo: inputs plus last tick's boundary spikes.
        // Record before sending — a write failure heals off the log.
        for (k, shard_inputs) in inputs.into_iter().enumerate() {
            let msg = ToWorker::TickGo {
                tick: t,
                inputs: shard_inputs,
                remote: std::mem::take(&mut self.pending[k]),
            };
            self.replay[k].push(msg);
            let msg = self.replay[k].last().expect("just pushed");
            if proto::write_to_worker(&mut self.links[k].writer, msg).is_err() {
                // Reader will flag it; the barrier wait below heals.
            }
        }

        // Barrier: all shards report Done(t), healing casualties.
        let wait_start = Instant::now();
        let dones = loop {
            match self.mailbox.wait_done_for(t, shards, self.reply_timeout) {
                Ok(d) => break d,
                Err(MailboxError::ShardDown(k) | MailboxError::Stalled(k)) => {
                    self.heal(k).expect("shard heal failed");
                }
                Err(MailboxError::Shutdown) => unreachable!("shutdown only in Drop"),
            }
        };
        self.barrier_wait_ns
            .observe(wait_start.elapsed().as_nanos() as u64);

        // Fold the barrier replies in shard order — which is core-scan
        // order, so concatenated outputs match the reference transcript.
        let mut tick_stats = TickStats::default();
        let mut crossings = 0u64;
        for (k, d) in dones.into_iter().enumerate() {
            debug_assert_eq!(d.tick, t);
            tick_stats += d.stats;
            for port in d.outputs {
                self.outputs.push(t, port);
            }
            for (dst, batch) in d.boundary.into_iter().enumerate() {
                crossings += batch.len() as u64;
                self.pending[dst].extend(batch);
            }
            self.last_counters[k] = d.counters;
        }
        self.boundary_spikes += crossings;
        self.stats.boundary_crossings += crossings;
        self.stats.ticks += 1;
        self.stats.totals += tick_stats;
        self.tick = t + 1;
        self.stats.wall_seconds += wall.elapsed().as_secs_f64();

        if self.snapshot_every != 0 && self.tick.is_multiple_of(self.snapshot_every) {
            self.take_heal_snapshot().expect("heal snapshot failed");
        }
        tick_stats
    }

    fn digest_inner(&mut self) -> io::Result<u64> {
        self.flush_boundary()?;
        let mut digests = vec![0u64; self.plan.num_cores];
        for k in 0..self.shards() {
            let reply = self.rpc(k, &ToWorker::QueryDigests)?;
            let FromWorker::Digests(ds) = reply else {
                return Err(protocol_err(format!("shard {k}: expected digests")));
            };
            let r = self.plan.range(k);
            if ds.len() != r.len() {
                return Err(protocol_err(format!(
                    "shard {k} returned {} digests for {} cores",
                    ds.len(),
                    r.len()
                )));
            }
            digests[r].copy_from_slice(&ds);
        }
        Ok(fold_state_digest(digests))
    }
}

impl KernelSession for ShardedSession {
    fn engine_name(&self) -> &'static str {
        "sharded"
    }

    fn step(&mut self, src: &mut (dyn SpikeSource + Send)) -> TickStats {
        self.step_inner(src)
    }

    fn current_tick(&self) -> u64 {
        self.tick
    }

    fn network(&self) -> &Network {
        &self.mirror
    }

    fn outputs(&mut self) -> &mut SpikeRecord {
        &mut self.outputs
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }

    fn dropped_inputs(&self) -> u64 {
        self.dropped_inputs
    }

    fn quiesce(&mut self) {
        // Settle boundary traffic so a migration snapshot taken next
        // equals the single-process state. `checkpoint` flushes again,
        // but by then `pending` is empty and the flush is a no-op.
        self.flush_boundary().expect("boundary flush failed");
    }

    fn checkpoint(&mut self) -> NetworkSnapshot {
        self.flush_boundary().expect("boundary flush failed");
        self.assemble_snapshot().expect("checkpoint failed")
    }

    fn restore(&mut self, snap: &NetworkSnapshot) {
        let bytes = snap.to_bytes();
        for k in 0..self.shards() {
            match self
                .rpc(
                    k,
                    &ToWorker::Restore {
                        bytes: bytes.clone(),
                    },
                )
                .expect("restore rpc failed")
            {
                FromWorker::Ok => {}
                other => panic!("shard {k} failed restore: {other:?}"),
            }
        }
        snap.restore(&mut self.mirror);
        if let Some(f) = &mut self.mirror_faults {
            f.reset_for_restore(&mut self.mirror, snap.tick);
        }
        self.tick = snap.tick;
        for k in 0..self.shards() {
            self.pending[k].clear();
            self.replay[k].clear();
            // Worker counters survive a restore (telemetry is never
            // rewound), so the restore point becomes the new heal anchor.
            self.snap_counters[k] = self.last_counters[k];
        }
        self.mailbox.reset_ticks(self.tick);
        self.heal_snap = Some((snap.tick, bytes));
    }

    fn state_digest(&mut self) -> u64 {
        self.digest_inner().expect("digest query failed")
    }

    fn attach_faults(&mut self, plan: &FaultPlan) {
        self.fault_text = plan.to_text();
        self.mirror_faults = Some(FaultState::compile(
            plan,
            self.mirror.width(),
            self.mirror.height(),
        ));
        for k in 0..self.shards() {
            match self
                .rpc(
                    k,
                    &ToWorker::AttachFaults {
                        text: self.fault_text.clone(),
                    },
                )
                .expect("attach_faults rpc failed")
            {
                FromWorker::Ok => {}
                other => panic!("shard {k} rejected fault plan: {other:?}"),
            }
        }
    }

    fn fault_counters(&self) -> Option<FaultCounters> {
        if self.fault_text.is_empty() {
            return None;
        }
        let mut total = self.counter_base;
        for c in &self.last_counters {
            total.merge(c);
        }
        Some(total)
    }

    fn publish_metrics(&self, registry: &Registry) {
        publish_common(self, registry);
        registry
            .counter("tn_shard_boundary_spikes_total")
            .set(self.boundary_spikes);
        registry.counter("tn_shard_heals_total").set(self.heals);
        registry.register_histogram(
            "tn_shard_barrier_wait_ns",
            &[],
            self.barrier_wait_ns.clone(),
        );
    }
}

impl Drop for ShardedSession {
    fn drop(&mut self) {
        // Best-effort graceful shutdown, then make sure nothing lingers.
        for link in &mut self.links {
            let _ = proto::write_to_worker(&mut link.writer, &ToWorker::Shutdown);
        }
        self.mailbox.shutdown();
        for link in &mut self.links {
            let _ = link.writer.get_mut().shutdown(std::net::Shutdown::Both);
            if let Some(r) = link.reader.take() {
                let _ = r.join();
            }
            if let Some(mut c) = link.child.take() {
                let _ = c.kill();
                let _ = c.wait();
            }
            if let Some(t) = link.worker_thread.take() {
                let _ = t.join();
            }
        }
    }
}
