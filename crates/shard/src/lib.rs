//! # tn-shard — distributed multi-process board sharding
//!
//! The paper's scale-out story tiles chips into boards through
//! merge–split peripheral links and scales Compass across Blue Gene/Q
//! cards over message passing (Sections IV, VII). This crate is that
//! story executed rather than projected: one network is partitioned into
//! contiguous core ranges, each range runs in its own shard worker (an
//! OS process or an in-process thread), and boundary spikes cross shard
//! edges as length-prefixed, CRC-guarded TCP frames.
//!
//! The contract is the repo's usual one, extended across process
//! boundaries: a sharded run is **digest-identical and spike-for-spike
//! equal** to a single-process `ReferenceSim` run of the same network,
//! inputs, and fault plan. Three properties make that possible:
//!
//! 1. **Deterministic partitioning** ([`plan`]): shard ranges come from
//!    `tn_compass::weighted_split_points` over per-core synapse weights,
//!    so the same network always splits the same way.
//! 2. **A barrier per tick** ([`mailbox`], [`coordinator`]): the
//!    coordinator distributes every shard's boundary spikes for tick T
//!    before any shard evaluates T, with a parity double-buffer that
//!    tolerates one-tick-late deposits — the Pairwise-style mailbox
//!    discipline from `tn_compass::parallel`, stretched over TCP.
//! 3. **Commutative delivery** (the blueprint): spike delivery into
//!    delay rings is an order-free OR-set, so remote deliveries may be
//!    applied at any point before the receiving core's tick.
//!
//! [`ShardedSession`] implements `tn_compass::KernelSession`, so the
//! serve/fault/obs stack hosts a sharded board exactly like a local one.
//! Shard loss is survivable: a killed worker is respawned, restored from
//! the latest periodic snapshot, and replayed to the barrier tick.

pub mod coordinator;
pub mod mailbox;
pub mod plan;
pub mod proto;
mod sync;
pub mod worker;

pub use coordinator::{ShardSpec, ShardedSession, SpawnMode};
pub use mailbox::{Mailbox, MailboxError};
pub use plan::{boundary_routes, BoundaryRoute, ShardPlan};
pub use proto::{DoneMsg, FromWorker, RemoteSpike, ToWorker};
