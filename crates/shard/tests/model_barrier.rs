//! Model-checked tick-barrier protocol (run with
//! `RUSTFLAGS="--cfg tn_check"`): the coordinator/reader-thread
//! handshake over [`tn_shard::Mailbox`] is explored across thread
//! interleavings — parity double-buffering under one-tick-late deposits,
//! stale replay echoes, shard-loss + heal mid-wait, and shutdown — plus
//! a deliberately broken barrier as the negative control proving the
//! checker would catch a lost wakeup in this shape of code.
//!
//! The buggy fixture lives here, in a test file, precisely so its lint
//! allowance cannot leak onto the production mailbox in `src/`.

// tn-check: allow(TN020, TN022) — the `BuggyBarrier` fixture below
// re-checks its predicate outside the lock and waits unconditionally;
// that missing happens-before IS the bug the negative control pins.

#![cfg(tn_check)]

use tn_check::sync::{Arc, Condvar, Mutex};
use tn_check::{check_dfs, check_random, replay, Config, FailureKind};
use tn_shard::proto::DoneMsg;
use tn_shard::{Mailbox, MailboxError};

fn schedules(default: u64) -> u64 {
    std::env::var("TN_CHECK_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn done(tick: u64) -> DoneMsg {
    DoneMsg {
        tick,
        ..DoneMsg::default()
    }
}

/// Two reader threads race the coordinator across two ticks, each
/// legally running one tick ahead of the barrier drain (the parity
/// double-buffer case). DFS-exhausted: every interleaving of the
/// 2-shard configuration drains both barriers in order.
fn two_shard_barrier() {
    let mb = Arc::new(Mailbox::new(2));
    let readers: Vec<_> = (0..2usize)
        .map(|k| {
            let mb = Arc::clone(&mb);
            tn_check::thread::spawn(move || {
                // A fast shard may deposit tick 1 while the coordinator
                // is still collecting tick 0 from the slow one.
                mb.deposit_done(k, done(0));
                mb.deposit_done(k, done(1));
            })
        })
        .collect();
    for t in 0..2u64 {
        let drained = mb.wait_done(t, 2).expect("no shutdown in this model");
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|d| d.tick == t), "tick mixing in slot");
    }
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn model_barrier_two_shards_dfs_exhausts_clean() {
    // Preemption-bounded DFS: the unbounded two-tick space is astronomic,
    // but ≤3 involuntary switches reaches every barrier-relevant
    // interleaving class (loss, reorder, one-tick-ahead overlap).
    let cfg = Config {
        preemption_bound: Some(3),
        ..Config::default()
    };
    let report = check_dfs(&cfg, 300_000, two_shard_barrier);
    report.assert_ok();
    assert!(
        report.exhausted,
        "DFS must exhaust the 2-shard barrier space, ran {} schedules",
        report.schedules
    );
    println!(
        "model_barrier_two_shards: exhausted in {} schedules",
        report.schedules
    );
}

/// A healed shard's replay echoes (deposits for ticks the barrier
/// already closed) race a live tick; the stale ones must vanish
/// silently, never panic, never corrupt the live slot.
fn stale_echo_race() {
    let mb = Arc::new(Mailbox::new(1));
    mb.deposit_done(0, done(0));
    assert_eq!(mb.wait_done(0, 1).unwrap().len(), 1);
    let echo = {
        let mb = Arc::clone(&mb);
        // Replay echo from a resurrected worker: tick 0 again, racing
        // the live deposit for tick 2 below.
        tn_check::thread::spawn(move || mb.deposit_done(0, done(0)))
    };
    mb.deposit_done(0, done(2));
    let drained = mb.wait_done(2, 1).unwrap();
    assert_eq!(drained.len(), 1);
    assert_eq!(drained[0].tick, 2, "stale echo displaced a live deposit");
    echo.join().unwrap();
}

#[test]
fn model_stale_replay_echoes_are_dropped() {
    let cfg = Config::default();
    let report = check_dfs(&cfg, 300_000, stale_echo_race);
    report.assert_ok();
    assert!(report.exhausted, "stale-echo space must be exhaustible");
}

/// Shard loss mid-wait: a reader marks its shard down while the
/// coordinator waits; the coordinator heals (begin_heal + revive) and
/// re-enters the wait, which completes off the surviving deposit plus
/// the replacement's.
fn shard_down_heal_resume() {
    let mb = Arc::new(Mailbox::new(2));
    let healthy = {
        let mb = Arc::clone(&mb);
        tn_check::thread::spawn(move || mb.deposit_done(0, done(0)))
    };
    let dying = {
        let mb = Arc::clone(&mb);
        tn_check::thread::spawn(move || mb.mark_down(1))
    };
    // The wait either sees the down flag immediately or blocks until
    // the dying reader raises it — both must surface ShardDown(1).
    match mb.wait_done(0, 2) {
        Err(MailboxError::ShardDown(1)) => {}
        other => panic!("expected ShardDown(1), got {other:?}"),
    }
    // Coordinator heals: forget shard 1's state, reconnect, replay.
    mb.begin_heal(1);
    mb.revive(1);
    mb.deposit_done(1, done(0));
    let drained = mb.wait_done(0, 2).expect("healed barrier completes");
    assert_eq!(drained.len(), 2);
    assert!(drained.iter().all(|d| d.tick == 0));
    healthy.join().unwrap();
    dying.join().unwrap();
}

#[test]
fn model_shard_loss_heals_mid_wait() {
    let cfg = Config::default();
    let n = schedules(1_000);
    let report = check_random(&cfg, n, 0x5AD_D011, shard_down_heal_resume);
    report.assert_ok();
    println!("model_shard_loss: {} clean schedules", report.schedules);
}

/// Shutdown wakes a parked coordinator instead of stranding it.
fn shutdown_wakes_waiter() {
    let mb = Arc::new(Mailbox::new(1));
    let closer = {
        let mb = Arc::clone(&mb);
        tn_check::thread::spawn(move || mb.shutdown())
    };
    match mb.wait_done(0, 1) {
        Err(MailboxError::Shutdown) => {}
        other => panic!("expected Shutdown, got {other:?}"),
    }
    closer.join().unwrap();
}

#[test]
fn model_shutdown_never_strands_the_coordinator() {
    let report = check_dfs(&Config::default(), 100_000, shutdown_wakes_waiter);
    report.assert_ok();
    assert!(report.exhausted);
}

// ---------------------------------------------------------------------
// Negative control
// ---------------------------------------------------------------------

/// A broken barrier in the mailbox's shape: `buggy_wait` checks the
/// arrival flag, DROPS the lock, then re-locks and waits with no
/// predicate re-check. A deposit landing in the gap notifies nobody and
/// the wakeup is lost forever — exactly the bug TN022 and the predicate
/// loop in the real `Mailbox::wait_done` exist to prevent.
struct BuggyBarrier {
    arrived: Mutex<bool>,
    cond: Condvar,
}

impl BuggyBarrier {
    fn deposit(&self) {
        *self.arrived.lock().unwrap() = true;
        self.cond.notify_all();
    }

    fn buggy_wait(&self) {
        // BUG: flag check and wait are separate critical sections.
        if !*self.arrived.lock().unwrap() {
            let guard = self.arrived.lock().unwrap();
            let _guard = self.cond.wait(guard).unwrap();
        }
    }
}

fn lost_barrier_wakeup() {
    let bb = Arc::new(BuggyBarrier {
        arrived: Mutex::new(false),
        cond: Condvar::new(),
    });
    let depositor = {
        let bb = Arc::clone(&bb);
        tn_check::thread::spawn(move || bb.deposit())
    };
    bb.buggy_wait();
    depositor.join().unwrap();
}

#[test]
fn model_buggy_barrier_without_predicate_loop_deadlocks() {
    // Spurious-wakeup injection off: an injected wake would paper over
    // exactly the hang this fixture exists to expose.
    let cfg = Config {
        spurious_wakeups: 0,
        ..Config::default()
    };
    let report = check_random(&cfg, 2_000, 0xBADBA44, lost_barrier_wakeup);
    let failure = report
        .failure
        .expect("the checker must find the lost wakeup");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    let schedule = failure
        .schedule
        .clone()
        .expect("random failures carry a seed");
    let replayed = replay(&cfg, &schedule, lost_barrier_wakeup)
        .failure
        .expect("replaying the failing seed must reproduce the deadlock");
    assert_eq!(replayed.kind, FailureKind::Deadlock, "replay diverged");
}
