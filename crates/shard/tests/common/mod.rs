//! Shared fixtures for the sharding tests: seeded stochastic topologies
//! with output ports, scheduled input streams, and a fault plan that
//! exercises every fault class.

// Each test binary includes this module but uses a different subset.
#![allow(dead_code)]

use tn_core::{
    CoreConfig, CoreId, Crossbar, Dest, Network, NetworkBuilder, NeuronConfig, ScheduledSource,
    SpikeTarget,
};

/// Random-ish stochastic recurrent network over `w×h` cores (the
/// `tn-compass` equivalence fixture), with every 16th neuron routed to
/// an output port so spike transcripts get exercised too.
pub fn stochastic_net(w: u16, h: u16, seed: u64) -> Network {
    let mut b = NetworkBuilder::new(w, h, seed);
    let num = (w as u32 * h as u32) as usize;
    for c in 0..num {
        let mut cfg = CoreConfig::new();
        *cfg.crossbar = Crossbar::from_fn(|i, j| (i * 31 + j * 17 + c) % 13 == 0);
        for j in 0..256 {
            cfg.neurons[j] = NeuronConfig::stochastic_source(20);
            // Zero-weight recurrence keeps rates stationary while still
            // exercising routing.
            cfg.neurons[j].weights = [0; 4];
            if (j + c) % 16 == 0 {
                cfg.neurons[j].dest = Dest::Output((c * 256 + j) as u32);
            } else {
                let tgt = ((c * 7 + j * 3) % num) as u32;
                cfg.neurons[j].dest = Dest::Axon(SpikeTarget::new(
                    CoreId(tgt),
                    ((j * 11 + c) % 256) as u8,
                    1 + ((j + c) % 15) as u8,
                ));
            }
        }
        b.add_core(cfg);
    }
    b.build()
}

/// A deterministic input schedule touching every shard's cores, plus one
/// out-of-grid event to pin drop accounting.
pub fn inputs_for(num_cores: usize, ticks: u64) -> ScheduledSource {
    let mut src = ScheduledSource::new();
    for t in 0..ticks {
        for i in 0..4u64 {
            let core = ((t * 13 + i * 5) % num_cores as u64) as u32;
            let axon = ((t * 29 + i * 101) % 256) as u8;
            src.push(t, CoreId(core), axon);
        }
    }
    src.push(1, CoreId(num_cores as u32 + 7), 0); // out of grid: dropped
    src
}

/// A fault plan for a grid at least 3×2: a dead core, stuck axons both
/// ways, a bit flip, a neuron corruption, a sync window, a severed link,
/// and a lossy link.
pub fn fault_plan_text() -> &'static str {
    "tnfault 1\n\
     seed 99\n\
     at 3 core 0 0 dead\n\
     at 4 core 1 0 axon 7 stuck0\n\
     at 4 core 1 0 axon 9 stuck1\n\
     at 6 core 2 0 flip 3 5\n\
     at 7 core 0 1 corrupt 11\n\
     at 8 core 1 1 sync 6\n\
     at 5 link 0 0 1 0 sever\n\
     at 5 link 1 0 2 0 lossy 350\n"
}
