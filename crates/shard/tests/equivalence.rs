//! The acceptance property: a network partitioned across shard workers
//! produces byte-identical state digests and output spike streams to a
//! single-process `ReferenceSim` run — across seeded topologies, shard
//! counts, OS-process placement, and an active fault plan.

mod common;

use tn_compass::{KernelSession, ReferenceSim};
use tn_core::fault::FaultPlan;
use tn_core::ScheduledSource;
use tn_shard::{ShardSpec, ShardedSession, SpawnMode};

struct Transcript {
    digests: Vec<u64>,
    outputs: Vec<(u64, u32)>,
    spikes_out: u64,
    sops: u64,
    dropped_inputs: u64,
    counters: Option<tn_core::FaultCounters>,
}

/// Drive any session `ticks` ticks, observing the digest every
/// `digest_every` ticks (mid-run digests exercise the boundary flush).
fn transcript(
    sim: &mut dyn KernelSession,
    src: &mut ScheduledSource,
    ticks: u64,
    digest_every: u64,
) -> Transcript {
    let mut digests = Vec::new();
    for t in 1..=ticks {
        sim.step(src);
        if t % digest_every == 0 {
            digests.push(sim.state_digest());
        }
    }
    digests.push(sim.state_digest());
    let outputs = sim
        .outputs()
        .events()
        .iter()
        .map(|e| (e.tick, e.port))
        .collect();
    Transcript {
        digests,
        outputs,
        spikes_out: sim.stats().totals.spikes_out,
        sops: sim.stats().totals.sops,
        dropped_inputs: sim.dropped_inputs(),
        counters: sim.fault_counters(),
    }
}

fn reference_transcript(
    w: u16,
    h: u16,
    seed: u64,
    ticks: u64,
    fault_text: Option<&str>,
) -> Transcript {
    let mut sim = ReferenceSim::new(common::stochastic_net(w, h, seed));
    if let Some(text) = fault_text {
        sim.attach_faults(&FaultPlan::parse(text).unwrap());
    }
    let num = sim.network().num_cores();
    transcript(&mut sim, &mut common::inputs_for(num, ticks), ticks, 20)
}

fn sharded_transcript(
    w: u16,
    h: u16,
    seed: u64,
    ticks: u64,
    fault_text: Option<&str>,
    spec: &ShardSpec,
) -> (Transcript, u64) {
    let net = common::stochastic_net(w, h, seed);
    let num = net.num_cores();
    let mut sim = ShardedSession::launch(net, spec).expect("launch");
    if let Some(text) = fault_text {
        sim.attach_faults(&FaultPlan::parse(text).unwrap());
    }
    let tr = transcript(&mut sim, &mut common::inputs_for(num, ticks), ticks, 20);
    (tr, sim.boundary_spikes())
}

fn assert_equivalent(reference: &Transcript, sharded: &Transcript, what: &str) {
    assert_eq!(reference.digests, sharded.digests, "{what}: state digests");
    assert_eq!(reference.outputs, sharded.outputs, "{what}: output stream");
    assert_eq!(reference.spikes_out, sharded.spikes_out, "{what}: spikes");
    assert_eq!(reference.sops, sharded.sops, "{what}: sops");
    assert_eq!(
        reference.dropped_inputs, sharded.dropped_inputs,
        "{what}: dropped inputs"
    );
    assert_eq!(reference.counters, sharded.counters, "{what}: counters");
}

#[test]
fn two_shards_in_process_match_reference() {
    let reference = reference_transcript(4, 2, 11, 60, None);
    let spec = ShardSpec {
        shards: 2,
        ..ShardSpec::default()
    };
    let (sharded, boundary) = sharded_transcript(4, 2, 11, 60, None, &spec);
    assert_equivalent(&reference, &sharded, "4x2 seed 11, 2 shards");
    assert!(boundary > 0, "topology must actually cross shard edges");
}

#[test]
fn many_shard_counts_match_reference() {
    let reference = reference_transcript(3, 3, 23, 50, None);
    for shards in [1, 4, 7] {
        let spec = ShardSpec {
            shards,
            ..ShardSpec::default()
        };
        let (sharded, _) = sharded_transcript(3, 3, 23, 50, None, &spec);
        assert_equivalent(
            &reference,
            &sharded,
            &format!("3x3 seed 23, {shards} shards"),
        );
    }
}

#[test]
fn faulted_run_matches_reference() {
    let text = common::fault_plan_text();
    let reference = reference_transcript(4, 2, 37, 60, Some(text));
    assert!(
        reference.counters.is_some_and(|c| c.total_dropped() > 0),
        "fault plan must actually drop spikes for the test to mean anything"
    );
    for shards in [2, 4] {
        let spec = ShardSpec {
            shards,
            ..ShardSpec::default()
        };
        let (sharded, _) = sharded_transcript(4, 2, 37, 60, Some(text), &spec);
        assert_equivalent(
            &reference,
            &sharded,
            &format!("faulted 4x2, {shards} shards"),
        );
    }
}

/// The headline claim: real OS processes, spawned from the
/// `tn-shard-worker` binary, byte-identical to the single process.
#[test]
fn os_process_shards_match_reference() {
    let reference = reference_transcript(4, 2, 11, 40, Some(common::fault_plan_text()));
    let spec = ShardSpec {
        shards: 3,
        spawn: SpawnMode::Process {
            worker_bin: env!("CARGO_BIN_EXE_tn-shard-worker").into(),
        },
        ..ShardSpec::default()
    };
    let (sharded, _) = sharded_transcript(4, 2, 11, 40, Some(common::fault_plan_text()), &spec);
    assert_equivalent(&reference, &sharded, "4x2 seed 11, 3 OS processes");
}

/// The sharded expression agrees with the other engines too — one
/// blueprint, four expressions.
#[test]
fn sharded_agrees_with_parallel_and_chip_engines() {
    let ticks = 40;
    let reference = reference_transcript(3, 3, 23, ticks, None);

    let mut par = tn_compass::ParallelSim::new(common::stochastic_net(3, 3, 23), 3);
    let num = par.network().num_cores();
    let par_tr = transcript(&mut par, &mut common::inputs_for(num, ticks), ticks, 20);
    assert_eq!(reference.digests, par_tr.digests, "parallel digests");

    let mut chip = tn_chip::TrueNorthSim::new(common::stochastic_net(3, 3, 23));
    let chip_tr = transcript(&mut chip, &mut common::inputs_for(num, ticks), ticks, 20);
    assert_eq!(reference.digests, chip_tr.digests, "chip digests");
}

/// Checkpoint/restore through the object-safe trait: a restored sharded
/// session replays to the same digest as an undisturbed one.
#[test]
fn checkpoint_restore_is_bit_exact() {
    let ticks = 30u64;
    let net = common::stochastic_net(4, 2, 11);
    let num = net.num_cores();
    let mut sim = ShardedSession::launch(net, &ShardSpec::default()).expect("launch");
    let mut src = common::inputs_for(num, ticks);
    for _ in 0..15 {
        sim.step(&mut src);
    }
    let snap = sim.checkpoint();
    let mid_digest = sim.state_digest();
    for _ in 15..ticks {
        sim.step(&mut src);
    }
    let end_digest = sim.state_digest();
    let end_outputs = sim.outputs().take();

    // Rewind and replay the same remaining inputs.
    sim.restore(&snap);
    assert_eq!(sim.current_tick(), 15);
    assert_eq!(
        sim.state_digest(),
        mid_digest,
        "restore lands on the snapshot"
    );
    let mut src2 = common::inputs_for(num, ticks);
    for _ in 15..ticks {
        sim.step(&mut src2);
    }
    assert_eq!(sim.state_digest(), end_digest, "replay is bit-exact");
    let replay_outputs = sim.outputs().take();
    let tail: Vec<_> = end_outputs.iter().filter(|e| e.tick >= 15).collect();
    let replay_tail: Vec<_> = replay_outputs.iter().filter(|e| e.tick >= 15).collect();
    assert_eq!(tail, replay_tail, "replayed output stream matches");
}
