//! Shard-loss robustness: kill a worker mid-run and prove the healed
//! session preserves spike-for-spike continuity with an undisturbed
//! single-process run — state digests, output transcript, and fault
//! counters all byte-identical.

mod common;

use tn_compass::{KernelSession, ReferenceSim};
use tn_core::fault::FaultPlan;
use tn_shard::{ShardSpec, ShardedSession, SpawnMode};

fn reference_run(ticks: u64) -> (Vec<u64>, Vec<(u64, u32)>, tn_core::FaultCounters) {
    let mut sim = ReferenceSim::new(common::stochastic_net(4, 2, 51));
    sim.attach_faults(&FaultPlan::parse(common::fault_plan_text()).unwrap());
    let num = sim.network().num_cores();
    let mut src = common::inputs_for(num, ticks);
    let mut digests = Vec::new();
    for _ in 0..ticks {
        KernelSession::step(&mut sim, &mut src);
        digests.push(KernelSession::state_digest(&mut sim));
    }
    let outputs = sim
        .outputs()
        .events()
        .iter()
        .map(|e| (e.tick, e.port))
        .collect();
    (digests, outputs, sim.fault_counters().unwrap())
}

/// Kill shard workers at the given ticks and compare the full transcript
/// against the continuous reference run.
fn chaos_run(spec: &ShardSpec, ticks: u64, kills: &[(u64, usize)]) {
    chaos_run_with(spec, ticks, kills, ShardedSession::kill_worker);
}

/// [`chaos_run`] with a pluggable failure action (kill vs. wedge).
fn chaos_run_with(
    spec: &ShardSpec,
    ticks: u64,
    kills: &[(u64, usize)],
    inject: fn(&mut ShardedSession, usize),
) {
    let (ref_digests, ref_outputs, ref_counters) = reference_run(ticks);
    let net = common::stochastic_net(4, 2, 51);
    let num = net.num_cores();
    let mut sim = ShardedSession::launch(net, spec).expect("launch");
    sim.attach_faults(&FaultPlan::parse(common::fault_plan_text()).unwrap());
    let mut src = common::inputs_for(num, ticks);
    let mut digests = Vec::new();
    for t in 0..ticks {
        if let Some(&(_, k)) = kills.iter().find(|&&(kt, _)| kt == t) {
            inject(&mut sim, k);
        }
        sim.step(&mut src);
        digests.push(sim.state_digest());
    }
    assert!(
        sim.heals() >= kills.len() as u64,
        "every kill must be healed (heals = {})",
        sim.heals()
    );
    assert_eq!(ref_digests, digests, "per-tick digests diverged");
    let outputs: Vec<_> = sim
        .outputs()
        .events()
        .iter()
        .map(|e| (e.tick, e.port))
        .collect();
    assert_eq!(ref_outputs, outputs, "output transcript diverged");
    assert_eq!(
        ref_counters,
        sim.fault_counters().unwrap(),
        "fault counters diverged"
    );
}

/// In-process shards: kill one worker after the first heal snapshot and
/// another before any snapshot covers it, so both the restore path and
/// the replay-from-zero path run.
#[test]
fn killed_in_process_shard_preserves_continuity() {
    let spec = ShardSpec {
        shards: 2,
        snapshot_every: 8,
        spawn: SpawnMode::InProcess,
        ..ShardSpec::default()
    };
    chaos_run(&spec, 40, &[(5, 1), (19, 0)]);
}

/// The same chaos against real OS worker processes.
#[test]
fn killed_process_shard_preserves_continuity() {
    let spec = ShardSpec {
        shards: 2,
        snapshot_every: 8,
        spawn: SpawnMode::Process {
            worker_bin: env!("CARGO_BIN_EXE_tn-shard-worker").into(),
        },
        ..ShardSpec::default()
    };
    chaos_run(&spec, 32, &[(11, 0)]);
}

/// A *wedged* worker — SIGSTOPped, socket alive, zero progress — is the
/// failure a kill test cannot catch: nothing errors, the coordinator
/// just never hears back. The mailbox stall deadline must declare it
/// down and heal it through the same snapshot + replay path, with the
/// transcript still spike-for-spike identical to the reference.
#[test]
fn wedged_process_shard_is_detected_and_healed() {
    let spec = ShardSpec {
        shards: 2,
        snapshot_every: 8,
        spawn: SpawnMode::Process {
            worker_bin: env!("CARGO_BIN_EXE_tn-shard-worker").into(),
        },
        reply_timeout: Some(std::time::Duration::from_millis(500)),
    };
    chaos_run_with(&spec, 32, &[(13, 1)], ShardedSession::wedge_worker);
}

/// Back-to-back kills of the same shard, plus a kill immediately after
/// a digest observation (replay logs then contain Flush frames).
#[test]
fn repeated_kills_of_one_shard_heal_cleanly() {
    let spec = ShardSpec {
        shards: 2,
        snapshot_every: 8,
        spawn: SpawnMode::InProcess,
        ..ShardSpec::default()
    };
    chaos_run(&spec, 40, &[(9, 1), (10, 1), (25, 1)]);
}
