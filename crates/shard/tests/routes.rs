//! Seeded property test: the compiled per-shard boundary routing tables
//! are a bijection with the single-process crossbar fanout — every
//! (src neuron → remote axon) edge appears in exactly one shard's table,
//! exactly once, with the same target and delay; and no local edge ever
//! leaks into a table.

mod common;

use std::collections::BTreeSet;
use tn_core::{Dest, Network};
use tn_shard::{boundary_routes, ShardPlan};

type Edge = (u32, u16, u32, u8, u8); // (src_core, src_neuron, dst_core, dst_axon, delay)

/// All cross-shard crossbar edges of `net` under `plan`, read straight
/// from the network config — the ground truth the tables must equal.
fn crossbar_boundary_edges(net: &Network, plan: &ShardPlan) -> BTreeSet<Edge> {
    let mut edges = BTreeSet::new();
    for (c, core) in net.cores().iter().enumerate() {
        for (j, n) in core.config().neurons.iter().enumerate() {
            if let Dest::Axon(tgt) = n.dest {
                let dst = tgt.core.index();
                if dst < plan.num_cores && plan.owner(dst) != plan.owner(c) {
                    let inserted =
                        edges.insert((c as u32, j as u16, tgt.core.0, tgt.axon, tgt.delay));
                    assert!(inserted, "crossbar fanout has no duplicate edges");
                }
            }
        }
    }
    edges
}

#[test]
fn routing_tables_are_bijective_with_crossbar_fanout() {
    for (w, h, seed) in [(4u16, 2u16, 11u64), (3, 3, 23), (5, 2, 37)] {
        let net = common::stochastic_net(w, h, seed);
        for shards in [1usize, 2, 4, 7] {
            let plan = ShardPlan::compute(&net, shards);
            let truth = crossbar_boundary_edges(&net, &plan);

            let mut seen: BTreeSet<Edge> = BTreeSet::new();
            for k in 0..plan.shards() {
                for r in boundary_routes(&net, &plan, k) {
                    // Table-internal consistency.
                    assert_eq!(
                        plan.owner(r.src_core as usize),
                        k,
                        "route listed in the wrong shard's table"
                    );
                    assert_eq!(
                        plan.owner(r.dst_core as usize) as u16,
                        r.dst_shard,
                        "dst_shard disagrees with the partition"
                    );
                    assert_ne!(r.dst_shard as usize, k, "local edge leaked into table");
                    // Injectivity across all shards' tables.
                    let edge = (r.src_core, r.src_neuron, r.dst_core, r.dst_axon, r.delay);
                    assert!(
                        seen.insert(edge),
                        "edge {edge:?} appears in two tables (or twice in one)"
                    );
                }
            }
            // Surjectivity: nothing in the crossbar fanout is missing.
            assert_eq!(
                truth, seen,
                "{w}x{h} seed {seed}, {shards} shards: tables ≠ fanout"
            );
            if plan.shards() == 1 {
                assert!(seen.is_empty(), "single shard has no boundary");
            }
        }
    }
}
