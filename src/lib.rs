//! # truenorth-repro — umbrella crate
//!
//! Rust reproduction of *"Real-Time Scalable Cortical Computing at 46
//! Giga-Synaptic OPS/Watt..."* (SC'14, the TrueNorth paper). This crate
//! re-exports the whole stack; see the individual crates for the deep
//! documentation:
//!
//! * [`core`] (`tn-core`) — the neurosynaptic kernel blueprint,
//! * [`compass`] (`tn-compass`) — the parallel software expression,
//! * [`chip`] (`tn-chip`) — the silicon expression (mesh NoC + energy +
//!   timing models),
//! * [`corelet`] (`tn-corelet`) — the corelet programming environment,
//! * [`apps`] (`tn-apps`) — the five vision applications and the 88
//!   characterization networks,
//! * [`hostmodel`] (`tn-hostmodel`) — Compass-on-BG/Q and -x86 models.
//!
//! Run `cargo run --release -p tn-bench --bin headline` for the paper's
//! headline numbers, or see `examples/quickstart.rs` to get started.

pub use tn_apps as apps;
pub use tn_chip as chip;
pub use tn_compass as compass;
pub use tn_core as core;
pub use tn_corelet as corelet;
pub use tn_hostmodel as hostmodel;
