//! Characterization example: one cell of the paper's 88-network grid,
//! simulated on the chip model, with the Fig. 5 quantities printed.
//!
//! ```sh
//! cargo run --release --example recurrent_characterization \
//!     [rate_hz] [synapses] [--no-fastpath|--no-quiescence|--no-popcount|--no-soa]
//! ```
//!
//! The `--no-*` flags ablate the kernel fast paths (tn_core::fastpath)
//! so their host-speed contribution at this operating point can be read
//! directly off the wall-clock line; the simulated chip quantities are
//! bit-identical either way.

use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_chip::TrueNorthSim;
use tn_core::network::NullSource;
use tn_core::FastPathConfig;

fn main() {
    let mut rate: f64 = 20.0;
    let mut syn: u32 = 128;
    let mut positional = 0;
    let mut fp = FastPathConfig::default();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-fastpath" => fp = FastPathConfig::scalar(),
            "--no-quiescence" => fp.quiescence = false,
            "--no-popcount" => fp.popcount = false,
            "--no-soa" => fp.soa = false,
            v => {
                match positional {
                    0 => rate = v.parse().unwrap_or(rate),
                    _ => syn = v.parse().unwrap_or(syn),
                }
                positional += 1;
            }
        }
    }

    // A quarter-chip (32×32 cores) so the example runs fast; pass the
    // full-chip path through `tn-bench --bin fig5` instead.
    let p = RecurrentParams {
        rate_hz: rate,
        synapses: syn,
        cores_x: 32,
        cores_y: 32,
        seed: 0xCAFE,
    };
    println!(
        "building a {}x{}-core recurrent network at ({} Hz, {} synapses)...",
        p.cores_x, p.cores_y, rate, syn
    );
    let net = build_recurrent(&p);
    let neurons = net.num_neurons() as u64;
    let mut sim = TrueNorthSim::new(net);
    sim.network_mut().set_fastpath(fp);
    sim.run(16, &mut NullSource); // warm-up: fill the delay pipelines
    let host = std::time::Instant::now();
    sim.run(64, &mut NullSource);
    let ms_per_tick = host.elapsed().as_secs_f64() * 1e3 / 64.0;

    let report = sim.report();
    println!("\nmeasured over 80 ticks (16 warm-up):");
    println!(
        "  host speed       : {:>8.2} ms/tick (fastpath: quiescence={} popcount={} soa={})",
        ms_per_tick, fp.quiescence, fp.popcount, fp.soa
    );
    println!(
        "  mean rate        : {:>8.1} Hz (target {:.1})",
        report.mean_rate_hz,
        p.quantized_rate_hz()
    );
    println!(
        "  syn per spike    : {:>8.1} (target {})",
        report.syn_per_spike, syn
    );
    println!("  GSOPS (real-time): {:>8.3}", report.gsops_realtime);
    println!(
        "  power (real-time): {:>8.2} mW",
        report.power_realtime_w * 1e3
    );
    println!(
        "  GSOPS/W          : {:>8.1}",
        report.gsops_per_watt_realtime
    );
    println!(
        "  GSOPS/W (max spd): {:>8.1}",
        report.gsops_per_watt_max_speed
    );
    println!("  fmax             : {:>8.2} kHz", report.fmax_khz);
    println!(
        "  mesh hops/spike  : {:>8.1} (paper: 21.66 per axis → ~43)",
        sim.stats().mean_hops()
    );
    let _ = neurons;
    println!(
        "\npaper anchor at (20 Hz, 128 syn) full chip: 65 mW, 46 GSOPS/W real-time, \
         81 GSOPS/W at ~5x."
    );
}
