//! Pattern completion with the spiking restricted Boltzmann machine.
//!
//! Trains a tiny RBM off-line (contrastive divergence on the host, as the
//! paper's ecosystem trains networks off-line), quantizes it to the
//! four-level axon-type discipline, deploys it on two neurosynaptic
//! cores, corrupts a pattern, and lets the stochastic hardware neurons
//! fill in the missing half.
//!
//! ```sh
//! cargo run --release --example pattern_completion
//! ```

use tn_apps::rbm::{deploy, RbmModel};
use tn_compass::ReferenceSim;
use tn_core::{ScheduledSource, SplitMix64};

fn render(v: &[f64], width: usize) -> String {
    let mut s = String::new();
    for (i, &x) in v.iter().enumerate() {
        s.push(if x > 0.5 {
            '#'
        } else if x > 0.2 {
            '+'
        } else {
            '.'
        });
        if (i + 1) % width == 0 {
            s.push('\n');
        }
    }
    s
}

fn main() {
    // Two 4×4 patterns: vertical bars (left pair) and (right pair).
    let a: Vec<f64> = (0..16).map(|i| f64::from(i % 4 < 2)).collect();
    let b: Vec<f64> = (0..16).map(|i| f64::from(i % 4 >= 2)).collect();

    println!("training a 16v × 12h RBM on two patterns (CD-1, host side)...");
    let mut model = RbmModel::new(16, 12, 42);
    let mut rng = SplitMix64::new(7);
    for _ in 0..400 {
        model.train_epoch(&[a.clone(), b.clone()], 0.1, &mut rng);
    }

    // Corrupt pattern A: erase the bottom half.
    let mut corrupted = a.clone();
    for v in corrupted.iter_mut().skip(8) {
        *v = 0.0;
    }
    println!("\npattern A:\n{}", render(&a, 4));
    println!(
        "corrupted input (bottom half erased):\n{}",
        render(&corrupted, 4)
    );

    // Deploy on the spiking substrate and present the corrupted pattern.
    let rbm = deploy(&model, 0.5, 0x1F, 3);
    let window = 128u64;
    let mut src = ScheduledSource::new();
    for t in 0..window {
        for (i, &on) in corrupted.iter().enumerate() {
            if on > 0.5 {
                for pin in &rbm.visible_pins[i] {
                    src.push(t, pin.core, pin.axon);
                }
            }
        }
    }
    let mut sim = ReferenceSim::new(rbm.net);
    sim.run(window + 8, &mut src);
    let counts = sim.outputs().window_counts(16, 0, window + 8);
    let recon: Vec<f64> = counts.iter().map(|&c| c as f64 / window as f64).collect();
    // Normalize to the strongest unit for display.
    let peak = recon.iter().cloned().fold(0.05, f64::max);
    let shown: Vec<f64> = recon.iter().map(|&r| r / peak).collect();

    println!(
        "spiking reconstruction (normalized rates):\n{}",
        render(&shown, 4)
    );
    let on_mean: f64 = (8..16).filter(|i| i % 4 < 2).map(|i| recon[i]).sum::<f64>() / 4.0;
    let off_mean: f64 = (8..16)
        .filter(|i| i % 4 >= 2)
        .map(|i| recon[i])
        .sum::<f64>()
        / 4.0;
    println!(
        "erased-half rates: true-on pixels {:.3}, true-off pixels {:.3} → {}",
        on_mean,
        off_mean,
        if on_mean > off_mean {
            "completed correctly"
        } else {
            "completion failed"
        }
    );
}
