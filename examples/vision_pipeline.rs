//! Vision pipeline example: build the saliency + saccade application with
//! corelets, stream synthetic video through it on the chip model, and
//! print where the system chooses to look.
//!
//! ```sh
//! cargo run --release --example vision_pipeline
//! ```

use tn_apps::saccade::{build_saccade, SaccadeParams};
use tn_apps::transduce::VideoSource;
use tn_apps::video::Scene;
use tn_chip::TrueNorthSim;

fn main() {
    // Small configuration so the example runs in seconds.
    let params = SaccadeParams::small();
    let app = build_saccade(&params);
    println!(
        "saccade system: {} cores, {} used neurons, {}x{} saccade regions",
        app.profile.cores, app.profile.neurons, app.regions.0, app.regions.1
    );

    // Two moving objects in a synthetic scene.
    let scene = Scene::new(
        params.saliency.width,
        params.saliency.height,
        2,
        /* seed */ 42,
    );
    for (i, obj) in scene.objects.iter().enumerate() {
        let (x, y, w, h) = obj.bbox();
        println!("  object {i}: {:?} at ({x},{y}) {w}x{h}", obj.class);
    }

    let mut src = VideoSource::new(scene, app.pixel_map.clone(), 1.0);
    let mut sim = TrueNorthSim::new(app.net);
    let ticks = 600;
    sim.run(ticks, &mut src);

    println!("\nsaccade activity per region over {ticks} ticks:");
    for ry in 0..app.regions.1 {
        let mut row = String::from("  ");
        for rx in 0..app.regions.0 {
            let n = sim.outputs().port_ticks(app.region_ports[&(rx, ry)]).len();
            row.push_str(&format!("{n:>6}"));
        }
        println!("{row}");
    }

    let report = sim.report();
    println!(
        "\nchip model while watching: {:.1} mW at real time ({:.1} µJ/tick), \
         mean firing rate {:.1} Hz over used neurons",
        report.power_realtime_w * 1e3,
        report.energy_per_tick_j * 1e6,
        sim.stats().mean_rate_hz(app.profile.neurons.max(1) as u64),
    );
}
