//! Quickstart: program two neurosynaptic cores by hand, run them on both
//! expressions of the kernel, and verify they agree spike-for-spike.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tn_chip::TrueNorthSim;
use tn_compass::ReferenceSim;
use tn_core::{
    CoreConfig, CoreId, Crossbar, Dest, NetworkBuilder, NeuronConfig, ScheduledSource, SpikeTarget,
};

fn build_network() -> tn_core::Network {
    // A 2×1-core network. Core 0: 256 integrate-and-fire neurons wired
    // one-to-one from its axons, each forwarding to the same axon index
    // on core 1 with a 3-tick axonal delay. Core 1: every fourth neuron
    // is an output; the rest are silent.
    let mut b = NetworkBuilder::new(2, 1, /* seed */ 7);

    let mut relay = CoreConfig::new();
    *relay.crossbar = Crossbar::from_fn(|axon, neuron| axon == neuron);
    for j in 0..256 {
        relay.neurons[j] = NeuronConfig::lif(/* weight */ 1, /* threshold */ 1);
        relay.neurons[j].dest =
            Dest::Axon(SpikeTarget::new(CoreId(1), j as u8, /* delay */ 3));
    }
    let c0 = b.add_core(relay);

    let mut sink = CoreConfig::new();
    *sink.crossbar = Crossbar::from_fn(|axon, neuron| axon == neuron);
    for j in 0..256 {
        sink.neurons[j] = NeuronConfig::lif(1, 1);
        if j % 4 == 0 {
            sink.neurons[j].dest = Dest::Output(j as u32);
        }
    }
    b.add_core(sink);

    println!(
        "built a {}-core network with {} programmable synapses each",
        b.num_cores(),
        256 * 256
    );
    let _ = c0;
    b.build()
}

fn inputs() -> ScheduledSource {
    let mut src = ScheduledSource::new();
    // Poke axons 0, 4, 5 of core 0 at a few ticks.
    for (t, axon) in [(0u64, 0u8), (0, 4), (2, 5), (10, 4)] {
        src.push(t, CoreId(0), axon);
    }
    src
}

fn main() {
    // --- Software expression: the Compass reference simulator. ---
    let mut compass = ReferenceSim::new(build_network());
    compass.run(20, &mut inputs());
    println!("\nCompass output spikes (tick, port):");
    for ev in compass.outputs().events() {
        println!("  t={:<3} port={}", ev.tick, ev.port);
    }

    // --- Silicon expression: the chip model with mesh routing, energy
    //     and timing accounting. ---
    let mut chip = TrueNorthSim::new(build_network());
    chip.run(20, &mut inputs());
    println!("\nTrueNorth-model output spikes (tick, port):");
    for ev in chip.outputs().events() {
        println!("  t={:<3} port={}", ev.tick, ev.port);
    }

    // --- The paper's co-design property: 1:1 equivalence. ---
    assert_eq!(
        compass.network().state_digest(),
        chip.network().state_digest(),
        "the two expressions must agree bit-for-bit"
    );
    assert_eq!(compass.outputs().digest(), chip.outputs().digest());
    println!("\n1:1 equivalence: OK (state digests match)");

    let report = chip.report();
    println!(
        "\nchip model: {:.3} mW at real time, fmax {:.2} kHz, {} mesh hops total",
        report.power_realtime_w * 1e3,
        report.fmax_khz,
        chip.stats().total_hops,
    );
}
