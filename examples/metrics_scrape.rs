//! Metrics-scrape example: serve a recurrent network, drive it over the
//! wire, and scrape the session's tn-obs registry as Prometheus-style
//! text exposition — the tn-serve observability round trip.
//!
//! A session is its own scrape target: `GetMetrics` returns the kernel
//! totals (reconciled against the engine's legacy counters), the
//! fast-path tier tallies, the deadline-miss/jitter histograms from the
//! tick scheduler, engine-specific series (NoC traffic and energy for
//! chip sessions), and the flight recorder's last-N-ticks dump as
//! comment lines. This example validates the exposition with the same
//! schema checker CI uses and prints it.
//!
//! ```sh
//! cargo run --release --example metrics_scrape
//! ```

use std::time::Duration;
use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_core::modelfile;
use tn_serve::{Client, Engine, ModelSource, Pace, Response, Server, ServerConfig};

const TICKS: u64 = 50;

fn main() {
    let p = RecurrentParams::small(20.0, 32, 0x0B5);
    let model_text = modelfile::save(&build_recurrent(&p));

    // A real-time session at a fast tick, so the jitter and deadline
    // histograms have real observations without the example taking long.
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        tick_period: Duration::from_micros(500),
        ..Default::default()
    })
    .expect("bind loopback server");
    let mut client = Client::connect(server.addr()).expect("connect");
    match client
        .create_session(
            "scraped",
            Engine::Chip,
            Pace::RealTime,
            ModelSource::Model(model_text),
        )
        .expect("create session")
    {
        Response::Created { session } => println!("serving session '{session}'"),
        other => panic!("create failed: {other:?}"),
    }
    client.run_for("scraped", TICKS).expect("run");

    let text = match client.metrics("scraped").expect("scrape") {
        Response::MetricsData { text } => text,
        other => panic!("scrape failed: {other:?}"),
    };
    client.close_session("scraped").expect("close");
    server.shutdown();

    // Validate with the exposition schema checker, then assert the
    // series the serving layer promises are actually present.
    let summary = tn_obs::validate_exposition(&text).expect("exposition must validate");
    for needle in [
        "tn_session_ticks_total",
        "tn_kernel_ticks_total",
        "tn_session_deadline_miss_total",
        "tn_session_tick_jitter_ns_bucket",
        "tn_fastpath_tier_ticks_total",
        "tn_chip_energy_joules",
        "# flight-recorder",
    ] {
        assert!(text.contains(needle), "scrape is missing {needle}");
    }
    print!("{text}");
    println!(
        "\nscrape OK: {} families, {} samples, {} ticks",
        summary.families, summary.samples, TICKS
    );
}
