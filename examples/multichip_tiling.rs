//! Multi-chip tiling example: a board of TrueNorth chips (paper §VII-B)
//! running one recurrent network that spans chips, with merge–split
//! boundary traffic and defect tolerance — and then the same tiling
//! story *executed* through `tn-shard`: the board partitioned across
//! worker shards, run for real, and proven digest-identical to the
//! single-process run.
//!
//! ```sh
//! cargo run --release --example multichip_tiling
//! ```
//!
//! The measured sharding section is appended (idempotently) to
//! `results/scaleout.txt` when run from the repo root.

use std::time::Instant;
use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_chip::TrueNorthSim;
use tn_compass::{KernelSession, ReferenceSim};
use tn_core::network::NullSource;
use tn_core::CoreCoord;
use tn_shard::{ShardSpec, ShardedSession, SpawnMode};

fn main() {
    chip_board_demo();
    let lines = sharded_scaleout_demo();
    append_results(&lines);
}

/// Paper §VII-B flavor: one network spanning a 2-chip board on the
/// cycle-accurate chip expression, with injected defects routed around.
fn chip_board_demo() {
    let p = RecurrentParams {
        rate_hz: 20.0,
        synapses: 64,
        cores_x: 128, // spans 2 chips in x
        cores_y: 64,
        seed: 0xB0A2D,
    };
    println!(
        "building a {}x{}-core network spanning {} chips...",
        p.cores_x,
        p.cores_y,
        (p.cores_x as usize / 64).max(1) * (p.cores_y as usize / 64).max(1)
    );
    let net = build_recurrent(&p);
    assert_eq!(net.num_chips(), 2);
    let mut sim = TrueNorthSim::new(net);

    // Fault tolerance: disable a core mid-array; the mesh routes around
    // it (paper §III-C: "if a core fails, we disable it and route spike
    // events around it").
    sim.inject_defect(CoreCoord::new(70, 30));
    sim.inject_defect(CoreCoord::new(71, 30));

    sim.run(50, &mut NullSource);

    let stats = *sim.stats();
    println!("\nafter 50 ticks:");
    println!("  spikes routed        : {}", stats.totals.spikes_out);
    println!("  total mesh hops      : {}", stats.total_hops);
    println!(
        "  chip-boundary crossings (merge-split traversals): {}",
        stats.boundary_crossings
    );
    println!(
        "  fraction of spikes crossing chips: {:.1}% (uniform targets over 2 chips → ~50%)",
        100.0 * stats.boundary_crossings as f64 / stats.totals.spikes_out.max(1) as f64
    );

    let e = sim.energy_realtime();
    println!("\nenergy breakdown over the run (real-time operation):");
    println!("  leakage          : {:>9.2} µJ", e.leak_j * 1e6);
    println!("  neuron scan      : {:>9.2} µJ", e.neuron_j * 1e6);
    println!("  crossbar reads   : {:>9.2} µJ", e.row_j * 1e6);
    println!("  synaptic ops     : {:>9.2} µJ", e.sop_j * 1e6);
    println!("  spike injection  : {:>9.2} µJ", e.spike_j * 1e6);
    println!("  mesh hops        : {:>9.2} µJ", e.hop_j * 1e6);
    println!("  merge-split + pads: {:>8.2} µJ", e.xchip_j * 1e6);
    println!("  total            : {:>9.2} µJ", e.total_j() * 1e6);

    let report = sim.report();
    println!(
        "\n2-chip board: {:.1} mW at real time — the 16-chip 4×4 board of paper §VII-C \
         measured 7.2 W total with support logic.",
        report.power_realtime_w * 1e3
    );
}

fn run_sharded(p: &RecurrentParams, shards: usize, ticks: u64) -> (u64, u64, u64, f64) {
    let spec = ShardSpec {
        shards,
        spawn: SpawnMode::InProcess,
        ..ShardSpec::default()
    };
    let mut sim = ShardedSession::launch(build_recurrent(p), &spec).expect("launch shards");
    let start = Instant::now();
    for _ in 0..ticks {
        sim.step(&mut NullSource);
    }
    let secs = start.elapsed().as_secs_f64();
    let digest = sim.state_digest();
    let spikes = sim.stats().totals.spikes_out;
    (digest, spikes, sim.boundary_spikes(), secs)
}

/// The tiling story executed: the same board tile partitioned across
/// `tn-shard` workers, digest-identical to the single-process run.
fn sharded_scaleout_demo() -> Vec<String> {
    const TICKS: u64 = 48;
    let p = RecurrentParams {
        rate_hz: 20.0,
        synapses: 64,
        cores_x: 16,
        cores_y: 8,
        seed: 0x5CA1E,
    };
    let cores = p.cores_x as usize * p.cores_y as usize;
    println!(
        "\n== executed sharding scale-out: {}x{} cores, {} ticks ==",
        p.cores_x, p.cores_y, TICKS
    );

    let mut reference = ReferenceSim::new(build_recurrent(&p));
    for _ in 0..TICKS {
        KernelSession::step(&mut reference, &mut NullSource);
    }
    let ref_digest = KernelSession::state_digest(&mut reference);

    let (d1, spikes1, b1, t1) = run_sharded(&p, 1, TICKS);
    let (d4, spikes4, b4, t4) = run_sharded(&p, 4, TICKS);

    assert_eq!(d1, ref_digest, "1-shard run diverged from reference");
    assert_eq!(d4, ref_digest, "4-shard run diverged from reference");
    assert_eq!(spikes1, spikes4, "spike accounting diverged");
    assert_eq!(b1, 0, "a single shard has no boundary");

    let frac = 100.0 * b4 as f64 / spikes4.max(1) as f64;
    let lines = vec![
        format!(
            "{cores} cores ({}x{}), {TICKS} ticks, {spikes4} spikes routed",
            p.cores_x, p.cores_y
        ),
        format!("digest 1-shard  : {d1:#018x}  ({t1:.2}s wall)"),
        format!("digest 4-shard  : {d4:#018x}  ({t4:.2}s wall)"),
        format!("digest reference: {ref_digest:#018x}  -> all three match, bit-exact"),
        format!(
            "4-shard boundary traffic: {b4} spikes over TCP \
             ({:.0} per tick, {frac:.1}% of routed spikes)",
            b4 as f64 / TICKS as f64
        ),
    ];
    for l in &lines {
        println!("  {l}");
    }
    lines
}

const MARKER: &str = "== Executed sharding scale-out (examples/multichip_tiling.rs) ==";

/// Append the measured section to `results/scaleout.txt`, replacing any
/// previous run's section so reruns stay idempotent.
fn append_results(lines: &[String]) {
    let path = std::path::Path::new("results/scaleout.txt");
    let Ok(existing) = std::fs::read_to_string(path) else {
        println!("\n(results/scaleout.txt not found — run from the repo root to record)");
        return;
    };
    let kept = match existing.find(MARKER) {
        Some(at) => existing[..at].trim_end().to_string(),
        None => existing.trim_end().to_string(),
    };
    let mut out = kept;
    out.push_str("\n\n");
    out.push_str(MARKER);
    out.push('\n');
    for l in lines {
        out.push_str(l);
        out.push('\n');
    }
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nrecorded the measured section in results/scaleout.txt"),
        Err(e) => println!("\ncould not write results/scaleout.txt: {e}"),
    }
}
