//! Multi-chip tiling example: a 4×1 board of TrueNorth chips (paper
//! §VII-B) running one recurrent network that spans all four chips, with
//! merge–split boundary traffic and defect tolerance demonstrated.
//!
//! ```sh
//! cargo run --release --example multichip_tiling
//! ```

use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_chip::TrueNorthSim;
use tn_core::network::NullSource;
use tn_core::CoreCoord;

fn main() {
    // A 4×1 chip board = 256×64 cores. Scale the per-chip grid down 4×
    // in each dimension (64×16 cores per chip → 256×16 wait, keep it
    // simple: a 128×32 grid spans 2×1 chips at full width; use 256×64
    // for the real 4-chip board if you have a minute to spare).
    let p = RecurrentParams {
        rate_hz: 20.0,
        synapses: 64,
        cores_x: 128, // spans 2 chips in x
        cores_y: 64,
        seed: 0xB0A2D,
    };
    println!(
        "building a {}x{}-core network spanning {} chips...",
        p.cores_x,
        p.cores_y,
        (p.cores_x as usize / 64).max(1) * (p.cores_y as usize / 64).max(1)
    );
    let net = build_recurrent(&p);
    assert_eq!(net.num_chips(), 2);
    let mut sim = TrueNorthSim::new(net);

    // Fault tolerance: disable a core mid-array; the mesh routes around
    // it (paper §III-C: "if a core fails, we disable it and route spike
    // events around it").
    sim.inject_defect(CoreCoord::new(70, 30));
    sim.inject_defect(CoreCoord::new(71, 30));

    sim.run(50, &mut NullSource);

    let stats = *sim.stats();
    println!("\nafter 50 ticks:");
    println!("  spikes routed        : {}", stats.totals.spikes_out);
    println!("  total mesh hops      : {}", stats.total_hops);
    println!(
        "  chip-boundary crossings (merge-split traversals): {}",
        stats.boundary_crossings
    );
    println!(
        "  fraction of spikes crossing chips: {:.1}% (uniform targets over 2 chips → ~50%)",
        100.0 * stats.boundary_crossings as f64 / stats.totals.spikes_out.max(1) as f64
    );

    let e = sim.energy_realtime();
    println!("\nenergy breakdown over the run (real-time operation):");
    println!("  leakage          : {:>9.2} µJ", e.leak_j * 1e6);
    println!("  neuron scan      : {:>9.2} µJ", e.neuron_j * 1e6);
    println!("  crossbar reads   : {:>9.2} µJ", e.row_j * 1e6);
    println!("  synaptic ops     : {:>9.2} µJ", e.sop_j * 1e6);
    println!("  spike injection  : {:>9.2} µJ", e.spike_j * 1e6);
    println!("  mesh hops        : {:>9.2} µJ", e.hop_j * 1e6);
    println!("  merge-split + pads: {:>8.2} µJ", e.xchip_j * 1e6);
    println!("  total            : {:>9.2} µJ", e.total_j() * 1e6);

    let report = sim.report();
    println!(
        "\n2-chip board: {:.1} mW at real time — the 16-chip 4×4 board of paper §VII-C \
         measured 7.2 W total with support logic.",
        report.power_realtime_w * 1e3
    );
}
