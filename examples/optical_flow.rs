//! Optical-flow example: Reichardt-correlator direction selectivity.
//!
//! Moves an object across the synthetic scene in each of the four
//! directions at the detector's tuned velocity and prints the opponent
//! direction-channel responses.
//!
//! ```sh
//! cargo run --release --example optical_flow
//! ```

use tn_apps::flow::{build_flow, FlowDirection, FlowParams};
use tn_apps::transduce::VideoSource;
use tn_apps::video::Scene;
use tn_compass::ReferenceSim;

fn main() {
    let params = FlowParams::small();
    println!(
        "flow detector tuned to {} px per {} ticks ({} px/frame at 12 ticks/frame)\n",
        params.stride,
        params.corr_delay,
        params.stride as f64 * 12.0 / params.corr_delay as f64,
    );

    println!(
        "{:>10} {:>7} {:>7} {:>7} {:>7}   verdict",
        "motion", "R", "L", "D", "U"
    );
    for (name, vx, vy, ticks) in [
        ("rightward", 32i32, 0i32, 190u64),
        ("leftward", -32, 0, 190),
        ("downward", 0, 32, 90),
        ("upward", 0, -32, 90),
    ] {
        let app = build_flow(&params);
        let mut scene = Scene::new(params.width, params.height, 1, 5);
        scene.objects[0].x16 = if vx < 0 { 38 << 4 } else { 4 << 4 };
        scene.objects[0].y16 = if vy < 0 { 16 << 4 } else { 2 << 4 };
        scene.objects[0].vx16 = vx;
        scene.objects[0].vy16 = vy;
        let ports = app.direction_ports;
        let mut src = VideoSource::new(scene, app.pixel_map.clone(), 1.0).with_ticks_per_frame(12);
        let mut sim = ReferenceSim::new(app.net);
        sim.run(ticks, &mut src);
        let counts: Vec<usize> = ports
            .iter()
            .map(|&p| sim.outputs().port_ticks(p).len())
            .collect();
        let best = (0..4).max_by_key(|&i| counts[i]).unwrap();
        println!(
            "{:>10} {:>7} {:>7} {:>7} {:>7}   {:?}",
            name,
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            FlowDirection::ALL[best]
        );
    }
    println!("\n(opponent channels: the tuned direction should dominate each row)");
}
