//! Fault sweep: the paper's §III-C resilience claim, quantified.
//!
//! Kills an increasing fraction of an 8×8-core recurrent board through
//! seeded [`tn_core::FaultPlan`]s and measures how much activity
//! survives. "Local core failures do not disrupt global usability"
//! means degradation should track fault density roughly proportionally
//! — 5% dead cores cost on the order of 5% of spikes, never a collapse.
//!
//! ```sh
//! cargo run --release --example fault_sweep
//! ```
//!
//! Exits nonzero if degradation is ever disproportionate, so CI can run
//! this as a regression gate.

use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_chip::TrueNorthSim;
use tn_core::network::NullSource;
use tn_core::FaultPlan;

const TICKS: u64 = 120;

fn board() -> tn_core::Network {
    build_recurrent(&RecurrentParams {
        rate_hz: 100.0,
        synapses: 32,
        cores_x: 8,
        cores_y: 8,
        seed: 0xDEF,
    })
}

/// A plan that kills `n` cores at tick 10, scattered deterministically.
fn kill_plan(n: usize) -> FaultPlan {
    let mut text = String::from("tnfault 1\nseed 77\nhorizon 120\n");
    // Stride through the 64 cores coprime to 64 so the kills scatter.
    let mut idx = 0usize;
    for _ in 0..n {
        idx = (idx + 37) % 64;
        text.push_str(&format!("at 10 core {} {} dead\n", idx % 8, idx / 8));
    }
    FaultPlan::parse(&text).expect("generated plan parses")
}

fn main() {
    let mut healthy_sim = TrueNorthSim::new(board());
    healthy_sim.run(TICKS, &mut NullSource);
    let healthy = healthy_sim.stats().totals.spikes_out as f64;

    println!("{TICKS}-tick runs on an 8x8-core recurrent board:\n");
    println!("  dead cores   density   spikes kept   drops counted");

    let mut ok = true;
    for n in [0usize, 1, 3, 6, 13, 26] {
        let density = n as f64 / 64.0;
        let mut sim = TrueNorthSim::new(board());
        sim.attach_faults(&kill_plan(n));
        sim.run(TICKS, &mut NullSource);
        let kept = sim.stats().totals.spikes_out as f64 / healthy;
        let report = sim.report();
        println!(
            "  {n:>10}   {:>6.1}%   {:>10.1}%   {:>13}",
            density * 100.0,
            kept * 100.0,
            report.faults.total_dropped(),
        );
        // Proportional degradation: losing a fraction f of the cores
        // must keep at least (1 - 2f) of the activity (factor 2 allows
        // for the recurrent fan-in a dead core silences downstream),
        // and must actually cost something once cores die.
        let floor = (1.0 - 2.0 * density).max(0.0);
        if kept < floor {
            println!("    ^ disproportionate: kept {kept:.3}, floor {floor:.3}");
            ok = false;
        }
        if kept > 1.0 {
            println!("    ^ dead cores cannot add activity");
            ok = false;
        }
    }

    if !ok {
        println!("\nFAIL: degradation was not graceful");
        std::process::exit(1);
    }
    println!("\nok: degradation tracked fault density (paper \u{a7}III-C)");
}
