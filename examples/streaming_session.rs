//! Streaming-session example: drive a recurrent characterization
//! network through the tn-serve wire protocol and verify, tick for
//! tick, that the served session reproduces a local batch run exactly.
//!
//! The paper's platform is a real-time service — hosts stream spikes
//! into a free-running board — and its equivalence claim is that every
//! expression of the kernel produces the same spikes from the same
//! inputs. This example checks that the *serving layer* preserves that
//! claim: an in-process TCP server hosts a chip-engine session, a
//! client subscribes and runs it over the wire, and the per-tick spike
//! counts and final state digest must match `TrueNorthSim::run` on the
//! same network.
//!
//! ```sh
//! cargo run --release --example streaming_session
//! ```

use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_chip::TrueNorthSim;
use tn_core::{modelfile, network::NullSource};
use tn_serve::{Client, Engine, ModelSource, Pace, Response, Server, ServerConfig};

const TICKS: u64 = 100;

fn main() {
    // An 8×8-core cell of the paper's 88-network characterization grid:
    // every neuron a 20 Hz stochastic source with 32 synapses per row.
    let p = RecurrentParams::small(20.0, 32, 0xC0FFEE);
    let net = build_recurrent(&p);
    let model_text = modelfile::save(&net);
    println!(
        "built a {}x{}-core recurrent network ({} Hz x {} synapses, {} bytes as a model file)",
        p.cores_x,
        p.cores_y,
        p.quantized_rate_hz(),
        p.synapses,
        model_text.len()
    );

    // Serve it: in-process server on a loopback port, chip engine, max
    // speed (the example should not take 100 ms of wall-clock per run).
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_speed: true,
        ..Default::default()
    })
    .expect("bind loopback server");
    let mut client = Client::connect(server.addr()).expect("connect");
    match client
        .create_session(
            "charnet",
            Engine::Chip,
            Pace::MaxSpeed,
            ModelSource::Model(model_text),
        )
        .expect("create session")
    {
        Response::Created { session } => println!("serving session '{session}'"),
        other => panic!("create failed: {other:?}"),
    }
    client.subscribe("charnet").expect("subscribe");
    client.run_for("charnet", TICKS).expect("run");

    let mut served_per_tick = Vec::with_capacity(TICKS as usize);
    while let Some(u) = client.poll_update() {
        assert_eq!(u.tick, served_per_tick.len() as u64, "updates in order");
        served_per_tick.push(u.spikes_out);
    }
    let served = match client.stats("charnet").expect("stats") {
        Response::StatsData(s) => s,
        other => panic!("stats failed: {other:?}"),
    };
    client.close_session("charnet").expect("close");
    server.shutdown();

    // Replay locally: the batch expression of the very same blueprint.
    let mut sim = TrueNorthSim::new(build_recurrent(&p));
    let mut batch_per_tick = Vec::with_capacity(TICKS as usize);
    for _ in 0..TICKS {
        let (stats, _) = sim.step(&mut NullSource);
        batch_per_tick.push(stats.spikes_out);
    }

    // Tick-for-tick equivalence across the serving layer.
    assert_eq!(served_per_tick.len() as u64, TICKS, "one update per tick");
    assert_eq!(
        served_per_tick, batch_per_tick,
        "per-tick spike counts diverged between served and batch runs"
    );
    assert_eq!(served.tick, sim.current_tick());
    assert_eq!(
        served.state_digest,
        sim.network().state_digest(),
        "state digests diverged"
    );
    println!(
        "served run == batch run over {TICKS} ticks: {} spikes, final digest {:#018x}",
        served_per_tick.iter().sum::<u64>(),
        served.state_digest
    );
    println!(
        "served stats: sops={} dropped_inputs={} missed_deadlines={} energy={:.3e} J",
        served.sops, served.dropped_inputs, served.missed_deadlines, served.energy_j
    );
}
