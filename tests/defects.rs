//! Integration: fault tolerance — "local core failures do not disrupt
//! global usability" (paper §III-C).

use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_chip::TrueNorthSim;
use tn_core::network::NullSource;
use tn_core::CoreCoord;

fn params() -> RecurrentParams {
    RecurrentParams {
        rate_hz: 100.0,
        synapses: 32,
        cores_x: 8,
        cores_y: 8,
        seed: 0xDEF,
    }
}

#[test]
fn network_survives_core_failures() {
    let mut healthy = TrueNorthSim::new(build_recurrent(&params()));
    healthy.run(100, &mut NullSource);
    let healthy_spikes = healthy.stats().totals.spikes_out;

    let mut damaged = TrueNorthSim::new(build_recurrent(&params()));
    for c in [
        CoreCoord::new(3, 3),
        CoreCoord::new(4, 3),
        CoreCoord::new(5, 5),
    ] {
        damaged.inject_defect(c);
    }
    damaged.run(100, &mut NullSource);
    let damaged_spikes = damaged.stats().totals.spikes_out;

    // 3 of 64 cores dead → activity drops roughly proportionally, not
    // catastrophically.
    let ratio = damaged_spikes as f64 / healthy_spikes as f64;
    assert!(
        (0.85..1.0).contains(&ratio),
        "3/64 defects should cost ~5% of activity, kept {ratio:.3}"
    );
}

#[test]
fn defective_cores_stay_silent_and_receive_nothing() {
    let mut sim = TrueNorthSim::new(build_recurrent(&params()));
    let dead = CoreCoord::new(2, 6);
    sim.inject_defect(dead);
    sim.run(60, &mut NullSource);
    let id = sim.network().id_of(dead);
    assert_eq!(sim.network().core(id).pending_events(), 0);
    assert!(sim.network().core(id).is_disabled());
}

#[test]
fn routes_detour_around_defects() {
    // Compare total hops with a wall of defects in the middle: packets
    // crossing it must pay 2 extra hops each.
    let mut clean = TrueNorthSim::new(build_recurrent(&params()));
    clean.run(60, &mut NullSource);
    let clean_hops =
        clean.stats().total_hops as f64 / clean.stats().totals.spikes_out.max(1) as f64;

    let mut walled = TrueNorthSim::new(build_recurrent(&params()));
    for y in 0..8u16 {
        // A broken column (except one gap so everything stays reachable).
        if y != 7 {
            walled.inject_defect(CoreCoord::new(4, y));
        }
    }
    walled.run(60, &mut NullSource);
    let walled_hops =
        walled.stats().total_hops as f64 / walled.stats().totals.spikes_out.max(1) as f64;
    assert!(
        walled_hops > clean_hops,
        "detours must add hops: {walled_hops} vs {clean_hops}"
    );
}

#[test]
fn spikes_to_dead_cores_are_dropped_not_crashing() {
    let mut sim = TrueNorthSim::new(build_recurrent(&params()));
    // Kill a quarter of the chip.
    for y in 0..4u16 {
        for x in 0..4u16 {
            sim.inject_defect(CoreCoord::new(x, y));
        }
    }
    let stats = sim.run(80, &mut NullSource);
    assert!(stats.totals.spikes_out > 0, "the rest keeps running");
}
