//! Integration: the characterization pipeline produces the paper's
//! qualitative shapes on reduced-scale sweeps.

use tn_apps::recurrent::RecurrentParams;
use tn_bench::sweep::{analytic_point, characterize_at_voltage, run_recurrent_net};

#[test]
fn sops_identity_holds_over_the_grid() {
    // SOPS = rate × synapses × neurons — the paper's Section V-1 formula.
    for (rate, syn) in [(50.0, 16u32), (100.0, 64), (150.0, 32)] {
        let p = RecurrentParams {
            rate_hz: rate,
            synapses: syn,
            cores_x: 6,
            cores_y: 6,
            seed: 0x5075,
        };
        let r = run_recurrent_net(&p, 16, 48);
        let c = characterize_at_voltage(&r, 0.75);
        let expect = r.neurons as f64 * p.quantized_rate_hz() * syn as f64 / 1e9;
        let got = c.gsops;
        assert!(
            (got - expect).abs() / expect < 0.12,
            "({rate},{syn}): gsops {got} vs {expect}"
        );
    }
}

#[test]
fn efficiency_contour_shape_matches_fig5e() {
    // GSOPS/W increases along both the rate and synapse axes.
    let g = |r, s| analytic_point(r, s, 0.75).gsops_per_watt_rt;
    let rates = [5.0, 20.0, 50.0, 100.0, 200.0];
    let syns = [8.0, 32.0, 128.0, 256.0];
    for w in rates.windows(2) {
        assert!(g(w[1], 128.0) > g(w[0], 128.0));
    }
    for w in syns.windows(2) {
        assert!(g(100.0, w[1]) > g(100.0, w[0]));
    }
}

#[test]
fn fmax_contour_shape_matches_fig5b() {
    // fmax decreases with load; light loads are faster than real time;
    // the dense corner is not.
    let f = |r, s| analytic_point(r, s, 0.75).fmax_khz;
    assert!(f(0.0, 0.0) > 5.0);
    assert!(f(20.0, 128.0) > 4.0);
    assert!(f(200.0, 256.0) <= 1.4);
    for w in [0.0f64, 50.0, 100.0, 200.0].windows(2) {
        assert!(f(w[1], 128.0) < f(w[0], 128.0));
    }
}

#[test]
fn voltage_shape_matches_fig5cf() {
    // Higher voltage → faster but less efficient (Fig. 5(c), (f)).
    let volts = [0.70, 0.80, 0.90, 1.00];
    for w in volts.windows(2) {
        let lo = analytic_point(50.0, 128.0, w[0]);
        let hi = analytic_point(50.0, 128.0, w[1]);
        assert!(hi.fmax_khz > lo.fmax_khz);
        assert!(hi.gsops_per_watt_rt < lo.gsops_per_watt_rt);
    }
}

#[test]
fn headline_anchors_reproduced() {
    let a = analytic_point(20.0, 128.0, 0.75);
    assert!(
        (0.050..=0.080).contains(&a.power_rt_w),
        "{} W should be ≈65 mW",
        a.power_rt_w
    );
    assert!((37.0..=55.0).contains(&a.gsops_per_watt_rt));
    assert!((60.0..=100.0).contains(&a.gsops_per_watt_max));
    let corner = analytic_point(200.0, 256.0, 0.75);
    assert!(corner.gsops_per_watt_rt > 350.0);
    // Power density ≈ 20 mW/cm² at application-like operating points
    // (paper §I), 4.3 cm² die.
    let density_mw_cm2 = a.power_rt_w * 1e3 / 4.3;
    assert!(
        (8.0..=25.0).contains(&density_mw_cm2),
        "{density_mw_cm2} mW/cm²"
    );
}

#[test]
fn measured_and_analytic_agree_on_shared_quantities() {
    let p = RecurrentParams {
        rate_hz: 100.0,
        synapses: 32,
        cores_x: 8,
        cores_y: 8,
        seed: 0xABCD,
    };
    let r = run_recurrent_net(&p, 16, 64);
    let m = characterize_at_voltage(&r, 0.75);
    // The measured per-neuron rate and SOPS match the analytic targets;
    // absolute power differs because leakage is charged per chip while
    // the measured grid is 1/64th of a chip.
    assert!((m.rate_hz - p.quantized_rate_hz()).abs() < 6.0);
    let expect_sops = r.neurons as f64 * p.quantized_rate_hz() * 32.0;
    assert!((m.gsops * 1e9 - expect_sops).abs() / expect_sops < 0.12);
}
