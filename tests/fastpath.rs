//! Integration: the event-driven fast paths are *bit-exact*.
//!
//! The kernel's quiescence skip, type-grouped popcount synapse kernel,
//! neuron-profile dedup, and structure-of-arrays bitplane sweep
//! (tn_core::fastpath, tn_core::soa) are pure optimizations: for any
//! network — saturating weights, stochastic synapses/leak/threshold,
//! fault plans mutating the crossbar mid-run — every engine must produce
//! spike-for-spike identical outputs and a byte-identical `state_digest`
//! with fast paths on and off, at every thread count. Under
//! `--features simd` the same suite exercises the AVX2 expression of the
//! SoA sweep (runtime-detected), which must also be bit-identical.

use tn_chip::TrueNorthSim;
use tn_compass::{ParallelSim, ReferenceSim};
use tn_core::{
    CoreConfig, CoreId, Crossbar, Dest, FastPathConfig, FaultPlan, Network, NetworkBuilder,
    NeuronConfig, ResetMode, ScheduledSource, SpikeTarget, SplitMix64, POTENTIAL_MAX,
};

const GRID_W: u16 = 4;
const GRID_H: u16 = 3;
const TICKS: u64 = 50;

/// A deliberately nasty random neuron: extreme weights, stochastic
/// features, every reset mode.
fn random_neuron(rng: &mut SplitMix64, num_cores: usize) -> NeuronConfig {
    let mut n = NeuronConfig {
        weights: std::array::from_fn(|_| rng.range_inclusive_i64(-256, 255) as i16),
        stoch_synapse: std::array::from_fn(|_| rng.bool_with(0.2)),
        leak: rng.range_inclusive_i64(-40, 40) as i16,
        stoch_leak: rng.bool_with(0.3),
        leak_reversal: rng.bool_with(0.2),
        threshold: rng.range_inclusive_i64(1, 4000) as i32,
        tm_mask: [0u32, 0xF, 0xFF][rng.below_usize(3)],
        neg_threshold: rng.range_inclusive_i64(0, 900) as i32,
        neg_saturate: rng.bool_with(0.5),
        reset_mode: [ResetMode::Absolute, ResetMode::Linear, ResetMode::None][rng.below_usize(3)],
        reset: rng.range_inclusive_i64(-50, 50) as i32,
        initial_potential: rng.range_inclusive_i64(-2000, 2000) as i32,
        dest: Dest::None,
    };
    n.dest = random_dest(rng, num_cores);
    n
}

fn random_dest(rng: &mut SplitMix64, num_cores: usize) -> Dest {
    match rng.below(20) {
        0 => Dest::None,
        1 => Dest::Output(rng.below(4096) as u32),
        _ => Dest::Axon(SpikeTarget::new(
            CoreId(rng.below(num_cores as u64) as u32),
            rng.below(256) as u8,
            1 + rng.below(15) as u8,
        )),
    }
}

/// Five core archetypes, each stressing a different fast-path tier.
fn random_core(rng: &mut SplitMix64, num_cores: usize, kind: u64) -> CoreConfig {
    let mut cfg = CoreConfig::new();
    for a in 0..256 {
        cfg.axon_types[a] = rng.below(4) as u8;
    }
    match kind {
        // Quiescent relay: inert neurons, identity crossbar — exercises
        // the all-inert skip and the `settled` fixed-point detection.
        0 => {
            *cfg.crossbar = Crossbar::from_fn(|i, j| i == j);
            for j in 0..256 {
                cfg.neurons[j] = NeuronConfig::lif(3, 7);
                cfg.neurons[j].dest = random_dest(rng, num_cores);
            }
        }
        // Uniform stochastic sources with zero weights: the profile-dedup
        // + all-weights-zero tier (the characterization-net shape).
        1 => {
            let density = rng.below(50);
            *cfg.crossbar =
                Crossbar::from_fn(|i, j| (i as u64 * 31 + j as u64 * 17) % 100 < density);
            for j in 0..256 {
                cfg.neurons[j] = NeuronConfig::stochastic_source(30);
                cfg.neurons[j].weights = [0; 4];
                cfg.neurons[j].dest = random_dest(rng, num_cores);
            }
        }
        // Saturating: huge weights, potentials parked near the 20-bit
        // rails, dense crossbar — the conservative bounds must force the
        // ordered clamped walk whenever an intermediate clamp could bite.
        2 => {
            *cfg.crossbar = Crossbar::from_fn(|i, j| (i + j) % 2 == 0);
            for j in 0..256 {
                let mut n = random_neuron(rng, num_cores);
                n.weights = [255, -256, 255, -256];
                n.stoch_synapse = [false; 4];
                n.initial_potential = POTENTIAL_MAX - rng.below(4000) as i32;
                n.threshold = 500_000; // unreachably high: accumulate + clamp
                n.tm_mask = 0;
                cfg.neurons[j] = n;
            }
        }
        // Many distinct profiles (> the dedup table cap) without
        // stochastic synapses: split path with per-neuron configs.
        3 => {
            *cfg.crossbar = Crossbar::from_fn(|i, j| (i * 7 + j * 13) % 5 == 0);
            for j in 0..256 {
                let mut n = random_neuron(rng, num_cores);
                n.stoch_synapse = [false; 4];
                n.leak = (j as i16 % 100) - 50; // unique-ish profiles
                cfg.neurons[j] = n;
            }
        }
        // Fully random: stochastic synapses in play — fused/scalar paths.
        _ => {
            let density = rng.below(30) + 3;
            *cfg.crossbar =
                Crossbar::from_fn(|i, j| (i as u64 * 131 + j as u64 * 37) % 100 < density);
            for j in 0..256 {
                cfg.neurons[j] = random_neuron(rng, num_cores);
            }
        }
    }
    cfg
}

fn random_net(seed: u64) -> Network {
    let mut rng = SplitMix64::new(seed);
    let num = (GRID_W * GRID_H) as usize;
    let mut b = NetworkBuilder::new(GRID_W, GRID_H, seed);
    for _ in 0..num {
        let kind = rng.below(5);
        let cfg = random_core(&mut rng, num, kind);
        b.add_core(cfg);
    }
    b.build()
}

fn driving_source(seed: u64) -> ScheduledSource {
    let mut rng = SplitMix64::new(seed ^ 0x5eed);
    let mut s = ScheduledSource::new();
    let num = (GRID_W * GRID_H) as u64;
    for t in 0..TICKS {
        for _ in 0..rng.below(40) {
            s.push(t, CoreId(rng.below(num) as u32), rng.below(256) as u8);
        }
    }
    s
}

/// Fault plan exercising the fast-path invalidation hooks: crossbar
/// flips, neuron corruption, and stuck-at-1 axons mid-run.
const MUTATING_PLAN: &str = "\
tnfault 1
seed 9
horizon 100
at 3 core 1 1 flip 10 20
at 7 core 2 0 corrupt 5
at 9 core 0 2 axon 17 stuck1
at 12 core 3 1 flip 200 100
at 15 core 1 2 corrupt 250
at 20 core 2 2 flip 0 0
";

/// (state digest, output-spike digest, total PRNG draws) for one run.
fn run_engine(
    engine: &str,
    seed: u64,
    threads: usize,
    cfg: FastPathConfig,
    plan: Option<&FaultPlan>,
) -> (u64, u64, u64) {
    let net = random_net(seed);
    let mut src = driving_source(seed);
    match engine {
        "reference" => {
            let mut sim = ReferenceSim::new(net);
            sim.network_mut().set_fastpath(cfg);
            if let Some(p) = plan {
                sim.attach_faults(p);
            }
            sim.run(TICKS, &mut src);
            let draws = sim.stats().totals.prng_draws;
            let out = sim.outputs().digest();
            (sim.network().state_digest(), out, draws)
        }
        "parallel" => {
            let mut sim = ParallelSim::new(net, threads);
            sim.network_mut().set_fastpath(cfg);
            if let Some(p) = plan {
                sim.attach_faults(p);
            }
            sim.run(TICKS, &mut src);
            let draws = sim.stats().totals.prng_draws;
            let out = sim.outputs().digest();
            (sim.network().state_digest(), out, draws)
        }
        "chip" => {
            let mut sim = TrueNorthSim::new(net);
            sim.network_mut().set_fastpath(cfg);
            if let Some(p) = plan {
                sim.attach_faults(p);
            }
            sim.run(TICKS, &mut src);
            let draws = sim.stats().totals.prng_draws;
            let out = sim.outputs().digest();
            (sim.network().state_digest(), out, draws)
        }
        _ => unreachable!(),
    }
}

#[test]
fn fastpath_is_bit_exact_on_every_engine() {
    for seed in [11u64, 0xC0FFEE, 987_654_321] {
        let scalar = run_engine("reference", seed, 0, FastPathConfig::scalar(), None);
        assert!(scalar.2 > 0, "network must consume PRNG draws");
        for engine in ["reference", "parallel", "chip"] {
            let fast = run_engine(engine, seed, 3, FastPathConfig::default(), None);
            assert_eq!(
                fast.0, scalar.0,
                "{engine} fastpath state diverged from scalar (seed {seed:#x})"
            );
            assert_eq!(
                fast.1, scalar.1,
                "{engine} fastpath outputs diverged from scalar (seed {seed:#x})"
            );
            assert_eq!(
                fast.2, scalar.2,
                "{engine} fastpath PRNG draw count diverged (seed {seed:#x})"
            );
        }
    }
}

#[test]
fn fastpath_is_bit_exact_across_thread_counts() {
    let seed = 0xFA57u64;
    let scalar = run_engine("reference", seed, 0, FastPathConfig::scalar(), None);
    for threads in [1usize, 2, 3, 5, 8, 16] {
        let fast = run_engine("parallel", seed, threads, FastPathConfig::default(), None);
        assert_eq!(fast.0, scalar.0, "{threads} threads: state diverged");
        assert_eq!(fast.1, scalar.1, "{threads} threads: outputs diverged");
        assert_eq!(fast.2, scalar.2, "{threads} threads: draw count diverged");
    }
}

#[test]
fn partial_ablations_are_bit_exact_too() {
    let seed = 0xAB1A7E5u64;
    let scalar = run_engine("reference", seed, 0, FastPathConfig::scalar(), None);
    for (q, p, s) in [
        (true, false, false),
        (false, true, false),
        (false, false, true),
        (true, true, false),
        (false, true, true),
        (true, false, true),
    ] {
        let cfg = FastPathConfig {
            quiescence: q,
            popcount: p,
            soa: s,
        };
        let got = run_engine("reference", seed, 0, cfg, None);
        assert_eq!(
            got.0, scalar.0,
            "quiescence={q} popcount={p} soa={s} diverged"
        );
        assert_eq!(got.1, scalar.1);
        assert_eq!(got.2, scalar.2);
    }
}

/// SoA tier alone (no popcount, no quiescence) vs the scalar loop: the
/// draw *order* — not just the count — must match on the stochastic
/// archetypes, because the SoA draw pre-pass reorders nothing and the
/// tier must cleanly decline cores whose synapse phase draws. Equal
/// state digests pin the order (the LFSR state is part of the digest);
/// equal totals pin the count.
#[test]
fn soa_tier_preserves_prng_draw_order_vs_scalar() {
    for seed in [0x50A0u64, 0xBEE5, 3] {
        let scalar = run_engine("reference", seed, 0, FastPathConfig::scalar(), None);
        let soa_only = FastPathConfig {
            quiescence: false,
            popcount: false,
            soa: true,
        };
        let got = run_engine("reference", seed, 0, soa_only, None);
        assert_eq!(got.0, scalar.0, "soa-only state diverged (seed {seed:#x})");
        assert_eq!(got.1, scalar.1, "soa-only outputs diverged");
        assert_eq!(got.2, scalar.2, "soa-only draw count diverged");
    }
}

#[test]
fn fault_mutations_invalidate_fastpath_caches() {
    // Crossbar flips, neuron corruption, and stuck-at-1 axons rebuild the
    // per-core fast-path caches; a stale cache would silently diverge.
    let plan = FaultPlan::parse(MUTATING_PLAN).unwrap();
    for seed in [5u64, 0xD00D] {
        let scalar = run_engine("reference", seed, 0, FastPathConfig::scalar(), Some(&plan));
        for (engine, threads) in [
            ("reference", 0),
            ("parallel", 2),
            ("parallel", 7),
            ("chip", 0),
        ] {
            let fast = run_engine(
                engine,
                seed,
                threads,
                FastPathConfig::default(),
                Some(&plan),
            );
            assert_eq!(
                fast.0, scalar.0,
                "{engine}/{threads} threads diverged under fault plan (seed {seed:#x})"
            );
            assert_eq!(fast.1, scalar.1);
            assert_eq!(fast.2, scalar.2);
        }
    }
}

/// After every fault-mutation cache rebuild, each core's SoA planes (if
/// eligible) must structurally match planes rebuilt fresh from the
/// mutated per-neuron configuration — the plane↔struct round-trip
/// invariant. A stale plane (e.g. a threshold plane surviving a
/// `corrupt` event) would silently diverge only on specific inputs;
/// this checks the representation itself, not just the outputs.
#[test]
fn soa_planes_roundtrip_after_every_fault_rebuild() {
    let plan = FaultPlan::parse(MUTATING_PLAN).unwrap();
    for seed in [5u64, 0xD00D] {
        let net = random_net(seed);
        let mut src = driving_source(seed);
        let mut sim = ReferenceSim::new(net);
        sim.attach_faults(&plan);
        let mut eligible_seen = 0usize;
        for _ in 0..TICKS {
            sim.step(&mut src);
            for core in sim.network().cores() {
                if let Some(planes) = &core.fastpath().soa {
                    eligible_seen += 1;
                    assert!(
                        planes.roundtrip_matches(core.config()),
                        "core {:?}: SoA planes stale after fault mutations",
                        core.id()
                    );
                }
            }
        }
        assert!(eligible_seen > 0, "no SoA-eligible core ever checked");
    }
}

/// Snapshot/restore mid-run with the SoA tier active: the snapshot bytes
/// must be identical to a scalar run's at the same tick (SoA keeps no
/// hidden dynamic state outside the blueprint's), and resuming from the
/// restore must land on the same final digest as the uninterrupted run.
#[test]
fn soa_snapshot_restore_is_byte_identical_and_resumable() {
    let seed = 0x5AFE_5EEDu64;
    let half = TICKS / 2;

    // Uninterrupted SoA run for the final reference digest.
    let uninterrupted = run_engine("reference", seed, 0, FastPathConfig::default(), None);

    // SoA run paused at the midpoint.
    let mut src = driving_source(seed);
    let mut sim = ReferenceSim::new(random_net(seed));
    sim.network_mut().set_fastpath(FastPathConfig::default());
    sim.run(half, &mut src);
    let snap = sim.checkpoint();

    // Scalar run paused at the same midpoint: identical snapshot bytes.
    let mut src_s = driving_source(seed);
    let mut sim_s = ReferenceSim::new(random_net(seed));
    sim_s.network_mut().set_fastpath(FastPathConfig::scalar());
    sim_s.run(half, &mut src_s);
    assert_eq!(
        snap.to_bytes(),
        sim_s.checkpoint().to_bytes(),
        "SoA-active snapshot bytes differ from scalar at tick {half}"
    );

    // Restore into a fresh simulator and finish the run under SoA. The
    // source is keyed by absolute tick and the restore resumes the tick
    // counter, so a fresh schedule is only queried for ticks ≥ half.
    let mut resumed = ReferenceSim::new(random_net(seed));
    resumed
        .network_mut()
        .set_fastpath(FastPathConfig::default());
    resumed.restore(&snap);
    resumed.run(TICKS - half, &mut driving_source(seed));
    assert_eq!(
        resumed.network().state_digest(),
        uninterrupted.0,
        "restored SoA run diverged from uninterrupted run"
    );

    // And finish the same restore under the scalar path: same digest.
    let mut resumed_s = ReferenceSim::new(random_net(seed));
    resumed_s
        .network_mut()
        .set_fastpath(FastPathConfig::scalar());
    resumed_s.restore(&snap);
    resumed_s.run(TICKS - half, &mut driving_source(seed));
    assert_eq!(resumed_s.network().state_digest(), uninterrupted.0);
}

#[test]
fn prng_draw_accounting_is_identical_across_thread_counts() {
    // TickStats::prng_draws is a per-run delta summed over cores; the
    // partition must not change it.
    let seed = 0x17EA5u64;
    let reference = run_engine("reference", seed, 0, FastPathConfig::default(), None);
    assert!(reference.2 > 0);
    for threads in [1usize, 2, 7] {
        let par = run_engine("parallel", seed, threads, FastPathConfig::default(), None);
        assert_eq!(
            par.2, reference.2,
            "prng_draws must be thread-count invariant ({threads} threads)"
        );
    }
}
