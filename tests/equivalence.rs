//! Integration: the paper §VI-A 1:1 spike-for-spike equivalence property
//! across all three kernel expressions, including property-based fuzzing
//! of neuron configurations.

use proptest::prelude::*;
use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_chip::TrueNorthSim;
use tn_compass::{ParallelSim, ReferenceSim};
use tn_core::network::NullSource;
use tn_core::{
    CoreConfig, CoreId, Crossbar, Dest, Network, NetworkBuilder, NeuronConfig, ResetMode,
    ScheduledSource, SpikeTarget,
};

fn run_all_expressions(mk: impl Fn() -> Network, ticks: u64) -> Vec<u64> {
    let mut digests = Vec::new();
    let mut reference = ReferenceSim::new(mk());
    reference.run(ticks, &mut NullSource);
    digests.push(reference.network().state_digest());
    for threads in [2usize, 5] {
        let mut sim = ParallelSim::new(mk(), threads);
        sim.run(ticks, &mut NullSource);
        digests.push(sim.network().state_digest());
    }
    let mut chip = TrueNorthSim::new(mk());
    chip.run(ticks, &mut NullSource);
    digests.push(chip.network().state_digest());
    digests
}

#[test]
fn recurrent_networks_agree_across_expressions() {
    for (rate, syn) in [(20.0, 32), (150.0, 128)] {
        let mk = || {
            build_recurrent(&RecurrentParams {
                rate_hz: rate,
                synapses: syn,
                cores_x: 6,
                cores_y: 6,
                seed: 0xEE1,
            })
        };
        let digests = run_all_expressions(mk, 120);
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "expressions diverged at ({rate}, {syn}): {digests:?}"
        );
    }
}

#[test]
fn long_regression_10k_ticks() {
    // Paper: "regressions from 10k to 100M time steps ... not a single
    // spike mismatch".
    let mk = || {
        build_recurrent(&RecurrentParams {
            rate_hz: 100.0,
            synapses: 16,
            cores_x: 3,
            cores_y: 3,
            seed: 0x10_000,
        })
    };
    let digests = run_all_expressions(mk, 10_000);
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "{digests:?}");
}

#[test]
fn external_input_stream_agrees() {
    let mk = || {
        build_recurrent(&RecurrentParams {
            rate_hz: 50.0,
            synapses: 64,
            cores_x: 4,
            cores_y: 4,
            seed: 3,
        })
    };
    let mk_src = || {
        let mut s = ScheduledSource::new();
        for t in 0..200u64 {
            s.push(t, CoreId((t * 7 % 16) as u32), (t * 31 % 256) as u8);
        }
        s
    };
    let mut a = ReferenceSim::new(mk());
    a.run(220, &mut mk_src());
    let mut b = ParallelSim::new(mk(), 4);
    b.run(220, &mut mk_src());
    let mut c = TrueNorthSim::new(mk());
    c.run(220, &mut mk_src());
    assert_eq!(a.network().state_digest(), b.network().state_digest());
    assert_eq!(a.network().state_digest(), c.network().state_digest());
    assert_eq!(a.outputs().digest(), c.outputs().digest());
}

/// Strategy for an arbitrary (but valid) neuron configuration.
fn arb_neuron() -> impl Strategy<Value = NeuronConfig> {
    (
        prop::array::uniform4(-255i16..=255),
        prop::array::uniform4(any::<bool>()),
        -64i16..=64,
        any::<bool>(),
        any::<bool>(),
        1i32..=64,
        0u32..=15,
        0i32..=64,
        any::<bool>(),
        0usize..3,
        0i32..=8,
    )
        .prop_map(
            |(weights, stoch, leak, sl, lr, thr, tm, neg, sat, reset_mode, reset)| {
                NeuronConfig {
                    weights,
                    stoch_synapse: stoch,
                    leak,
                    stoch_leak: sl,
                    leak_reversal: lr,
                    threshold: thr,
                    tm_mask: tm,
                    neg_threshold: neg,
                    neg_saturate: sat,
                    reset_mode: [ResetMode::Absolute, ResetMode::Linear, ResetMode::None]
                        [reset_mode],
                    reset,
                    initial_potential: 0,
                    dest: Dest::None,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuzz: random neuron programs + random sparse crossbars on a 2×2
    /// grid must evolve identically on every expression.
    #[test]
    fn fuzzed_configs_agree(
        neurons in prop::collection::vec(arb_neuron(), 16),
        xbar_seed in any::<u32>(),
        net_seed in any::<u64>(),
    ) {
        let mk = || {
            let mut b = NetworkBuilder::new(2, 2, net_seed);
            for c in 0..4u32 {
                let mut cfg = CoreConfig::new();
                *cfg.crossbar = Crossbar::from_fn(|i, j| {
                    (i as u32)
                        .wrapping_mul(2654435761)
                        .wrapping_add((j as u32).wrapping_mul(40503))
                        .wrapping_add(xbar_seed)
                        % 7
                        == 0
                });
                for j in 0..256 {
                    let mut n = neurons[(j + c as usize) % neurons.len()].clone();
                    // Give every neuron a destination so traffic flows.
                    n.dest = Dest::Axon(SpikeTarget::new(
                        CoreId((c + 1) % 4),
                        (j as u32 * 13 % 256) as u8,
                        1 + (j % 15) as u8,
                    ));
                    // Make some neurons spontaneously active.
                    if j % 3 == 0 {
                        n.stoch_leak = true;
                        n.leak = n.leak.abs().max(8);
                    }
                    cfg.neurons[j] = n;
                }
                cfg.validate().unwrap();
                b.add_core(cfg);
            }
            b.build()
        };
        let digests = run_all_expressions(mk, 40);
        prop_assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }
}
