//! Integration: the paper §VI-A 1:1 spike-for-spike equivalence property
//! across all three kernel expressions, including property-based fuzzing
//! of neuron configurations.

use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_chip::TrueNorthSim;
use tn_compass::{ParallelSim, ReferenceSim};
use tn_core::network::NullSource;
use tn_core::{
    CoreConfig, CoreId, Crossbar, Dest, Network, NetworkBuilder, NeuronConfig, ResetMode,
    ScheduledSource, SpikeTarget, SplitMix64,
};

fn run_all_expressions(mk: impl Fn() -> Network, ticks: u64) -> Vec<u64> {
    let mut digests = Vec::new();
    let mut reference = ReferenceSim::new(mk());
    reference.run(ticks, &mut NullSource);
    digests.push(reference.network().state_digest());
    for threads in [2usize, 5] {
        let mut sim = ParallelSim::new(mk(), threads);
        sim.run(ticks, &mut NullSource);
        digests.push(sim.network().state_digest());
    }
    let mut chip = TrueNorthSim::new(mk());
    chip.run(ticks, &mut NullSource);
    digests.push(chip.network().state_digest());
    digests
}

#[test]
fn recurrent_networks_agree_across_expressions() {
    for (rate, syn) in [(20.0, 32), (150.0, 128)] {
        let mk = || {
            build_recurrent(&RecurrentParams {
                rate_hz: rate,
                synapses: syn,
                cores_x: 6,
                cores_y: 6,
                seed: 0xEE1,
            })
        };
        let digests = run_all_expressions(mk, 120);
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "expressions diverged at ({rate}, {syn}): {digests:?}"
        );
    }
}

#[test]
fn long_regression_10k_ticks() {
    // Paper: "regressions from 10k to 100M time steps ... not a single
    // spike mismatch".
    let mk = || {
        build_recurrent(&RecurrentParams {
            rate_hz: 100.0,
            synapses: 16,
            cores_x: 3,
            cores_y: 3,
            seed: 0x10_000,
        })
    };
    let digests = run_all_expressions(mk, 10_000);
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "{digests:?}");
}

#[test]
fn external_input_stream_agrees() {
    let mk = || {
        build_recurrent(&RecurrentParams {
            rate_hz: 50.0,
            synapses: 64,
            cores_x: 4,
            cores_y: 4,
            seed: 3,
        })
    };
    let mk_src = || {
        let mut s = ScheduledSource::new();
        for t in 0..200u64 {
            s.push(t, CoreId((t * 7 % 16) as u32), (t * 31 % 256) as u8);
        }
        s
    };
    let mut a = ReferenceSim::new(mk());
    a.run(220, &mut mk_src());
    let mut b = ParallelSim::new(mk(), 4);
    b.run(220, &mut mk_src());
    let mut c = TrueNorthSim::new(mk());
    c.run(220, &mut mk_src());
    assert_eq!(a.network().state_digest(), b.network().state_digest());
    assert_eq!(a.network().state_digest(), c.network().state_digest());
    assert_eq!(a.outputs().digest(), c.outputs().digest());
}

/// Draw an arbitrary (but valid) neuron configuration.
fn arb_neuron(rng: &mut SplitMix64) -> NeuronConfig {
    NeuronConfig {
        weights: std::array::from_fn(|_| rng.range_inclusive_i64(-255, 255) as i16),
        stoch_synapse: std::array::from_fn(|_| rng.bool_with(0.5)),
        leak: rng.range_inclusive_i64(-64, 64) as i16,
        stoch_leak: rng.bool_with(0.5),
        leak_reversal: rng.bool_with(0.5),
        threshold: rng.range_inclusive_i64(1, 64) as i32,
        tm_mask: rng.below(16) as u32,
        neg_threshold: rng.range_inclusive_i64(0, 64) as i32,
        neg_saturate: rng.bool_with(0.5),
        reset_mode: [ResetMode::Absolute, ResetMode::Linear, ResetMode::None][rng.below_usize(3)],
        reset: rng.range_inclusive_i64(0, 8) as i32,
        initial_potential: 0,
        dest: Dest::None,
    }
}

/// Fuzz: random neuron programs + random sparse crossbars on a 2×2 grid
/// must evolve identically on every expression.
#[test]
fn fuzzed_configs_agree() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xF022 + case);
        let neurons: Vec<NeuronConfig> = (0..16).map(|_| arb_neuron(&mut rng)).collect();
        let xbar_seed = rng.next_u32();
        let net_seed = rng.next_u64();
        let mk = || {
            let mut b = NetworkBuilder::new(2, 2, net_seed);
            for c in 0..4u32 {
                let mut cfg = CoreConfig::new();
                *cfg.crossbar = Crossbar::from_fn(|i, j| {
                    (i as u32)
                        .wrapping_mul(2654435761)
                        .wrapping_add((j as u32).wrapping_mul(40503))
                        .wrapping_add(xbar_seed)
                        .is_multiple_of(7)
                });
                for j in 0..256 {
                    let mut n = neurons[(j + c as usize) % neurons.len()].clone();
                    // Give every neuron a destination so traffic flows.
                    n.dest = Dest::Axon(SpikeTarget::new(
                        CoreId((c + 1) % 4),
                        (j as u32 * 13 % 256) as u8,
                        1 + (j % 15) as u8,
                    ));
                    // Make some neurons spontaneously active.
                    if j % 3 == 0 {
                        n.stoch_leak = true;
                        n.leak = n.leak.abs().max(8);
                    }
                    cfg.neurons[j] = n;
                }
                cfg.validate().unwrap();
                b.add_core(cfg);
            }
            b.build()
        };
        let digests = run_all_expressions(mk, 40);
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "case {case}: {digests:?}"
        );
    }
}
