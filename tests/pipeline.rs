//! Integration: corelet pipelines composed across crates run identically
//! on the software and silicon expressions, end to end.

use tn_chip::TrueNorthSim;
use tn_compass::{ParallelSim, ReferenceSim};
use tn_core::{Network, ScheduledSource};
use tn_corelet::filter::weighted_sum;
use tn_corelet::pooling::{pooling, PoolKind};
use tn_corelet::splitter::splitter;
use tn_corelet::wta::{wta, WtaParams};
use tn_corelet::CoreletBuilder;

/// A composite pipeline: input → splitter → {weighted sum, OR pool} →
/// WTA. Returns (network, input pin, output ports).
fn build_pipeline() -> (Network, tn_corelet::InputPin, Vec<u32>) {
    let mut b = CoreletBuilder::new(8, 8, 11);
    let sp = splitter(&mut b, 4);

    // Branch A: weighted sum of two splitter copies.
    let ws = weighted_sum(&mut b, &[2, 1], 3).unwrap();
    b.wire(sp.outputs[0], ws.inputs[0], 1);
    b.wire(sp.outputs[1], ws.inputs[1], 2);

    // Branch B: OR pool of the other two copies.
    let pool = pooling(&mut b, 1, 2, PoolKind::Or);
    b.wire(sp.outputs[2], pool.inputs[0][0], 1);
    b.wire(sp.outputs[3], pool.inputs[0][1], 3);

    // WTA across the two branches.
    let w = wta(
        &mut b,
        2,
        WtaParams {
            excite: 2,
            threshold: 4,
            inhibit: 4,
            ior: None,
        },
    );
    b.wire(ws.output, w.inputs[0], 1);
    b.wire(pool.outputs[0], w.inputs[1], 1);
    let ports = vec![b.expose(w.outputs[0]), b.expose(w.outputs[1])];
    let pin = sp.input;
    (b.build(), pin, ports)
}

#[test]
fn pipeline_runs_identically_everywhere() {
    let (net_a, pin, ports) = build_pipeline();
    let (net_b, _, _) = build_pipeline();
    let (net_c, _, _) = build_pipeline();
    let mk_src = || {
        let mut s = ScheduledSource::new();
        for t in (0..120).step_by(2) {
            s.push(t, pin.core, pin.axon);
        }
        s
    };

    let mut reference = ReferenceSim::new(net_a);
    reference.run(140, &mut mk_src());
    let mut parallel = ParallelSim::new(net_b, 3);
    parallel.run(140, &mut mk_src());
    let mut chip = TrueNorthSim::new(net_c);
    chip.run(140, &mut mk_src());

    assert_eq!(
        reference.network().state_digest(),
        parallel.network().state_digest()
    );
    assert_eq!(
        reference.network().state_digest(),
        chip.network().state_digest()
    );
    assert_eq!(reference.outputs().digest(), chip.outputs().digest());

    // Both branches accumulate equal long-run evidence, but branch B
    // (the OR pool) has one tick less latency, fires first, and the
    // WTA's recurrent inhibition then locks branch A out — the classic
    // first-mover dynamics of a race between equal candidates.
    let a = reference.outputs().port_ticks(ports[0]).len();
    let b = reference.outputs().port_ticks(ports[1]).len();
    assert!(b > 0, "winner must fire: A={a} B={b}");
    assert!(b > a, "lower-latency branch wins the race: A={a} B={b}");

    // Chip-side accounting must have seen the traffic.
    assert!(chip.stats().total_hops > 0);
    assert!(chip.energy_realtime().row_j > 0.0);
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let (net_a, pin, _) = build_pipeline();
    let (net_b, _, _) = build_pipeline();
    let mk_src = || {
        let mut s = ScheduledSource::new();
        for t in (0..80).step_by(3) {
            s.push(t, pin.core, pin.axon);
        }
        s
    };
    let mut first = ReferenceSim::new(net_a);
    first.run(100, &mut mk_src());
    let mut second = ReferenceSim::new(net_b);
    second.run(100, &mut mk_src());
    assert_eq!(first.outputs().digest(), second.outputs().digest());
}
