//! Integration: the vision applications, driven by the deterministic
//! video transducer, behave identically on the software and silicon
//! expressions — the paper's co-design promise applied to whole
//! applications ("we have developed a cache of applications on Compass
//! ... that now run without modification on TrueNorth").

use tn_apps::flow::{build_flow, FlowParams};
use tn_apps::haar::{build_haar, HaarParams};
use tn_apps::saccade::{build_saccade, SaccadeParams};
use tn_apps::transduce::VideoSource;
use tn_apps::video::Scene;
use tn_chip::TrueNorthSim;
use tn_compass::{ParallelSim, ReferenceSim};

/// Run one (network, source) pair on all three expressions and compare
/// state digests and output transcripts.
fn assert_app_equivalent<F>(build: F, w: u16, h: u16, ticks: u64)
where
    F: Fn() -> (tn_core::Network, tn_apps::transduce::PixelMap),
{
    let mk_src = |map: tn_apps::transduce::PixelMap| {
        VideoSource::new(Scene::new(w, h, 2, 77), map, 1.0).with_ticks_per_frame(16)
    };

    let (net_a, map_a) = build();
    let mut reference = ReferenceSim::new(net_a);
    reference.run(ticks, &mut mk_src(map_a));

    let (net_b, map_b) = build();
    let mut parallel = ParallelSim::new(net_b, 3);
    parallel.run(ticks, &mut mk_src(map_b));

    let (net_c, map_c) = build();
    let mut chip = TrueNorthSim::new(net_c);
    chip.run(ticks, &mut mk_src(map_c));

    assert_eq!(
        reference.network().state_digest(),
        parallel.network().state_digest(),
        "reference vs parallel"
    );
    assert_eq!(
        reference.network().state_digest(),
        chip.network().state_digest(),
        "reference vs chip"
    );
    assert_eq!(reference.outputs().digest(), parallel.outputs().digest());
    assert_eq!(reference.outputs().digest(), chip.outputs().digest());
    assert!(
        reference.stats().totals.spikes_out > 0,
        "application must actually be active"
    );
}

#[test]
fn haar_runs_identically_on_all_expressions() {
    let p = HaarParams::small();
    assert_app_equivalent(
        || {
            let app = build_haar(&p);
            (app.net, app.pixel_map)
        },
        p.width,
        p.height,
        120,
    );
}

#[test]
fn saccade_runs_identically_on_all_expressions() {
    let p = SaccadeParams::small();
    assert_app_equivalent(
        || {
            let app = build_saccade(&p);
            (app.net, app.pixel_map)
        },
        p.saliency.width,
        p.saliency.height,
        150,
    );
}

#[test]
fn optical_flow_runs_identically_on_all_expressions() {
    let p = FlowParams::small();
    assert_app_equivalent(
        || {
            let app = build_flow(&p);
            (app.net, app.pixel_map)
        },
        p.width,
        p.height,
        100,
    );
}
