//! Integration: the tn-obs registry reconciles with the legacy counters
//! on every kernel expression.
//!
//! The observability layer is only trustworthy if its numbers are the
//! *same* numbers the engines already report. This suite drives the same
//! seeded recurrent network — with a fault plan attached, so the fault
//! phase and the fast path are both exercised — through all three
//! expressions tick by tick, accumulating per-tick `TickStats` deltas
//! into a fresh registry (the serving layer's accounting path), then
//! syncing engine totals via `KernelSession::publish_metrics` (the
//! engine's own path), and asserts the two agree with each other and
//! with `RunStats`, `FaultCounters`, and the fast-path tier tallies,
//! field by field.

// tn-check: allow(TN020) — test-only audit tallies, read after the
// single-threaded run has completed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_chip::TrueNorthSim;
use tn_compass::{KernelSession, ParallelSim, ReferenceSim};
use tn_core::network::NullSource;
use tn_core::{FaultPlan, Network};
use tn_obs::{Registry, TickObserver, TickPhase, TickSummary};

const TICKS: u64 = 120;

fn net() -> Network {
    build_recurrent(&RecurrentParams {
        rate_hz: 120.0,
        synapses: 48,
        cores_x: 4,
        cores_y: 4,
        seed: 0x0B5E,
    })
}

/// A couple of fault events so the fault counters are non-trivially
/// nonzero (lossy link + a dead core mid-run).
const PLAN: &str = "\
tnfault 1
seed 9
horizon 200
at 10 core 1 1 dead
at 20 link 0 0 1 0 lossy 600
at 30 core 2 2 sync 4
";

/// Counts every span hook: each tick must open, pass through phases, and
/// close with a summary whose totals match the engine's.
#[derive(Default)]
struct SpanAudit {
    starts: AtomicU64,
    ends: AtomicU64,
    phases: AtomicU64,
    spikes: AtomicU64,
    sops: AtomicU64,
}

impl TickObserver for SpanAudit {
    fn on_tick_start(&self, _tick: u64) {
        self.starts.fetch_add(1, Ordering::Relaxed);
    }

    fn on_phase(&self, _tick: u64, _phase: TickPhase) {
        self.phases.fetch_add(1, Ordering::Relaxed);
    }

    fn on_tick_end(&self, summary: &TickSummary) {
        self.ends.fetch_add(1, Ordering::Relaxed);
        self.spikes.fetch_add(summary.spikes_out, Ordering::Relaxed);
        self.sops.fetch_add(summary.sops, Ordering::Relaxed);
    }
}

/// Drive one expression for [`TICKS`] ticks through the trait, with per
/// -tick delta accounting into `reg` and a span audit attached; then
/// publish the engine totals into the same registry and reconcile
/// everything.
fn drive_and_reconcile(mut sim: Box<dyn KernelSession>) -> (u64, tn_core::TierCounters) {
    let reg = Registry::new();
    let audit = Arc::new(SpanAudit::default());
    sim.set_observer(audit.clone());
    sim.attach_faults(&FaultPlan::parse(PLAN).unwrap());

    let ticks = reg.counter("delta_ticks");
    let axon = reg.counter("delta_axon_events");
    let sops = reg.counter("delta_sops");
    let updates = reg.counter("delta_neuron_updates");
    let spikes = reg.counter("delta_spikes_out");
    let prng = reg.counter("delta_prng_draws");
    let mut src = NullSource;
    for _ in 0..TICKS {
        let t = sim.step(&mut src);
        ticks.inc();
        axon.add(t.axon_events);
        sops.add(t.sops);
        updates.add(t.neuron_updates);
        spikes.add(t.spikes_out);
        prng.add(t.prng_draws);
    }

    let name = sim.engine_name();
    let stats = *sim.stats();
    assert_eq!(stats.ticks, TICKS, "{name}");
    assert!(stats.totals.spikes_out > 0, "{name}: the net must fire");

    // Path 1: the per-tick delta accumulation equals the legacy totals.
    for (counter, legacy, field) in [
        (&ticks, stats.ticks, "ticks"),
        (&axon, stats.totals.axon_events, "axon_events"),
        (&sops, stats.totals.sops, "sops"),
        (&updates, stats.totals.neuron_updates, "neuron_updates"),
        (&spikes, stats.totals.spikes_out, "spikes_out"),
        (&prng, stats.totals.prng_draws, "prng_draws"),
    ] {
        assert_eq!(
            counter.get(),
            legacy,
            "{name}: delta path diverged on {field}"
        );
    }

    // Path 2: publish_metrics syncs the engine totals to the same values.
    sim.publish_metrics(&reg);
    for (metric, legacy) in [
        ("tn_kernel_ticks_total", stats.ticks),
        ("tn_kernel_axon_events_total", stats.totals.axon_events),
        ("tn_kernel_sops_total", stats.totals.sops),
        (
            "tn_kernel_neuron_updates_total",
            stats.totals.neuron_updates,
        ),
        ("tn_kernel_spikes_out_total", stats.totals.spikes_out),
        ("tn_kernel_prng_draws_total", stats.totals.prng_draws),
        ("tn_kernel_dropped_inputs_total", sim.dropped_inputs()),
    ] {
        assert_eq!(
            reg.counter_value(metric, &[]),
            Some(legacy),
            "{name}: {metric} diverged from the legacy counter"
        );
    }

    // Fault counters, per class.
    let fc = sim.fault_counters().expect("plan attached");
    assert!(
        fc.total_dropped() > 0,
        "{name}: the plan must actually drop traffic"
    );
    for (kind, legacy) in [
        ("dead", fc.dead_dropped),
        ("stuck", fc.stuck_dropped),
        ("sync", fc.sync_dropped),
        ("severed", fc.severed_dropped),
        ("lossy", fc.lossy_dropped),
    ] {
        assert_eq!(
            reg.counter_value("tn_fault_drops_total", &[("kind", kind)]),
            Some(legacy),
            "{name}: fault kind {kind} diverged"
        );
    }
    assert_eq!(
        reg.counter_value("tn_fault_rerouted_total", &[]),
        Some(fc.rerouted),
        "{name}"
    );

    // Fast-path tier tallies: every (tick, core) lands in exactly one
    // tier, and the registry mirrors the per-core counters.
    let tiers = sim.network().tier_totals();
    assert_eq!(
        tiers.total(),
        TICKS * sim.network().num_cores() as u64,
        "{name}: tier counters must account every core-tick exactly once"
    );
    for (tier, v) in [
        ("disabled", tiers.disabled),
        ("quiescent", tiers.quiescent),
        ("soa", tiers.soa),
        ("split", tiers.split),
        ("fused", tiers.fused),
        ("scalar", tiers.scalar),
    ] {
        assert_eq!(
            reg.counter_value("tn_fastpath_tier_ticks_total", &[("tier", tier)]),
            Some(v),
            "{name}: tier {tier} diverged"
        );
    }

    // The wall clock accrues on the step-driven path (it used to stay 0
    // until `run()` was called — the accounting bug this PR fixes).
    assert!(
        stats.wall_seconds > 0.0,
        "{name}: step-driven wall_seconds must accrue"
    );
    let wall = reg.gauge_value("tn_kernel_wall_seconds", &[]).unwrap();
    assert!((wall - stats.wall_seconds).abs() < 1e-12, "{name}");

    // Span hooks fired once per tick, phases in between, and the
    // summaries add up to the same totals.
    assert_eq!(audit.starts.load(Ordering::Relaxed), TICKS, "{name}");
    assert_eq!(audit.ends.load(Ordering::Relaxed), TICKS, "{name}");
    assert!(
        audit.phases.load(Ordering::Relaxed) >= TICKS,
        "{name}: phase hooks must fire"
    );
    assert_eq!(
        audit.spikes.load(Ordering::Relaxed),
        stats.totals.spikes_out,
        "{name}: span summaries diverged on spikes"
    );
    assert_eq!(
        audit.sops.load(Ordering::Relaxed),
        stats.totals.sops,
        "{name}: span summaries diverged on sops"
    );

    // The rendered exposition of everything above must validate.
    tn_obs::validate_exposition(&reg.render_text()).expect("valid exposition");

    (sim.network().state_digest(), tiers)
}

#[test]
fn registry_reconciles_with_legacy_counters_on_all_engines() {
    let (d_ref, t_ref) = drive_and_reconcile(Box::new(ReferenceSim::new(net())));
    let (d_par, t_par) = drive_and_reconcile(Box::new(ParallelSim::new(net(), 3)));
    let (d_chip, t_chip) = drive_and_reconcile(Box::new(TrueNorthSim::new(net())));

    // The observability wiring must not perturb the blueprint: all three
    // faulted, observed, metered runs stay bit-identical — and since the
    // tier decision is part of the kernel semantics, the tier tallies
    // agree too.
    assert_eq!(d_ref, d_par, "reference vs parallel digests diverged");
    assert_eq!(d_ref, d_chip, "reference vs chip digests diverged");
    assert_eq!(t_ref, t_par, "reference vs parallel tier tallies diverged");
    assert_eq!(t_ref, t_chip, "reference vs chip tier tallies diverged");
}

#[test]
fn chip_extras_reconcile_with_the_report() {
    let mut sim = TrueNorthSim::new(net());
    let mut src = NullSource;
    for _ in 0..60 {
        KernelSession::step(&mut sim, &mut src);
    }
    let reg = Registry::new();
    sim.publish_metrics(&reg);
    let stats = *sim.stats();
    assert!(stats.total_hops > 0);
    assert_eq!(
        reg.counter_value("tn_chip_mesh_hops_total", &[]),
        Some(stats.total_hops)
    );
    assert_eq!(
        reg.counter_value("tn_chip_boundary_crossings_total", &[]),
        Some(stats.boundary_crossings)
    );
    assert_eq!(
        reg.gauge_value("tn_chip_worst_io_load", &[]),
        Some(sim.worst_io_load() as f64)
    );
    let (link, boundary) = sim.worst_noc_loads();
    assert_eq!(
        reg.gauge_value("tn_chip_worst_link_load", &[]),
        Some(link as f64)
    );
    assert_eq!(
        reg.gauge_value("tn_chip_worst_boundary_load", &[]),
        Some(boundary as f64)
    );
    let e_rt = reg
        .gauge_value("tn_chip_energy_joules", &[("mode", "realtime")])
        .unwrap();
    assert!((e_rt - sim.energy_realtime().total_j()).abs() < 1e-18);
    let e_max = reg
        .gauge_value("tn_chip_energy_joules", &[("mode", "max_speed")])
        .unwrap();
    assert!((e_max - sim.energy_max_speed().total_j()).abs() < 1e-18);
    // The report and the registry tell one story.
    let report = sim.report();
    assert_eq!(report.ticks, 60);
    assert!((report.host_wall_seconds - stats.wall_seconds).abs() < 1e-12);
}
