//! Integration: deterministic fault injection (paper §III-C taken
//! further) — the same seeded [`tn_core::FaultPlan`] must degrade every
//! kernel expression identically, replay byte-for-byte, survive
//! snapshot round-trips of the damaged board, and never panic no matter
//! how hostile the plan.

use tn_apps::recurrent::{build_recurrent, RecurrentParams};
use tn_chip::TrueNorthSim;
use tn_compass::{ParallelSim, ReferenceSim};
use tn_core::network::NullSource;
use tn_core::{CoreCoord, FaultCounters, FaultPlan, Network, NetworkSnapshot};

fn net() -> Network {
    build_recurrent(&RecurrentParams {
        rate_hz: 100.0,
        synapses: 32,
        cores_x: 6,
        cores_y: 6,
        seed: 0xFA17,
    })
}

/// One event of every fault class on a 6×6 board.
const EVERY_KIND: &str = "\
tnfault 1
seed 77
horizon 200
at 5 core 2 2 dead
at 10 core 1 0 axon 7 stuck0
at 12 core 0 1 axon 3 stuck1
at 20 core 3 3 flip 12 34
at 25 core 4 1 corrupt 9
at 30 link 2 3 3 3 sever
at 35 link 0 0 1 0 lossy 400
at 40 core 5 5 sync 6
";

#[test]
fn same_seed_and_plan_replays_byte_identically() {
    let plan = FaultPlan::parse(EVERY_KIND).unwrap();
    let trace = |plan: &FaultPlan| -> (Vec<u64>, FaultCounters) {
        let mut sim = ReferenceSim::new(net());
        sim.attach_faults(plan);
        let digests: Vec<u64> = (0..150)
            .map(|_| {
                sim.step(&mut NullSource);
                sim.network().state_digest()
            })
            .collect();
        (digests, *sim.faults().unwrap().counters())
    };
    let (a, ca) = trace(&plan);
    let (b, cb) = trace(&plan);
    assert_eq!(a, b, "identical seed + plan must replay tick-for-tick");
    assert_eq!(ca, cb);
    // The plan actually bit: dead-core and lossy-link drops occurred.
    assert!(ca.dead_dropped > 0, "{ca:?}");
    assert!(ca.lossy_dropped > 0, "{ca:?}");
    assert!(ca.stuck_dropped > 0, "{ca:?}");
}

#[test]
fn every_fault_kind_agrees_across_expressions() {
    let plan = FaultPlan::parse(EVERY_KIND).unwrap();
    let mut digests = Vec::new();
    let mut counters = Vec::new();

    let mut reference = ReferenceSim::new(net());
    reference.attach_faults(&plan);
    reference.run(150, &mut NullSource);
    digests.push(reference.network().state_digest());
    counters.push(*reference.faults().unwrap().counters());

    for threads in [2usize, 5] {
        let mut sim = ParallelSim::new(net(), threads);
        sim.attach_faults(&plan);
        sim.run(150, &mut NullSource);
        digests.push(sim.network().state_digest());
        counters.push(*sim.faults().unwrap().counters());
    }

    let mut chip = TrueNorthSim::new(net());
    chip.attach_faults(&plan);
    chip.run(150, &mut NullSource);
    digests.push(chip.network().state_digest());
    counters.push(*chip.faults().unwrap().counters());

    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "expressions diverged under faults: {digests:?}"
    );
    assert!(
        counters.windows(2).all(|w| w[0] == w[1]),
        "fault accounting diverged: {counters:?}"
    );
    // The chip report surfaces the same accounting.
    assert_eq!(chip.report().faults, counters[0]);
}

#[test]
fn damaged_board_snapshot_survives_byte_roundtrip_and_engine_swap() {
    let plan = FaultPlan::parse(EVERY_KIND).unwrap();
    let mut origin = ReferenceSim::new(net());
    origin.attach_faults(&plan);
    origin.run(60, &mut NullSource);

    // Checkpoint mid-damage, through the byte codec.
    let bytes = origin.checkpoint().to_bytes();
    let snap = NetworkSnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snap.tick, 60);

    // The dead core's disabled flag rides along.
    let dead_id = origin.network().id_of(CoreCoord::new(2, 2));
    assert!(origin.network().core(dead_id).is_disabled());

    origin.run(60, &mut NullSource);
    let want = origin.network().state_digest();

    // Resume on every other expression; each must land on the same state.
    let mut par = ParallelSim::new(net(), 3);
    par.attach_faults(&plan);
    par.restore(&snap);
    assert!(
        par.network().core(dead_id).is_disabled(),
        "restore keeps damage"
    );
    par.run(60, &mut NullSource);
    assert_eq!(par.network().state_digest(), want);

    let mut chip = TrueNorthSim::new(net());
    chip.attach_faults(&plan);
    chip.restore(&snap);
    chip.run(60, &mut NullSource);
    assert_eq!(chip.network().state_digest(), want);
}

#[test]
fn manually_injected_defects_roundtrip_through_snapshot_bytes() {
    let mut chip = TrueNorthSim::new(net());
    for c in [CoreCoord::new(1, 1), CoreCoord::new(4, 2)] {
        chip.inject_defect(c);
    }
    chip.run(40, &mut NullSource);

    let bytes = chip.checkpoint().to_bytes();
    let snap = NetworkSnapshot::from_bytes(&bytes).unwrap();

    let mut resumed = ReferenceSim::new(net());
    resumed.restore(&snap);
    for c in [CoreCoord::new(1, 1), CoreCoord::new(4, 2)] {
        let id = resumed.network().id_of(c);
        assert!(resumed.network().core(id).is_disabled(), "{c:?}");
    }
    // The damaged board keeps running after the engine swap.
    let stats = resumed.run(40, &mut NullSource);
    assert!(stats.totals.spikes_out > 0);
}

#[test]
fn hostile_plans_never_panic_any_engine() {
    // Out-of-grid coordinates, boundary indices, saturated probabilities,
    // zero-length windows, duplicate and tick-0 events: all must be
    // absorbed (out-of-grid events are skipped at compile; the rest are
    // legal, if pointless) without panicking any engine.
    let hostile = [
        "tnfault 1\nseed 0\nat 0 core 0 0 dead\nat 0 core 0 0 dead\nat 0 core 5 5 sync 0\n",
        "tnfault 1\nseed 1\nat 1 core 60 60 dead\nat 2 core 0 40 axon 255 stuck1\nat 3 link 60 0 61 0 sever\n",
        "tnfault 1\nseed 2\nat 1 core 0 0 flip 255 255\nat 1 core 5 5 corrupt 255\nat 2 link 0 0 0 1 lossy 1000\n",
        "tnfault 1\nseed 3\nhorizon 5\nat 1000000 core 1 1 dead\nat 18446744073709551615 core 2 2 sync 18446744073709551615\n",
    ];
    for text in hostile {
        let plan = FaultPlan::parse(text).unwrap();
        let mut reference = ReferenceSim::new(net());
        reference.attach_faults(&plan);
        reference.run(30, &mut NullSource);
        let mut par = ParallelSim::new(net(), 4);
        par.attach_faults(&plan);
        par.run(30, &mut NullSource);
        let mut chip = TrueNorthSim::new(net());
        chip.attach_faults(&plan);
        chip.run(30, &mut NullSource);
        assert_eq!(
            reference.network().state_digest(),
            chip.network().state_digest(),
            "{text}"
        );
        assert_eq!(
            reference.network().state_digest(),
            par.network().state_digest(),
            "{text}"
        );
    }
}

#[test]
fn killing_every_core_silences_the_board_gracefully() {
    let mut text = String::from("tnfault 1\nseed 9\n");
    for y in 0..6u16 {
        for x in 0..6u16 {
            text.push_str(&format!("at 10 core {x} {y} dead\n"));
        }
    }
    let plan = FaultPlan::parse(&text).unwrap();
    let mut sim = ReferenceSim::new(net());
    sim.attach_faults(&plan);
    sim.run(50, &mut NullSource);
    let after_kill: u64 = {
        let before = sim.stats().totals.spikes_out;
        sim.run(50, &mut NullSource);
        sim.stats().totals.spikes_out - before
    };
    assert_eq!(after_kill, 0, "a fully dead board must fall silent");
}
